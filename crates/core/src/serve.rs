//! The footprint query daemon: a sealed study served over TCP.
//!
//! [`Server`] holds the sealed [`Study`] in an immutable [`Arc`]
//! [`Snapshot`] and answers [`proto`](crate::proto) requests from a
//! bounded set of connection workers. The robustness contract:
//!
//! - **Untrusted wire.** Every frame is length-capped and checksummed
//!   before decode; malformed input earns a classified
//!   [`Response::Err`], never a panic, and frame-level damage closes the
//!   connection (the stream is desynchronized).
//! - **Deadlines everywhere.** An idle budget bounds how long a worker
//!   waits for the next request; a request budget bounds how long one
//!   frame may dribble in (slowloris) and how long a reply write may
//!   block (backpressure).
//! - **Admission control.** At the connection cap, new sockets get an
//!   explicit `Busy` reply and are closed; [`Client`] retries with
//!   exponential backoff plus deterministic jitter.
//! - **Graceful drain.** `Shutdown` (or [`Server::shutdown`]) stops the
//!   acceptor, lets in-flight requests finish, then returns from
//!   [`Server::wait`].
//! - **Atomic snapshot swap.** `Reload` re-runs the analysis through a
//!   caller-supplied rebuild recipe and swaps the snapshot only if the
//!   client's expected fingerprint matches the live one
//!   (compare-and-swap semantics). Connections opened before the swap
//!   keep answering from their pinned snapshot — sessions never observe
//!   a torn world.
//!
//! Each connection pins the snapshot at accept time and builds its own
//! [`Metrics`] view plus an optional per-connection
//! [`CompletenessEngine`] session; both are plain borrows with no
//! locking on the query path, so answers are bit-identical to direct
//! library calls by construction.

use std::collections::HashSet;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use apistudy_analysis::AnalysisOptions;
use apistudy_catalog::Api;

use crate::cache::fold_hash;
use crate::engine::CompletenessEngine;
use crate::journal::{catalog_fingerprint, corpus_fingerprint};
use crate::metrics::Metrics;
use crate::planner::greedy_suggestions;
use crate::proto::{
    read_frame, write_frame, ErrorCode, FrameError, ReadBudget, Request,
    Response, MAX_PICKS,
};
use crate::study::Study;

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Port to bind on 127.0.0.1 (0 picks an ephemeral port).
    pub port: u16,
    /// Admission cap: concurrent connections beyond this get a `Busy`
    /// reply and are closed.
    pub max_conns: usize,
    /// Budget for one request: frame arrival (slowloris bound), reply
    /// write (backpressure bound), and processing.
    pub request_deadline: Duration,
    /// How long a connection may sit idle between requests.
    pub idle_deadline: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            port: 0,
            max_conns: 128,
            request_deadline: Duration::from_secs(5),
            idle_deadline: Duration::from_secs(60),
        }
    }
}

/// One immutable, shared view of a sealed study. Swapped whole on
/// reload; never mutated.
pub struct Snapshot {
    /// The sealed study (corpus plan + measured dataset).
    pub study: Study,
    /// The metrics index, built **once** at seal time and shared by every
    /// worker thread — a connection's first request no longer waits out a
    /// private index build (the old p99 wart). Results are bit-identical:
    /// the index holds exactly the state a per-connection build derives.
    pub index: std::sync::Arc<crate::metrics::MetricsIndex>,
    /// Identity: corpus ⊕ analysis-options ⊕ catalog fingerprints.
    pub fingerprint: u64,
    /// Monotonic generation, bumped on every successful swap.
    pub generation: u64,
}

/// The snapshot identity surfaced in `Pong` and checked by `Reload`:
/// a fold of the corpus, analysis-options, and catalog fingerprints.
pub fn snapshot_fingerprint(study: &Study) -> u64 {
    let mut h = fold_hash(0, corpus_fingerprint(study.repo()));
    h = fold_hash(h, AnalysisOptions::default().fingerprint());
    fold_hash(h, catalog_fingerprint(&study.data().catalog))
}

impl Snapshot {
    /// Seals a study into a snapshot at the given generation, building
    /// the shared metrics index up front.
    pub fn seal(study: Study, generation: u64) -> Self {
        let fingerprint = snapshot_fingerprint(&study);
        let index = std::sync::Arc::new(
            crate::metrics::MetricsIndex::build(study.data()),
        );
        Self { study, index, fingerprint, generation }
    }

    /// A metrics handle over the snapshot's prebuilt shared index:
    /// construction is a clone of an [`Arc`](std::sync::Arc), not an
    /// index build.
    pub fn metrics(&self) -> Metrics<'_> {
        Metrics::with_index(self.study.data(), self.index.clone())
    }
}

/// A reload recipe: re-runs the analysis and returns the fresh study
/// (typically `Study::run_streamed_stored` against the daemon's boot
/// store, so completed shards replay at file-read cost).
pub type Rebuild = dyn Fn() -> Result<Study, String> + Send + Sync;

/// Monotonic counters describing a server's lifetime so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections accepted into a worker.
    pub connections: u64,
    /// Requests answered (including classified error replies).
    pub served: u64,
    /// Connections rejected at the admission cap.
    pub rejected_busy: u64,
    /// Connections closed for frame damage (checksum / oversize /
    /// truncation).
    pub malformed: u64,
    /// Connections closed for blowing an idle or request deadline.
    pub deadline_closed: u64,
    /// Successful snapshot swaps.
    pub reloads: u64,
}

#[derive(Default)]
struct StatCells {
    connections: AtomicU64,
    served: AtomicU64,
    rejected_busy: AtomicU64,
    malformed: AtomicU64,
    deadline_closed: AtomicU64,
    reloads: AtomicU64,
}

struct Shared {
    snapshot: RwLock<Arc<Snapshot>>,
    rebuild: Option<Box<Rebuild>>,
    opts: ServeOptions,
    addr: SocketAddr,
    drain: AtomicBool,
    active: AtomicUsize,
    reloading: AtomicBool,
    stats: StatCells,
}

impl Shared {
    /// Reads the live snapshot without ever panicking on a poisoned
    /// lock (a poisoned guard still holds a valid `Arc`).
    fn live(&self) -> Arc<Snapshot> {
        match self.snapshot.read() {
            Ok(g) => Arc::clone(&g),
            Err(e) => Arc::clone(&e.into_inner()),
        }
    }

    fn begin_drain(&self) {
        if !self.drain.swap(true, Ordering::SeqCst) {
            // Unblock the acceptor's blocking accept() with a
            // self-connection; it checks the drain flag first thing.
            let _ = TcpStream::connect_timeout(
                &self.addr,
                Duration::from_millis(250),
            );
        }
    }

    fn stats(&self) -> ServeStats {
        ServeStats {
            connections: self.stats.connections.load(Ordering::Relaxed),
            served: self.stats.served.load(Ordering::Relaxed),
            rejected_busy: self.stats.rejected_busy.load(Ordering::Relaxed),
            malformed: self.stats.malformed.load(Ordering::Relaxed),
            deadline_closed: self
                .stats
                .deadline_closed
                .load(Ordering::Relaxed),
            reloads: self.stats.reloads.load(Ordering::Relaxed),
        }
    }
}

/// Decrements the active-connection gauge when a worker exits by any
/// path, including a panic unwinding through the handler.
struct ActiveGuard<'a>(&'a AtomicUsize);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running query daemon. Dropping the handle does **not** stop the
/// server; call [`Server::shutdown`] then [`Server::wait`].
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    addr: SocketAddr,
}

impl Server {
    /// Binds 127.0.0.1, seals `study` into generation-0 snapshot, and
    /// starts the acceptor. `rebuild` powers `Reload` requests; without
    /// it reloads are refused as `BadRequest`.
    pub fn start(
        study: Study,
        rebuild: Option<Box<Rebuild>>,
        opts: ServeOptions,
    ) -> std::io::Result<Self> {
        let listener =
            TcpListener::bind(("127.0.0.1", opts.port))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            snapshot: RwLock::new(Arc::new(Snapshot::seal(study, 0))),
            rebuild,
            opts,
            addr,
            drain: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            reloading: AtomicBool::new(false),
            stats: StatCells::default(),
        });
        let accept_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("apistudy-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Self { shared, acceptor: Some(acceptor), addr })
    }

    /// The bound address (ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live snapshot's fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.shared.live().fingerprint
    }

    /// Lifetime counters so far.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }

    /// Initiates graceful drain (idempotent): stop accepting, let
    /// in-flight requests finish.
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }

    /// Blocks until the server has drained (acceptor stopped, workers
    /// done) and returns the final counters.
    pub fn wait(mut self) -> ServeStats {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        self.shared.stats()
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.drain.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        // Optimistic admission: claim a slot, give it back (with a Busy
        // reply) if that pushed us over the cap.
        let prior = shared.active.fetch_add(1, Ordering::SeqCst);
        if prior >= shared.opts.max_conns {
            shared.active.fetch_sub(1, Ordering::SeqCst);
            shared.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
            // Best-effort, short-deadline reject so a connect flood can
            // never stall the acceptor on one slow peer.
            let _ = write_frame(
                &stream,
                &Response::err(ErrorCode::Busy, "connection cap reached")
                    .encode(),
                Duration::from_millis(250),
            );
            continue;
        }
        shared.stats.connections.fetch_add(1, Ordering::Relaxed);
        let worker_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("apistudy-conn".into())
            .spawn(move || {
                let _guard = ActiveGuard(&worker_shared.active);
                handle_connection(&stream, &worker_shared);
            });
        if spawned.is_err() {
            // The stream moved into the failed spawn and is gone; all we
            // can do is give the slot back.
            shared.active.fetch_sub(1, Ordering::SeqCst);
        }
    }
    // Drain: wait for in-flight workers, bounded by one full request
    // budget plus slack — workers poll the drain flag at frame
    // boundaries, so this converges fast.
    let grace = shared.opts.request_deadline + Duration::from_secs(2);
    let deadline = Instant::now() + grace;
    while shared.active.load(Ordering::SeqCst) > 0
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// What a finished request asks the connection loop to do next.
enum After {
    Continue,
    Close,
}

fn handle_connection(stream: &TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    // Pin the snapshot for this connection's whole life: queries and the
    // session answer from one immutable world even across a swap.
    let snap = shared.live();
    let metrics = snap.metrics();
    let mut session: Option<CompletenessEngine<'_, '_>> = None;
    let budget = ReadBudget {
        idle: shared.opts.idle_deadline,
        request: shared.opts.request_deadline,
    };
    let write_deadline = shared.opts.request_deadline;
    loop {
        let payload = match read_frame(stream, budget, &|| {
            shared.drain.load(Ordering::SeqCst)
        }) {
            Ok(p) => p,
            Err(FrameError::Closed) | Err(FrameError::Io(_)) => return,
            Err(FrameError::Draining) => {
                let _ = write_frame(
                    stream,
                    &Response::err(ErrorCode::Draining, "server draining")
                        .encode(),
                    write_deadline,
                );
                return;
            }
            Err(FrameError::Idle) => {
                shared.stats.deadline_closed.fetch_add(1, Ordering::Relaxed);
                let _ = write_frame(
                    stream,
                    &Response::err(ErrorCode::Deadline, "idle deadline")
                        .encode(),
                    write_deadline,
                );
                return;
            }
            Err(FrameError::Deadline) => {
                shared.stats.deadline_closed.fetch_add(1, Ordering::Relaxed);
                let _ = write_frame(
                    stream,
                    &Response::err(
                        ErrorCode::Deadline,
                        "request deadline while receiving frame",
                    )
                    .encode(),
                    write_deadline,
                );
                return;
            }
            Err(FrameError::TooLarge(n)) => {
                shared.stats.malformed.fetch_add(1, Ordering::Relaxed);
                let _ = write_frame(
                    stream,
                    &Response::err(
                        ErrorCode::TooLarge,
                        format!("frame length {n} over cap"),
                    )
                    .encode(),
                    write_deadline,
                );
                return;
            }
            Err(FrameError::Checksum) | Err(FrameError::Truncated) => {
                shared.stats.malformed.fetch_add(1, Ordering::Relaxed);
                let _ = write_frame(
                    stream,
                    &Response::err(ErrorCode::BadFrame, "frame damaged")
                        .encode(),
                    write_deadline,
                );
                return;
            }
        };
        // The frame was intact; an undecodable payload is a classified
        // reply and the connection survives (framing is still in sync).
        let (reply, after) = match Request::decode(&payload) {
            None => (
                Response::err(ErrorCode::BadRequest, "undecodable request"),
                After::Continue,
            ),
            Some(req) => dispatch(req, &snap, &metrics, &mut session, shared),
        };
        shared.stats.served.fetch_add(1, Ordering::Relaxed);
        if write_frame(stream, &reply.encode(), write_deadline).is_err() {
            return;
        }
        if matches!(after, After::Close) {
            return;
        }
    }
}

/// `Some(nr)` for the first syscall number not in the catalog.
fn first_unknown(snap: &Snapshot, nrs: &[u32]) -> Option<u32> {
    nrs.iter()
        .copied()
        .find(|&nr| snap.study.data().catalog.syscalls.by_number(nr).is_none())
}

fn dispatch<'m, 'a>(
    req: Request,
    snap: &Arc<Snapshot>,
    metrics: &'m Metrics<'a>,
    session: &mut Option<CompletenessEngine<'m, 'a>>,
    shared: &Shared,
) -> (Response, After) {
    match req {
        Request::Ping => (
            Response::Pong {
                fingerprint: snap.fingerprint,
                generation: snap.generation,
                packages: snap.study.data().packages.len() as u32,
            },
            After::Continue,
        ),
        Request::Importance { nr } => {
            if let Some(bad) = first_unknown(snap, &[nr]) {
                return (unknown_api(bad), After::Continue);
            }
            let api = Api::Syscall(nr);
            (
                Response::Importance {
                    importance_bits: metrics.importance(api).to_bits(),
                    unweighted_bits: metrics
                        .unweighted_importance(api)
                        .to_bits(),
                },
                After::Continue,
            )
        }
        Request::Completeness { supported } => {
            if let Some(bad) = first_unknown(snap, &supported) {
                return (unknown_api(bad), After::Continue);
            }
            let set: HashSet<u32> = supported.into_iter().collect();
            (
                Response::Completeness {
                    bits: metrics.syscall_completeness(&set).to_bits(),
                },
                After::Continue,
            )
        }
        Request::Suggest { supported, limit } => {
            if let Some(bad) = first_unknown(snap, &supported) {
                return (unknown_api(bad), After::Continue);
            }
            let set: HashSet<u32> = supported.into_iter().collect();
            let n = (limit as usize).min(MAX_PICKS);
            let picks = greedy_suggestions(metrics, &set, n)
                .into_iter()
                .map(|(nr, gain)| (nr, gain.to_bits()))
                .collect();
            (Response::Suggest { picks }, After::Continue)
        }
        Request::SessionOpen { supported } => {
            if let Some(bad) = first_unknown(snap, &supported) {
                return (unknown_api(bad), After::Continue);
            }
            let set: HashSet<u32> = supported.into_iter().collect();
            let engine = CompletenessEngine::for_syscalls(metrics, &set);
            let completeness = engine.completeness();
            *session = Some(engine);
            (
                Response::Session {
                    delta_bits: 0f64.to_bits(),
                    completeness_bits: completeness.to_bits(),
                },
                After::Continue,
            )
        }
        Request::SessionAdd { nr }
        | Request::SessionRemove { nr }
        | Request::SessionProbe { nr } => {
            if let Some(bad) = first_unknown(snap, &[nr]) {
                return (unknown_api(bad), After::Continue);
            }
            let Some(engine) = session.as_mut() else {
                return (
                    Response::err(
                        ErrorCode::BadRequest,
                        "no session open (send SessionOpen first)",
                    ),
                    After::Continue,
                );
            };
            let api = Api::Syscall(nr);
            let delta = match req {
                Request::SessionAdd { .. } => engine.add_api(api),
                Request::SessionRemove { .. } => engine.remove_api(api),
                _ => engine.probe_gain(api),
            };
            (
                Response::Session {
                    delta_bits: delta.to_bits(),
                    completeness_bits: engine.completeness().to_bits(),
                },
                After::Continue,
            )
        }
        Request::Reload { expect_fingerprint } => {
            (reload(expect_fingerprint, shared), After::Continue)
        }
        Request::Shutdown => {
            shared.begin_drain();
            (Response::Bye, After::Close)
        }
    }
}

fn unknown_api(nr: u32) -> Response {
    Response::err(ErrorCode::UnknownApi, format!("syscall {nr} not in catalog"))
}

/// Clears the one-reload-at-a-time flag on every exit path.
struct ReloadGuard<'a>(&'a AtomicBool);

impl Drop for ReloadGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::SeqCst);
    }
}

fn reload(expect_fingerprint: u64, shared: &Shared) -> Response {
    let Some(rebuild) = shared.rebuild.as_ref() else {
        return Response::err(
            ErrorCode::BadRequest,
            "reload not configured for this server",
        );
    };
    if shared
        .reloading
        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        return Response::err(ErrorCode::Busy, "reload already in progress");
    }
    let _guard = ReloadGuard(&shared.reloading);
    let live = shared.live();
    if live.fingerprint != expect_fingerprint {
        return Response::err(
            ErrorCode::BadRequest,
            format!(
                "fingerprint mismatch: live {:#018x}, expected {:#018x}",
                live.fingerprint, expect_fingerprint
            ),
        );
    }
    let study = match rebuild() {
        Ok(s) => s,
        Err(e) => {
            return Response::err(
                ErrorCode::Internal,
                format!("rebuild failed: {e}"),
            );
        }
    };
    let next = Arc::new(Snapshot::seal(study, live.generation + 1));
    let reply = Response::Reload {
        fingerprint: next.fingerprint,
        generation: next.generation,
    };
    match shared.snapshot.write() {
        Ok(mut g) => *g = next,
        Err(e) => *e.into_inner() = next,
    }
    shared.stats.reloads.fetch_add(1, Ordering::Relaxed);
    reply
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Exponential backoff with deterministic jitter for connect and `Busy`
/// retries. Fully seeded: two clients with different seeds desynchronize
/// their retries (the point of jitter) while every run is reproducible.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum attempts before giving up.
    pub attempts: u32,
    /// First delay; doubles per attempt.
    pub base: Duration,
    /// Ceiling on any single delay.
    pub cap: Duration,
    /// Jitter seed (vary per client).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(1500),
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

fn xorshift64star(mut x: u64) -> u64 {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (0-based): `base << attempt`
    /// capped at `cap`, plus deterministic jitter in `[0, delay/2)`.
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX))
            .min(self.cap);
        let half = (exp.as_millis() as u64) / 2;
        if half == 0 {
            return exp;
        }
        let jitter = xorshift64star(
            self.seed ^ (u64::from(attempt).wrapping_mul(0xA076_1D64_78BD_642F)),
        ) % half;
        exp + Duration::from_millis(jitter)
    }
}

/// Client-side failures, classified.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, send, or receive).
    Io(std::io::Error),
    /// The reply frame was damaged or deadline-expired.
    Frame(FrameError),
    /// The reply frame was intact but not a valid response encoding.
    Protocol,
    /// Retries exhausted; the last failure's description.
    Exhausted(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Frame(e) => write!(f, "reply frame: {e}"),
            ClientError::Protocol => write!(f, "undecodable reply"),
            ClientError::Exhausted(last) => {
                write!(f, "retries exhausted; last failure: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// A blocking daemon client with backoff-and-jitter reconnects.
pub struct Client {
    addr: SocketAddr,
    stream: TcpStream,
    policy: RetryPolicy,
    deadline: Duration,
}

impl Client {
    /// Connects with backoff (a just-restarted or busy daemon is retried
    /// per `policy`). `deadline` bounds every socket operation.
    pub fn connect(
        addr: SocketAddr,
        policy: RetryPolicy,
        deadline: Duration,
    ) -> Result<Self, ClientError> {
        let mut last = String::from("no attempt made");
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(policy.delay(attempt - 1));
            }
            match TcpStream::connect_timeout(&addr, deadline) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    return Ok(Self { addr, stream, policy, deadline });
                }
                Err(e) => last = e.to_string(),
            }
        }
        Err(ClientError::Exhausted(last))
    }

    /// One request/reply exchange on the current connection, no retry.
    /// Server-side `Err` replies come back as `Ok(Response::Err { .. })`
    /// — the exchange itself succeeded.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&self.stream, &req.encode(), self.deadline)
            .map_err(ClientError::Io)?;
        let payload = read_frame(
            &self.stream,
            ReadBudget { idle: self.deadline, request: self.deadline },
            &|| false,
        )
        .map_err(ClientError::Frame)?;
        Response::decode(&payload).ok_or(ClientError::Protocol)
    }

    /// [`Client::call`] with reconnect-and-retry on transport failure and
    /// on `Busy`/`Draining` replies (the admission-control and
    /// crash-restart path). **Not** safe for session requests — a
    /// reconnect silently drops the per-connection session; callers
    /// re-open sessions themselves.
    pub fn call_retrying(
        &mut self,
        req: &Request,
    ) -> Result<Response, ClientError> {
        let mut last = String::from("no attempt made");
        for attempt in 0..self.policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(self.policy.delay(attempt - 1));
                if let Ok(stream) =
                    TcpStream::connect_timeout(&self.addr, self.deadline)
                {
                    let _ = stream.set_nodelay(true);
                    self.stream = stream;
                }
            }
            match self.call(req) {
                Ok(Response::Err { code, msg })
                    if matches!(
                        code,
                        ErrorCode::Busy | ErrorCode::Draining
                    ) =>
                {
                    last = format!("{}: {msg}", code.label());
                }
                Ok(resp) => return Ok(resp),
                Err(e) => last = e.to_string(),
            }
        }
        Err(ClientError::Exhausted(last))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::encode_frame;
    use apistudy_corpus::Scale;
    use std::io::Write as _;

    fn small_study() -> Study {
        Study::run(Scale { packages: 120, installations: 20_000 }, 3)
    }

    fn test_opts() -> ServeOptions {
        ServeOptions {
            port: 0,
            max_conns: 8,
            request_deadline: Duration::from_secs(2),
            idle_deadline: Duration::from_secs(5),
        }
    }

    fn client(server: &Server) -> Client {
        Client::connect(
            server.addr(),
            RetryPolicy::default(),
            Duration::from_secs(5),
        )
        .expect("connect")
    }

    #[test]
    fn answers_are_bit_identical_to_direct_library_calls() {
        let study = small_study();
        let reference = small_study();
        let m = reference.metrics();
        let server =
            Server::start(study, None, test_opts()).expect("start");
        let mut c = client(&server);

        let Response::Pong { fingerprint, generation, packages } =
            c.call(&Request::Ping).expect("ping")
        else {
            panic!("expected Pong");
        };
        assert_eq!(fingerprint, snapshot_fingerprint(&reference));
        assert_eq!(generation, 0);
        assert_eq!(packages as usize, reference.data().packages.len());

        for nr in [0u32, 1, 2, 60] {
            let Response::Importance { importance_bits, unweighted_bits } =
                c.call(&Request::Importance { nr }).expect("importance")
            else {
                panic!("expected Importance");
            };
            let api = Api::Syscall(nr);
            assert_eq!(importance_bits, m.importance(api).to_bits());
            assert_eq!(
                unweighted_bits,
                m.unweighted_importance(api).to_bits()
            );
        }

        let supported: Vec<u32> =
            m.importance_ranking(apistudy_catalog::ApiKind::Syscall)
                .iter()
                .take(40)
                .filter_map(|(api, _)| match api {
                    Api::Syscall(nr) => Some(*nr),
                    _ => None,
                })
                .collect();
        let set: HashSet<u32> = supported.iter().copied().collect();
        let Response::Completeness { bits } = c
            .call(&Request::Completeness { supported: supported.clone() })
            .expect("completeness")
        else {
            panic!("expected Completeness");
        };
        assert_eq!(bits, m.syscall_completeness(&set).to_bits());

        let Response::Suggest { picks } = c
            .call(&Request::Suggest {
                supported: supported.clone(),
                limit: 5,
            })
            .expect("suggest")
        else {
            panic!("expected Suggest");
        };
        let direct = greedy_suggestions(&m, &set, 5);
        assert_eq!(picks.len(), direct.len());
        for ((nr, bits), (dnr, gain)) in picks.iter().zip(direct.iter()) {
            assert_eq!(nr, dnr);
            assert_eq!(*bits, gain.to_bits());
        }

        // Session: open → probe → add → remove must match a scratch
        // engine op for op, bit for bit.
        let mut engine = CompletenessEngine::for_syscalls(&m, &set);
        let Response::Session { delta_bits, completeness_bits } = c
            .call(&Request::SessionOpen { supported })
            .expect("session open")
        else {
            panic!("expected Session");
        };
        assert_eq!(delta_bits, 0f64.to_bits());
        assert_eq!(completeness_bits, engine.completeness().to_bits());
        let probe_nr = direct.first().map(|(nr, _)| *nr).unwrap_or(231);
        for (req, direct_delta) in [
            (
                Request::SessionProbe { nr: probe_nr },
                engine.probe_gain(Api::Syscall(probe_nr)),
            ),
            (
                Request::SessionAdd { nr: probe_nr },
                engine.add_api(Api::Syscall(probe_nr)),
            ),
            (
                Request::SessionRemove { nr: probe_nr },
                engine.remove_api(Api::Syscall(probe_nr)),
            ),
        ] {
            let Response::Session { delta_bits, completeness_bits } =
                c.call(&req).expect("session op")
            else {
                panic!("expected Session");
            };
            assert_eq!(delta_bits, direct_delta.to_bits(), "{req:?}");
            assert_eq!(
                completeness_bits,
                engine.completeness().to_bits(),
                "{req:?}"
            );
        }

        server.shutdown();
        server.wait();
    }

    #[test]
    fn misuse_gets_classified_errors_not_panics() {
        let server =
            Server::start(small_study(), None, test_opts()).expect("start");
        let mut c = client(&server);

        // Unknown syscall number.
        let resp = c.call(&Request::Importance { nr: 99_999 }).expect("call");
        assert!(matches!(
            resp,
            Response::Err { code: ErrorCode::UnknownApi, .. }
        ));
        // Session op without a session.
        let resp = c.call(&Request::SessionAdd { nr: 0 }).expect("call");
        assert!(matches!(
            resp,
            Response::Err { code: ErrorCode::BadRequest, .. }
        ));
        // Reload on a server with no rebuild recipe.
        let resp = c
            .call(&Request::Reload { expect_fingerprint: 0 })
            .expect("call");
        assert!(matches!(
            resp,
            Response::Err { code: ErrorCode::BadRequest, .. }
        ));
        // Intact frame, garbage payload: classified reply, connection
        // survives.
        write_frame(&c.stream, &[0xFFu8, 1, 2, 3], Duration::from_secs(2))
            .expect("write");
        let payload = read_frame(
            &c.stream,
            ReadBudget {
                idle: Duration::from_secs(2),
                request: Duration::from_secs(2),
            },
            &|| false,
        )
        .expect("reply");
        assert!(matches!(
            Response::decode(&payload),
            Some(Response::Err { code: ErrorCode::BadRequest, .. })
        ));
        let resp = c.call(&Request::Ping).expect("still alive");
        assert!(matches!(resp, Response::Pong { .. }));

        server.shutdown();
        server.wait();
    }

    #[test]
    fn damaged_frames_get_classified_replies_and_close() {
        let server =
            Server::start(small_study(), None, test_opts()).expect("start");

        // Checksum damage.
        let c = client(&server);
        let mut frame = encode_frame(&Request::Ping.encode());
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        (&c.stream).write_all(&frame).expect("send");
        let payload = read_frame(
            &c.stream,
            ReadBudget {
                idle: Duration::from_secs(2),
                request: Duration::from_secs(2),
            },
            &|| false,
        )
        .expect("reply");
        assert!(matches!(
            Response::decode(&payload),
            Some(Response::Err { code: ErrorCode::BadFrame, .. })
        ));

        // Oversized length prefix.
        let c = client(&server);
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        frame.extend_from_slice(&0u64.to_le_bytes());
        (&c.stream).write_all(&frame).expect("send");
        let payload = read_frame(
            &c.stream,
            ReadBudget {
                idle: Duration::from_secs(2),
                request: Duration::from_secs(2),
            },
            &|| false,
        )
        .expect("reply");
        assert!(matches!(
            Response::decode(&payload),
            Some(Response::Err { code: ErrorCode::TooLarge, .. })
        ));

        assert!(server.stats().malformed >= 2);
        server.shutdown();
        server.wait();
    }

    #[test]
    fn slowloris_is_cut_at_the_request_deadline() {
        let mut opts = test_opts();
        opts.request_deadline = Duration::from_millis(300);
        let server =
            Server::start(small_study(), None, opts).expect("start");
        let c = client(&server);
        let frame = encode_frame(&Request::Ping.encode());
        // Dribble one byte, then stall past the request deadline.
        (&c.stream).write_all(&frame[..1]).expect("first byte");
        let payload = read_frame(
            &c.stream,
            ReadBudget {
                idle: Duration::from_secs(5),
                request: Duration::from_secs(5),
            },
            &|| false,
        )
        .expect("deadline reply");
        assert!(matches!(
            Response::decode(&payload),
            Some(Response::Err { code: ErrorCode::Deadline, .. })
        ));
        assert!(server.stats().deadline_closed >= 1);
        server.shutdown();
        server.wait();
    }

    #[test]
    fn admission_control_rejects_with_busy_and_client_retries() {
        let mut opts = test_opts();
        opts.max_conns = 1;
        let server =
            Server::start(small_study(), None, opts).expect("start");
        // First client occupies the only slot.
        let mut first = client(&server);
        assert!(matches!(
            first.call(&Request::Ping).expect("ping"),
            Response::Pong { .. }
        ));
        // Second connection is told Busy explicitly.
        let mut second = Client::connect(
            server.addr(),
            RetryPolicy {
                attempts: 2,
                base: Duration::from_millis(5),
                cap: Duration::from_millis(20),
                seed: 7,
            },
            Duration::from_secs(2),
        )
        .expect("tcp connect");
        match second.call(&Request::Ping) {
            Ok(Response::Err { code: ErrorCode::Busy, .. }) => {}
            other => panic!("expected Busy, got {other:?}"),
        }
        // After the first client leaves, retrying succeeds.
        drop(first);
        let resp = second
            .call_retrying(&Request::Ping)
            .expect("retry after slot frees");
        assert!(matches!(resp, Response::Pong { .. }));
        assert!(server.stats().rejected_busy >= 1);
        server.shutdown();
        server.wait();
    }

    #[test]
    fn reload_swaps_atomically_and_pins_open_connections() {
        let study = small_study();
        let boot_fp = snapshot_fingerprint(&study);
        // The rebuild recipe returns a *different* corpus, so the swap is
        // observable: fingerprints differ across generations.
        let rebuild: Box<Rebuild> = Box::new(|| {
            Ok(Study::run(
                Scale { packages: 130, installations: 25_000 },
                23,
            ))
        });
        let server = Server::start(study, Some(rebuild), test_opts())
            .expect("start");
        let mut pinned = client(&server);
        let Response::Pong { fingerprint: old_fp, .. } =
            pinned.call(&Request::Ping).expect("ping")
        else {
            panic!("expected Pong");
        };
        assert_eq!(old_fp, boot_fp);

        let mut admin = client(&server);
        // Wrong expected fingerprint: refused, nothing swapped.
        let resp = admin
            .call(&Request::Reload { expect_fingerprint: old_fp ^ 1 })
            .expect("call");
        assert!(matches!(
            resp,
            Response::Err { code: ErrorCode::BadRequest, .. }
        ));
        // Correct fingerprint: swapped, generation bumps.
        let Response::Reload { fingerprint: new_fp, generation } = admin
            .call(&Request::Reload { expect_fingerprint: old_fp })
            .expect("reload")
        else {
            panic!("expected Reload");
        };
        assert_ne!(new_fp, old_fp);
        assert_eq!(generation, 1);

        // The connection opened before the swap still answers from its
        // pinned snapshot; a fresh connection sees the new world.
        let Response::Pong { fingerprint, generation, .. } =
            pinned.call(&Request::Ping).expect("pinned ping")
        else {
            panic!("expected Pong");
        };
        assert_eq!(fingerprint, old_fp);
        assert_eq!(generation, 0);
        let mut fresh = client(&server);
        let Response::Pong { fingerprint, generation, .. } =
            fresh.call(&Request::Ping).expect("fresh ping")
        else {
            panic!("expected Pong");
        };
        assert_eq!(fingerprint, new_fp);
        assert_eq!(generation, 1);
        assert_eq!(server.stats().reloads, 1);
        server.shutdown();
        server.wait();
    }

    #[test]
    fn shutdown_request_drains_gracefully() {
        let server =
            Server::start(small_study(), None, test_opts()).expect("start");
        let mut c = client(&server);
        let resp = c.call(&Request::Shutdown).expect("shutdown");
        assert!(matches!(resp, Response::Bye));
        // wait() must return (bounded drain), and the port must refuse
        // new work afterwards.
        let stats = server.wait();
        assert!(stats.served >= 1);
    }

    #[test]
    fn backoff_delays_grow_and_jitter_deterministically() {
        let p = RetryPolicy {
            attempts: 6,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(400),
            seed: 42,
        };
        let d: Vec<Duration> = (0..5).map(|a| p.delay(a)).collect();
        // Monotone envelope: each delay's floor doubles until the cap.
        assert!(d[1] >= Duration::from_millis(20));
        assert!(d[2] >= Duration::from_millis(40));
        assert!(d[4] <= Duration::from_millis(400 + 200));
        // Deterministic: same policy, same delays.
        let again: Vec<Duration> = (0..5).map(|a| p.delay(a)).collect();
        assert_eq!(d, again);
        // Different seeds desynchronize.
        let q = RetryPolicy { seed: 43, ..p };
        assert_ne!(
            (0..5).map(|a| p.delay(a)).collect::<Vec<_>>(),
            (0..5).map(|a| q.delay(a)).collect::<Vec<_>>()
        );
    }
}
