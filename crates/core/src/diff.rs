//! Study-to-study comparison.
//!
//! The paper notes its dataset "does not include sufficient historical
//! data to compare changes to API usage over time" (§2.4) and that the
//! methodology "can be easily applied to future releases" (§9). This
//! module supplies the comparison half: given two completed studies —
//! two releases, or a baseline and a what-if calibration
//! ([`apistudy_corpus::CalibrationSpec::adoption_overrides`]) — it reports
//! how API importance and adoption shifted.

use apistudy_catalog::{Api, ApiKind};

use crate::metrics::Metrics;

/// One API's movement between two studies.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiShift {
    /// Display name of the API.
    pub name: String,
    /// Weighted importance before / after.
    pub importance: (f64, f64),
    /// Unweighted importance before / after.
    pub unweighted: (f64, f64),
}

impl ApiShift {
    /// Signed change in weighted importance.
    pub fn importance_delta(&self) -> f64 {
        self.importance.1 - self.importance.0
    }

    /// Signed change in unweighted importance.
    pub fn unweighted_delta(&self) -> f64 {
        self.unweighted.1 - self.unweighted.0
    }
}

/// The comparison of one API kind across two studies.
#[derive(Debug, Clone, Default)]
pub struct StudyDiff {
    /// Every API of the kind, with before/after values.
    pub shifts: Vec<ApiShift>,
}

impl StudyDiff {
    /// Compares two studies over one API kind. Both studies must use the
    /// same catalog generation (they always do in this crate).
    pub fn compare(before: &Metrics<'_>, after: &Metrics<'_>, kind: ApiKind) -> Self {
        let catalog = &before.data().catalog;
        let apis: Vec<Api> = before
            .importance_ranking(kind)
            .into_iter()
            .map(|(api, _)| api)
            .collect();
        let shifts = apis
            .into_iter()
            .map(|api| ApiShift {
                name: catalog.name(api),
                importance: (before.importance(api), after.importance(api)),
                unweighted: (
                    before.unweighted_importance(api),
                    after.unweighted_importance(api),
                ),
            })
            .collect();
        Self { shifts }
    }

    /// The `n` largest movers by absolute unweighted change (adoption
    /// shifts — the §5 lens).
    pub fn top_adoption_movers(&self, n: usize) -> Vec<&ApiShift> {
        let mut v: Vec<&ApiShift> = self.shifts.iter().collect();
        v.sort_by(|a, b| {
            b.unweighted_delta()
                .abs()
                .total_cmp(&a.unweighted_delta().abs())
        });
        v.truncate(n);
        v
    }

    /// The `n` largest movers by absolute weighted-importance change.
    pub fn top_importance_movers(&self, n: usize) -> Vec<&ApiShift> {
        let mut v: Vec<&ApiShift> = self.shifts.iter().collect();
        v.sort_by(|a, b| {
            b.importance_delta()
                .abs()
                .total_cmp(&a.importance_delta().abs())
        });
        v.truncate(n);
        v
    }

    /// A shift by API display name.
    pub fn shift(&self, name: &str) -> Option<&ApiShift> {
        self.shifts.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::StudyData;
    use apistudy_corpus::{CalibrationSpec, Scale, SynthRepo};

    fn study(spec: CalibrationSpec) -> StudyData {
        let repo = SynthRepo::new(
            Scale { packages: 250, installations: 50_000 },
            spec,
            12,
        );
        StudyData::from_synth(&repo)
    }

    #[test]
    fn what_if_adoption_override_moves_the_target_api() {
        let baseline = study(CalibrationSpec::default());
        let grown = study(CalibrationSpec {
            adoption_overrides: vec![("faccessat".into(), 0.50)],
            ..CalibrationSpec::default()
        });
        let mb = Metrics::new(&baseline);
        let mg = Metrics::new(&grown);
        let diff = StudyDiff::compare(&mb, &mg, ApiKind::Syscall);
        let shift = diff.shift("faccessat").expect("tracked");
        assert!(
            shift.unweighted.0 < 0.05,
            "baseline faccessat adoption is tiny: {}",
            shift.unweighted.0
        );
        assert!(
            shift.unweighted.1 > 0.25,
            "grown faccessat adoption: {}",
            shift.unweighted.1
        );
        // And the mover ranking surfaces it near the top.
        let movers = diff.top_adoption_movers(5);
        assert!(
            movers.iter().any(|s| s.name == "faccessat"),
            "faccessat must be a top mover: {:?}",
            movers.iter().map(|s| &s.name).collect::<Vec<_>>()
        );
    }

    #[test]
    fn identical_studies_diff_to_zero() {
        let a = study(CalibrationSpec::default());
        let b = study(CalibrationSpec::default());
        let ma = Metrics::new(&a);
        let mb = Metrics::new(&b);
        let diff = StudyDiff::compare(&ma, &mb, ApiKind::Syscall);
        for s in &diff.shifts {
            assert_eq!(s.importance_delta(), 0.0, "{}", s.name);
            assert_eq!(s.unweighted_delta(), 0.0, "{}", s.name);
        }
    }

    #[test]
    fn movers_are_sorted_by_magnitude() {
        let baseline = study(CalibrationSpec::default());
        let grown = study(CalibrationSpec {
            adoption_overrides: vec![
                ("faccessat".into(), 0.40),
                ("waitid".into(), 0.30),
            ],
            ..CalibrationSpec::default()
        });
        let mb = Metrics::new(&baseline);
        let mg = Metrics::new(&grown);
        let diff = StudyDiff::compare(&mb, &mg, ApiKind::Syscall);
        let movers = diff.top_adoption_movers(10);
        for w in movers.windows(2) {
            assert!(
                w[0].unweighted_delta().abs() >= w[1].unweighted_delta().abs()
            );
        }
    }
}
