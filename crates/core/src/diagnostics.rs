//! Degradation accounting: what the pipeline skipped, contained, or
//! quarantined, and why.
//!
//! The study's credibility rests on knowing what it did *not* measure: a
//! corpus scan that silently drops unparseable binaries reports footprints
//! that look complete but are not. [`RunDiagnostics`] is the structured
//! ledger attached to every [`crate::StudyData`]: each binary the pipeline
//! could not analyze is recorded as a [`SkippedBinary`] classified by
//! pipeline stage and [`ErrorKind`], injected faults carry their
//! ground-truth [`FaultRecord`]s, and contained panics are counted so a
//! "green" run that quietly recovered a worker is distinguishable from a
//! genuinely clean one.

use std::collections::BTreeMap;

use apistudy_corpus::FaultRecord;
use apistudy_elf::ErrorKind;

use crate::cache::CacheMode;

/// Which pipeline stage rejected a binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SkipStage {
    /// `ElfFile::parse` failed: the bytes are not a loadable x86-64 ELF.
    Parse,
    /// Parsing succeeded but static analysis failed (bad symbol tables,
    /// out-of-range section data, a tripped resource guard, ...).
    Analyze,
    /// Analysis panicked twice; the binary was abandoned after the retry.
    Panic,
    /// Analysis overran the per-item wall-clock deadline
    /// (`APISTUDY_ITEM_DEADLINE_MS`) and was quarantined by the watchdog.
    Deadline,
}

impl SkipStage {
    /// A short stable label for tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            SkipStage::Parse => "parse",
            SkipStage::Analyze => "analyze",
            SkipStage::Panic => "panic",
            SkipStage::Deadline => "deadline",
        }
    }
}

impl std::fmt::Display for SkipStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One binary the pipeline could not analyze.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedBinary {
    /// Owning package name.
    pub package: String,
    /// File name within the package.
    pub file: String,
    /// The stage that rejected it.
    pub stage: SkipStage,
    /// Error taxonomy bucket ([`None`] for panics, which carry no
    /// structured error).
    pub kind: Option<ErrorKind>,
    /// Human-readable detail (the error's display form, or the panic
    /// message).
    pub detail: String,
}

/// Corpus-wide robustness accounting for one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct RunDiagnostics {
    /// Binaries successfully parsed *and* analyzed.
    pub analyzed_binaries: u64,
    /// Every binary the pipeline had to skip, with its classification.
    pub skipped: Vec<SkippedBinary>,
    /// Ground truth of injected faults (empty for un-faulted runs).
    pub injected: Vec<FaultRecord>,
    /// Worker or binary-level panics that were caught instead of aborting
    /// the run.
    pub panics_contained: u64,
    /// Panicking work items whose single retry then succeeded (transient
    /// faults; deterministic panics fail twice and are quarantined).
    pub retries_recovered: u64,
    /// Packages whose analysis was abandoned entirely (both attempts
    /// panicked at package granularity); their records carry an empty
    /// footprint and the partial-footprint flag.
    pub quarantined_packages: u32,
    /// Work items abandoned by the wall-clock watchdog
    /// ([`SkipStage::Deadline`]): zero unless `APISTUDY_ITEM_DEADLINE_MS`
    /// is set.
    pub deadline_quarantined: u64,
    /// Binaries whose analysis came straight from the incremental cache
    /// (see [`crate::cache::AnalysisCache`]): zero for un-cached runs.
    pub cache_hits: u64,
    /// Binaries this run looked up in the cache and had to analyze fresh.
    pub cache_misses: u64,
    /// Cache entries displaced by the capacity cap during this run.
    pub cache_evictions: u64,
    /// Which cache mode the run used ([`CacheMode::Off`] when none was
    /// attached).
    pub cache_mode: CacheMode,
    /// The process's peak resident set size in kilobytes at assembly time
    /// (Linux `VmHWM`; 0 on other platforms). A memory *observation*, not
    /// a measurement of this run alone: the high-water mark is
    /// process-wide and monotonic, so earlier work in the same process
    /// can dominate it. Excluded from [`Self::is_clean`].
    pub peak_rss_kb: u64,
}

/// The process's peak resident set size (`VmHWM`) in kilobytes, read from
/// `/proc/self/status`. Returns 0 on non-Linux platforms or if the field
/// cannot be read — callers treat 0 as "unavailable".
pub fn peak_rss_kb() -> u64 {
    #[cfg(target_os = "linux")]
    {
        let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
            return 0;
        };
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                return rest
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse::<u64>()
                    .unwrap_or(0);
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

impl RunDiagnostics {
    /// Skip counts bucketed by [`ErrorKind`] (panics, which have no kind,
    /// are excluded — see [`Self::panicked`]).
    pub fn skipped_by_kind(&self) -> BTreeMap<ErrorKind, u64> {
        let mut out = BTreeMap::new();
        for s in &self.skipped {
            if let Some(kind) = s.kind {
                *out.entry(kind).or_insert(0) += 1;
            }
        }
        out
    }

    /// Skip counts bucketed by pipeline stage.
    pub fn skipped_by_stage(&self) -> BTreeMap<SkipStage, u64> {
        let mut out = BTreeMap::new();
        for s in &self.skipped {
            *out.entry(s.stage).or_insert(0) += 1;
        }
        out
    }

    /// Binaries abandoned because analysis panicked twice.
    pub fn panicked(&self) -> u64 {
        self.skipped
            .iter()
            .filter(|s| s.stage == SkipStage::Panic)
            .count() as u64
    }

    /// Total skipped binaries.
    pub fn total_skipped(&self) -> u64 {
        self.skipped.len() as u64
    }

    /// Binaries abandoned because they overran the wall-clock deadline.
    pub fn deadline_skips(&self) -> u64 {
        self.skipped
            .iter()
            .filter(|s| s.stage == SkipStage::Deadline)
            .count() as u64
    }

    /// True when nothing was skipped, injected, contained, or
    /// quarantined — the run measured every binary it saw. Cache
    /// counters are deliberately ignored: a warm-cache run that measured
    /// everything is exactly as clean as a cold one.
    pub fn is_clean(&self) -> bool {
        self.skipped.is_empty()
            && self.injected.is_empty()
            && self.panics_contained == 0
            && self.quarantined_packages == 0
            && self.deadline_quarantined == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skip(stage: SkipStage, kind: Option<ErrorKind>) -> SkippedBinary {
        SkippedBinary {
            package: "pkg".into(),
            file: "bin".into(),
            stage,
            kind,
            detail: String::new(),
        }
    }

    #[test]
    fn aggregation_buckets_and_cleanliness() {
        let mut d = RunDiagnostics::default();
        assert!(d.is_clean());
        d.skipped.push(skip(SkipStage::Parse, Some(ErrorKind::Truncated)));
        d.skipped.push(skip(SkipStage::Parse, Some(ErrorKind::Truncated)));
        d.skipped.push(skip(SkipStage::Analyze, Some(ErrorKind::BadString)));
        d.skipped.push(skip(SkipStage::Panic, None));
        d.skipped.push(skip(SkipStage::Deadline, None));
        assert!(!d.is_clean());
        assert_eq!(d.total_skipped(), 5);
        assert_eq!(d.panicked(), 1);
        assert_eq!(d.deadline_skips(), 1);
        let by_kind = d.skipped_by_kind();
        assert_eq!(by_kind[&ErrorKind::Truncated], 2);
        assert_eq!(by_kind[&ErrorKind::BadString], 1);
        assert_eq!(by_kind.values().sum::<u64>(), 3, "panics carry no kind");
        let by_stage = d.skipped_by_stage();
        assert_eq!(by_stage[&SkipStage::Parse], 2);
        assert_eq!(by_stage[&SkipStage::Panic], 1);
    }

    #[test]
    fn contained_panic_alone_is_not_clean() {
        let d = RunDiagnostics { panics_contained: 1, ..Default::default() };
        assert!(!d.is_clean());
    }

    #[test]
    fn deadline_quarantine_alone_is_not_clean() {
        let d =
            RunDiagnostics { deadline_quarantined: 1, ..Default::default() };
        assert!(!d.is_clean());
    }

    #[test]
    fn peak_rss_is_positive_on_linux_and_never_breaks_cleanliness() {
        let kb = peak_rss_kb();
        if cfg!(target_os = "linux") {
            assert!(kb > 0, "a live process has a nonzero high-water mark");
        }
        let d = RunDiagnostics { peak_rss_kb: kb, ..Default::default() };
        assert!(d.is_clean(), "an RSS observation is not a fault");
    }

    #[test]
    fn cache_traffic_does_not_affect_cleanliness() {
        let d = RunDiagnostics {
            cache_hits: 100,
            cache_misses: 5,
            cache_evictions: 2,
            cache_mode: CacheMode::Mem,
            ..Default::default()
        };
        assert!(d.is_clean(), "a warm-cache run is as clean as a cold one");
    }
}
