//! Pseudo-file and pseudo-device inventory: `/proc`, `/dev`, and `/sys`.
//!
//! Linux exports a substantial part of its API through pseudo-file systems.
//! The study treats each pseudo-file (or parameterized file family, such as
//! `/proc/<pid>/cmdline`) as an API. Binaries reference these paths as
//! hard-coded strings, frequently through `sprintf`-style format patterns —
//! the paper's example is `sprintf("/proc/%d/cmdline", pid)` — which the
//! analyzer matches with [`PseudoFileSet::match_string`].

/// Which pseudo-file system a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PseudoFs {
    /// `/proc` — process and kernel state.
    Proc,
    /// `/dev` — device nodes and pseudo-devices.
    Dev,
    /// `/sys` — kobject/sysfs attributes.
    Sys,
}

/// A pseudo-file definition.
///
/// `pattern` is either a literal absolute path or a path containing `printf`
/// conversions (`%d`, `%s`, `%u`, `%lu`), in which case it names a *family*
/// of files that the study counts as one API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PseudoFileDef {
    /// Literal path or format pattern (e.g. `/proc/%d/cmdline`).
    pub pattern: &'static str,
    /// Owning pseudo-file system.
    pub fs: PseudoFs,
    /// True when the file mainly serves administrators / a single special
    /// application rather than general programs (the paper's `/dev/kvm`,
    /// `/proc/kallsyms` discussion).
    pub special_purpose: bool,
}

macro_rules! pf {
    ($pattern:expr, $fs:ident, $special:expr) => {
        PseudoFileDef { pattern: $pattern, fs: PseudoFs::$fs, special_purpose: $special }
    };
}

/// The named pseudo-file inventory used by the study.
///
/// Ordered roughly by the paper's Figure 6 prominence: widely used pseudo
/// devices and `/proc` files first, special-purpose and administrative files
/// later. The corpus generator appends an anonymous `/sys` attribute tail on
/// top of this set.
pub const PSEUDO_FILES: &[PseudoFileDef] = &[
    // Essential pseudo-devices.
    pf!("/dev/null", Dev, false),
    pf!("/dev/zero", Dev, false),
    pf!("/dev/tty", Dev, false),
    pf!("/dev/urandom", Dev, false),
    pf!("/dev/random", Dev, false),
    pf!("/dev/console", Dev, false),
    pf!("/dev/ptmx", Dev, false),
    pf!("/dev/pts/%d", Dev, false),
    pf!("/dev/stdin", Dev, false),
    pf!("/dev/stdout", Dev, false),
    pf!("/dev/stderr", Dev, false),
    pf!("/dev/full", Dev, false),
    pf!("/dev/shm", Dev, false),
    pf!("/dev/fd/%d", Dev, false),
    pf!("/dev/mem", Dev, true),
    pf!("/dev/kmsg", Dev, true),
    pf!("/dev/loop%d", Dev, true),
    pf!("/dev/sda", Dev, true),
    pf!("/dev/sd%s", Dev, true),
    pf!("/dev/hda", Dev, true),
    pf!("/dev/hd%s", Dev, true),
    pf!("/dev/cdrom", Dev, true),
    pf!("/dev/dsp", Dev, true),
    pf!("/dev/snd/%s", Dev, true),
    pf!("/dev/input/event%d", Dev, true),
    pf!("/dev/input/mice", Dev, true),
    pf!("/dev/fb0", Dev, true),
    pf!("/dev/kvm", Dev, true),
    pf!("/dev/net/tun", Dev, true),
    pf!("/dev/rtc", Dev, true),
    pf!("/dev/watchdog", Dev, true),
    pf!("/dev/vcs%d", Dev, true),
    pf!("/dev/mapper/control", Dev, true),
    pf!("/dev/dri/card%d", Dev, true),
    pf!("/dev/usb/%s", Dev, true),
    // Widely used /proc files.
    pf!("/proc/cpuinfo", Proc, false),
    pf!("/proc/meminfo", Proc, false),
    pf!("/proc/stat", Proc, false),
    pf!("/proc/uptime", Proc, false),
    pf!("/proc/loadavg", Proc, false),
    pf!("/proc/mounts", Proc, false),
    pf!("/proc/filesystems", Proc, false),
    pf!("/proc/version", Proc, false),
    pf!("/proc/self/exe", Proc, false),
    pf!("/proc/self/maps", Proc, false),
    pf!("/proc/self/stat", Proc, false),
    pf!("/proc/self/status", Proc, false),
    pf!("/proc/self/fd/%d", Proc, false),
    pf!("/proc/self/cmdline", Proc, false),
    pf!("/proc/self/mounts", Proc, false),
    pf!("/proc/self/mountinfo", Proc, false),
    pf!("/proc/self/cgroup", Proc, false),
    pf!("/proc/self/environ", Proc, false),
    pf!("/proc/self/oom_score_adj", Proc, false),
    pf!("/proc/%d/cmdline", Proc, false),
    pf!("/proc/%d/stat", Proc, false),
    pf!("/proc/%d/status", Proc, false),
    pf!("/proc/%d/exe", Proc, false),
    pf!("/proc/%d/fd/%d", Proc, false),
    pf!("/proc/%d/maps", Proc, false),
    pf!("/proc/%d/environ", Proc, false),
    pf!("/proc/%d/cwd", Proc, false),
    pf!("/proc/%d/task", Proc, false),
    pf!("/proc/net/dev", Proc, false),
    pf!("/proc/net/route", Proc, false),
    pf!("/proc/net/tcp", Proc, false),
    pf!("/proc/net/udp", Proc, false),
    pf!("/proc/net/unix", Proc, false),
    pf!("/proc/sys/kernel/osrelease", Proc, false),
    pf!("/proc/sys/kernel/hostname", Proc, false),
    pf!("/proc/sys/kernel/random/uuid", Proc, false),
    pf!("/proc/sys/kernel/pid_max", Proc, false),
    pf!("/proc/sys/vm/overcommit_memory", Proc, false),
    pf!("/proc/sys/fs/file-max", Proc, false),
    pf!("/proc/sys/net/core/somaxconn", Proc, false),
    pf!("/proc/devices", Proc, false),
    pf!("/proc/partitions", Proc, false),
    pf!("/proc/swaps", Proc, false),
    pf!("/proc/diskstats", Proc, false),
    pf!("/proc/interrupts", Proc, true),
    pf!("/proc/vmstat", Proc, true),
    pf!("/proc/zoneinfo", Proc, true),
    pf!("/proc/buddyinfo", Proc, true),
    pf!("/proc/slabinfo", Proc, true),
    pf!("/proc/modules", Proc, true),
    pf!("/proc/kallsyms", Proc, true),
    pf!("/proc/kcore", Proc, true),
    pf!("/proc/kmsg", Proc, true),
    pf!("/proc/config.gz", Proc, true),
    pf!("/proc/sysrq-trigger", Proc, true),
    pf!("/proc/mdstat", Proc, true),
    pf!("/proc/mtrr", Proc, true),
    pf!("/proc/bus/usb", Proc, true),
    pf!("/proc/acpi/%s", Proc, true),
    pf!("/proc/ide/%s", Proc, true),
    pf!("/proc/scsi/scsi", Proc, true),
    pf!("/proc/tty/drivers", Proc, true),
    // /sys attributes.
    pf!("/sys/devices/system/cpu", Sys, false),
    pf!("/sys/devices/system/cpu/online", Sys, false),
    pf!("/sys/devices/system/cpu/cpu%d/cpufreq/scaling_governor", Sys, true),
    pf!("/sys/devices/system/node", Sys, true),
    pf!("/sys/class/net", Sys, false),
    pf!("/sys/class/net/%s/address", Sys, false),
    pf!("/sys/class/block", Sys, true),
    pf!("/sys/class/power_supply", Sys, true),
    pf!("/sys/class/backlight/%s/brightness", Sys, true),
    pf!("/sys/class/thermal/thermal_zone%d/temp", Sys, true),
    pf!("/sys/class/tty", Sys, true),
    pf!("/sys/block/%s/queue/scheduler", Sys, true),
    pf!("/sys/block/%s/size", Sys, true),
    pf!("/sys/bus/pci/devices", Sys, true),
    pf!("/sys/bus/usb/devices", Sys, true),
    pf!("/sys/module", Sys, true),
    pf!("/sys/module/%s/parameters/%s", Sys, true),
    pf!("/sys/kernel/mm/transparent_hugepage/enabled", Sys, true),
    pf!("/sys/kernel/debug", Sys, true),
    pf!("/sys/fs/cgroup", Sys, false),
    pf!("/sys/fs/selinux/enforce", Sys, true),
    pf!("/sys/firmware/efi", Sys, true),
    pf!("/sys/power/state", Sys, true),
    pf!("/sys/hypervisor/uuid", Sys, true),
];

/// Matcher over the pseudo-file inventory.
///
/// Besides the named inventory, an optional synthetic `/sys` attribute tail
/// (used by the corpus generator to model the anonymous long tail) can be
/// appended with [`PseudoFileSet::with_synthetic_tail`].
#[derive(Debug, Clone)]
pub struct PseudoFileSet {
    patterns: Vec<(String, PseudoFs, bool)>,
}

impl PseudoFileSet {
    /// Builds the matcher over the named inventory.
    pub fn new() -> Self {
        let patterns = PSEUDO_FILES
            .iter()
            .map(|d| (d.pattern.to_owned(), d.fs, d.special_purpose))
            .collect();
        Self { patterns }
    }

    /// Appends `n` synthetic special-purpose `/sys` attribute families,
    /// modelling the anonymous driver-attribute tail.
    pub fn with_synthetic_tail(mut self, n: usize) -> Self {
        for i in 0..n {
            self.patterns.push((
                format!("/sys/devices/synthetic/dev{i:03}/attr"),
                PseudoFs::Sys,
                true,
            ));
        }
        self
    }

    /// Number of pseudo-file APIs tracked.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the set is empty (never true for the named inventory).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The pattern string for a pseudo-file id.
    pub fn pattern(&self, id: u32) -> Option<&str> {
        self.patterns.get(id as usize).map(|(p, _, _)| p.as_str())
    }

    /// The owning filesystem for a pseudo-file id.
    pub fn fs_of(&self, id: u32) -> Option<PseudoFs> {
        self.patterns.get(id as usize).map(|&(_, fs, _)| fs)
    }

    /// Whether a pseudo-file id is special-purpose.
    pub fn special_purpose(&self, id: u32) -> Option<bool> {
        self.patterns.get(id as usize).map(|&(_, _, sp)| sp)
    }

    /// Iterates `(id, pattern, fs, special_purpose)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str, PseudoFs, bool)> {
        self.patterns
            .iter()
            .enumerate()
            .map(|(i, (p, fs, sp))| (i as u32, p.as_str(), *fs, *sp))
    }

    /// Matches a string found in a binary's read-only data against the
    /// inventory, returning the pseudo-file id when it names (or formats
    /// into) a tracked file.
    ///
    /// Matching rules, mirroring the paper's §3.4 methodology:
    ///
    /// - a literal pattern matches the exact string;
    /// - a format pattern matches a string with identical literal segments
    ///   and `%`-conversions at the same positions (the
    ///   `sprintf("/proc/%d/cmdline", pid)` case), **or** a concrete string
    ///   that instantiates the conversions (e.g. `/proc/1/cmdline`).
    pub fn match_string(&self, s: &str) -> Option<u32> {
        if !s.starts_with("/proc") && !s.starts_with("/dev") && !s.starts_with("/sys") {
            return None;
        }
        // Exact or identical-format match first.
        if let Some(i) = self.patterns.iter().position(|(p, _, _)| p == s) {
            return Some(i as u32);
        }
        // Then concrete instantiation of a format pattern.
        self.patterns
            .iter()
            .position(|(p, _, _)| p.contains('%') && pattern_matches(p, s))
            .map(|i| i as u32)
    }
}

impl Default for PseudoFileSet {
    fn default() -> Self {
        Self::new()
    }
}

/// Returns true when concrete path `s` instantiates format `pattern`.
///
/// `%d`/`%u`/`%lu` match a non-empty digit run; `%s` matches a non-empty run
/// without `/`. Conversions must be consumed in order; remaining text must
/// match literally.
fn pattern_matches(pattern: &str, s: &str) -> bool {
    let mut pat = pattern;
    let mut rest = s;
    loop {
        match pat.find('%') {
            None => return pat == rest,
            Some(at) => {
                let (lit, after) = pat.split_at(at);
                let Some(stripped) = rest.strip_prefix(lit) else {
                    return false;
                };
                rest = stripped;
                // Parse the conversion.
                let conv = after.trim_start_matches('%');
                let (kind, tail) = match conv.as_bytes() {
                    [b'l', b'u', ..] => (b'd', &conv[2..]),
                    [b'd', ..] | [b'u', ..] => (b'd', &conv[1..]),
                    [b's', ..] => (b's', &conv[1..]),
                    _ => return false,
                };
                let matcher: fn(char) -> bool = if kind == b'd' {
                    |c| c.is_ascii_digit()
                } else {
                    |c| c != '/'
                };
                let taken = rest.chars().take_while(|&c| matcher(c)).count();
                if taken == 0 {
                    return false;
                }
                rest = &rest[taken..];
                pat = tail;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_patterns_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for d in PSEUDO_FILES {
            assert!(seen.insert(d.pattern), "duplicate pattern {}", d.pattern);
        }
    }

    #[test]
    fn exact_literal_match() {
        let set = PseudoFileSet::new();
        let id = set.match_string("/dev/null").expect("tracked");
        assert_eq!(set.pattern(id), Some("/dev/null"));
        assert_eq!(set.fs_of(id), Some(PseudoFs::Dev));
    }

    #[test]
    fn format_pattern_matches_itself() {
        let set = PseudoFileSet::new();
        let id = set.match_string("/proc/%d/cmdline").expect("tracked");
        assert_eq!(set.pattern(id), Some("/proc/%d/cmdline"));
    }

    #[test]
    fn format_pattern_matches_instantiation() {
        let set = PseudoFileSet::new();
        let id = set.match_string("/proc/1234/cmdline").expect("tracked");
        assert_eq!(set.pattern(id), Some("/proc/%d/cmdline"));
        assert!(set.match_string("/proc/x/cmdline").is_none());
    }

    #[test]
    fn string_s_conversion() {
        let set = PseudoFileSet::new();
        let id = set.match_string("/sys/class/net/eth0/address").expect("tracked");
        assert_eq!(set.pattern(id), Some("/sys/class/net/%s/address"));
        assert!(set.match_string("/sys/class/net//address").is_none());
    }

    #[test]
    fn untracked_and_foreign_paths() {
        let set = PseudoFileSet::new();
        assert!(set.match_string("/etc/passwd").is_none());
        assert!(set.match_string("/proc/not/a/real/file").is_none());
        assert!(set.match_string("relative/proc").is_none());
    }

    #[test]
    fn synthetic_tail_extends_inventory() {
        let set = PseudoFileSet::new().with_synthetic_tail(10);
        assert_eq!(set.len(), PSEUDO_FILES.len() + 10);
        let id = set
            .match_string("/sys/devices/synthetic/dev003/attr")
            .expect("tail entry");
        assert_eq!(set.special_purpose(id), Some(true));
    }

    #[test]
    fn inventory_spans_all_three_filesystems() {
        let dev = PSEUDO_FILES.iter().filter(|d| d.fs == PseudoFs::Dev).count();
        let proc = PSEUDO_FILES.iter().filter(|d| d.fs == PseudoFs::Proc).count();
        let sys = PSEUDO_FILES.iter().filter(|d| d.fs == PseudoFs::Sys).count();
        assert!(dev >= 25, "dev {dev}");
        assert!(proc >= 50, "proc {proc}");
        assert!(sys >= 20, "sys {sys}");
        assert_eq!(dev + proc + sys, PSEUDO_FILES.len());
    }

    #[test]
    fn lu_conversion_matches_digits() {
        // %lu patterns (long-unsigned) match digit runs too.
        let mut set = PseudoFileSet::new().with_synthetic_tail(0);
        let _ = &mut set;
        assert!(pattern_matches("/proc/%lu/x", "/proc/123/x"));
        assert!(!pattern_matches("/proc/%lu/x", "/proc/ab/x"));
    }

    #[test]
    fn nested_format_conversions() {
        let set = PseudoFileSet::new();
        let id = set.match_string("/proc/42/fd/7").expect("tracked");
        assert_eq!(set.pattern(id), Some("/proc/%d/fd/%d"));
    }
}
