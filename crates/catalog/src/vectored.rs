//! Vectored system call opcode tables: `ioctl`, `fcntl`, and `prctl`.
//!
//! Some system calls export a secondary system call table through their first
//! (or second) argument. The study treats each opcode of these *vectored*
//! system calls as an API in its own right, because "partial support for
//! `ioctl`" says nothing about which applications actually run.
//!
//! Linux 3.19 defines:
//!
//! - **635** `ioctl` operation codes across kernel subsystems and in-tree
//!   drivers (the table is extensible by modules, which is exactly why its
//!   tail is so long);
//! - **18** `fcntl` commands;
//! - **44** `prctl` options.
//!
//! We name every opcode the study's figures single out (the 47 TTY/generic
//! I/O operations with ~100% importance, the networking `SIOC*` family,
//! `/dev/kvm`'s `KVM_*` codes, ...) and fill the remainder of the 635-entry
//! ioctl space with deterministic synthetic driver codes, mirroring the
//! anonymous long tail of in-tree driver ioctls (DESIGN.md §3).

/// Subsystem grouping for an `ioctl` operation code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoctlGroup {
    /// TTY and line-discipline operations (`TC*`, `TIOC*`).
    Tty,
    /// Generic file/IO operations (`FIO*`, `FIGETBSZ`, ...).
    GenericIo,
    /// Socket and network-interface configuration (`SIOC*`).
    Net,
    /// Block-device operations (`BLK*`).
    Block,
    /// Virtual terminal and console (`VT_*`, `KD*`).
    Console,
    /// KVM hypervisor control (`KVM_*`), used essentially only by qemu.
    Kvm,
    /// Framebuffer (`FBIO*`).
    Framebuffer,
    /// Input devices (`EVIOC*`).
    Input,
    /// CD-ROM and removable storage.
    Cdrom,
    /// Sound subsystem.
    Sound,
    /// DRM/graphics.
    Drm,
    /// The anonymous long tail of driver-defined operations.
    Driver,
}

/// A single vectored-system-call operation code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectoredOp {
    /// The operation code value (as passed in the argument register).
    pub code: u64,
    /// Symbolic name (kernel macro name, or a synthetic `DRV*` name for the
    /// anonymous driver tail).
    pub name: String,
    /// Subsystem group (only meaningful for ioctl; fcntl/prctl use
    /// [`IoctlGroup::GenericIo`]).
    pub group: IoctlGroup,
}

/// Named ioctl operations singled out by the study.
///
/// The first 47 entries are the TTY/generic-I/O operations the paper reports
/// at ~100% API importance (Figure 4).
const NAMED_IOCTLS: &[(u64, &str, IoctlGroup)] = &[
    // TTY operations (Figure 4's "frequently used operations for TTY console").
    (0x5401, "TCGETS", IoctlGroup::Tty),
    (0x5402, "TCSETS", IoctlGroup::Tty),
    (0x5403, "TCSETSW", IoctlGroup::Tty),
    (0x5404, "TCSETSF", IoctlGroup::Tty),
    (0x5405, "TCGETA", IoctlGroup::Tty),
    (0x5406, "TCSETA", IoctlGroup::Tty),
    (0x5407, "TCSETAW", IoctlGroup::Tty),
    (0x5408, "TCSETAF", IoctlGroup::Tty),
    (0x5409, "TCSBRK", IoctlGroup::Tty),
    (0x540A, "TCXONC", IoctlGroup::Tty),
    (0x540B, "TCFLSH", IoctlGroup::Tty),
    (0x540C, "TIOCEXCL", IoctlGroup::Tty),
    (0x540D, "TIOCNXCL", IoctlGroup::Tty),
    (0x540E, "TIOCSCTTY", IoctlGroup::Tty),
    (0x540F, "TIOCGPGRP", IoctlGroup::Tty),
    (0x5410, "TIOCSPGRP", IoctlGroup::Tty),
    (0x5411, "TIOCOUTQ", IoctlGroup::Tty),
    (0x5412, "TIOCSTI", IoctlGroup::Tty),
    (0x5413, "TIOCGWINSZ", IoctlGroup::Tty),
    (0x5414, "TIOCSWINSZ", IoctlGroup::Tty),
    (0x5415, "TIOCMGET", IoctlGroup::Tty),
    (0x5416, "TIOCMBIS", IoctlGroup::Tty),
    (0x5417, "TIOCMBIC", IoctlGroup::Tty),
    (0x5418, "TIOCMSET", IoctlGroup::Tty),
    (0x5419, "TIOCGSOFTCAR", IoctlGroup::Tty),
    (0x541A, "TIOCSSOFTCAR", IoctlGroup::Tty),
    (0x541B, "FIONREAD", IoctlGroup::GenericIo),
    (0x541C, "TIOCLINUX", IoctlGroup::Tty),
    (0x541D, "TIOCCONS", IoctlGroup::Tty),
    (0x541E, "TIOCGSERIAL", IoctlGroup::Tty),
    (0x541F, "TIOCSSERIAL", IoctlGroup::Tty),
    (0x5420, "TIOCPKT", IoctlGroup::Tty),
    (0x5421, "FIONBIO", IoctlGroup::GenericIo),
    (0x5422, "TIOCNOTTY", IoctlGroup::Tty),
    (0x5423, "TIOCSETD", IoctlGroup::Tty),
    (0x5424, "TIOCGETD", IoctlGroup::Tty),
    (0x5425, "TCSBRKP", IoctlGroup::Tty),
    (0x5427, "TIOCSBRK", IoctlGroup::Tty),
    (0x5428, "TIOCCBRK", IoctlGroup::Tty),
    (0x5429, "TIOCGSID", IoctlGroup::Tty),
    (0x8004_5430, "TIOCGPTN", IoctlGroup::Tty),
    (0x4004_5431, "TIOCSPTLCK", IoctlGroup::Tty),
    (0x5450, "FIONCLEX", IoctlGroup::GenericIo),
    (0x5451, "FIOCLEX", IoctlGroup::GenericIo),
    (0x5452, "FIOASYNC", IoctlGroup::GenericIo),
    (0x5460, "FIOQSIZE", IoctlGroup::GenericIo),
    (0x0000_0002, "FIGETBSZ", IoctlGroup::GenericIo),
    // Socket/network configuration.
    (0x8901, "FIOSETOWN", IoctlGroup::Net),
    (0x8902, "SIOCSPGRP", IoctlGroup::Net),
    (0x8903, "FIOGETOWN", IoctlGroup::Net),
    (0x8904, "SIOCGPGRP", IoctlGroup::Net),
    (0x8905, "SIOCATMARK", IoctlGroup::Net),
    (0x8906, "SIOCGSTAMP", IoctlGroup::Net),
    (0x8912, "SIOCGIFCONF", IoctlGroup::Net),
    (0x8913, "SIOCGIFFLAGS", IoctlGroup::Net),
    (0x8914, "SIOCSIFFLAGS", IoctlGroup::Net),
    (0x8915, "SIOCGIFADDR", IoctlGroup::Net),
    (0x891B, "SIOCGIFNETMASK", IoctlGroup::Net),
    (0x8921, "SIOCGIFMTU", IoctlGroup::Net),
    (0x8927, "SIOCGIFHWADDR", IoctlGroup::Net),
    (0x8933, "SIOCGIFINDEX", IoctlGroup::Net),
    (0x8942, "SIOCGIFBRDADDR", IoctlGroup::Net),
    (0x8946, "SIOCETHTOOL", IoctlGroup::Net),
    // Block devices.
    (0x1260, "BLKGETSIZE", IoctlGroup::Block),
    (0x1261, "BLKFLSBUF", IoctlGroup::Block),
    (0x1268, "BLKSSZGET", IoctlGroup::Block),
    (0x8008_1272, "BLKGETSIZE64", IoctlGroup::Block),
    (0x126C, "BLKDISCARD", IoctlGroup::Block),
    // Console / virtual terminal.
    (0x4B3A, "KDSETMODE", IoctlGroup::Console),
    (0x4B3B, "KDGETMODE", IoctlGroup::Console),
    (0x4B44, "KDGKBMODE", IoctlGroup::Console),
    (0x4B45, "KDSKBMODE", IoctlGroup::Console),
    (0x5600, "VT_OPENQRY", IoctlGroup::Console),
    (0x5603, "VT_GETSTATE", IoctlGroup::Console),
    (0x5606, "VT_ACTIVATE", IoctlGroup::Console),
    (0x5607, "VT_WAITACTIVE", IoctlGroup::Console),
    // KVM (used essentially only by qemu; the paper's /dev/kvm example).
    (0xAE00, "KVM_GET_API_VERSION", IoctlGroup::Kvm),
    (0xAE01, "KVM_CREATE_VM", IoctlGroup::Kvm),
    (0xAE03, "KVM_CHECK_EXTENSION", IoctlGroup::Kvm),
    (0xAE41, "KVM_CREATE_VCPU", IoctlGroup::Kvm),
    (0xAE80, "KVM_RUN", IoctlGroup::Kvm),
    // Framebuffer.
    (0x4600, "FBIOGET_VSCREENINFO", IoctlGroup::Framebuffer),
    (0x4601, "FBIOPUT_VSCREENINFO", IoctlGroup::Framebuffer),
    (0x4602, "FBIOGET_FSCREENINFO", IoctlGroup::Framebuffer),
    // Input devices.
    (0x8004_4501, "EVIOCGVERSION", IoctlGroup::Input),
    (0x8008_4502, "EVIOCGID", IoctlGroup::Input),
    (0x8100_4506, "EVIOCGNAME", IoctlGroup::Input),
    // CD-ROM.
    (0x5309, "CDROMEJECT", IoctlGroup::Cdrom),
    (0x5325, "CDROM_GET_CAPABILITY", IoctlGroup::Cdrom),
    // Sound.
    (0xC1D0_4111, "SNDRV_PCM_IOCTL_HW_PARAMS", IoctlGroup::Sound),
    (0x4142, "SNDRV_PCM_IOCTL_PREPARE", IoctlGroup::Sound),
    // DRM.
    (0xC010_6400, "DRM_IOCTL_VERSION", IoctlGroup::Drm),
    (0x8010_6401, "DRM_IOCTL_GET_UNIQUE", IoctlGroup::Drm),
];

/// Number of ioctl operation codes defined in Linux 3.19 (kernel + in-tree
/// drivers), as reported by the paper.
pub const IOCTL_DEFINED: usize = 635;

/// The number of leading named-ioctl entries that form the paper's
/// "47 frequently used operations for TTY console or generic IO devices".
pub const IOCTL_TTY_GENERIC_COUNT: usize = 47;

/// Builds the full 635-entry ioctl table: every named operation plus a
/// deterministic synthetic driver tail.
///
/// Synthetic entries model the anonymous long tail of in-tree driver ioctls;
/// their codes live in the conventional `_IO(magic, nr)` space with magic
/// bytes unused by the named set, so codes never collide.
pub fn ioctl_table() -> Vec<VectoredOp> {
    let mut ops: Vec<VectoredOp> = NAMED_IOCTLS
        .iter()
        .map(|&(code, name, group)| VectoredOp { code, name: name.to_owned(), group })
        .collect();
    let named = ops.len();
    // Fill the driver tail: magic bytes 0xD0.. with sequential numbers.
    let mut magic: u64 = 0xD0;
    let mut nr: u64 = 0;
    while ops.len() < IOCTL_DEFINED {
        let idx = ops.len() - named;
        ops.push(VectoredOp {
            code: (magic << 8) | nr,
            name: format!("DRV{:02}_IOC{:02}", magic - 0xD0, nr),
            group: IoctlGroup::Driver,
        });
        nr += 1;
        if nr == 64 {
            nr = 0;
            magic += 1;
        }
        debug_assert!(idx < IOCTL_DEFINED);
    }
    ops
}

/// The 18 `fcntl` commands of Linux 3.19 considered by the study.
pub const FCNTL_OPS: &[(u64, &str)] = &[
    (0, "F_DUPFD"),
    (1, "F_GETFD"),
    (2, "F_SETFD"),
    (3, "F_GETFL"),
    (4, "F_SETFL"),
    (5, "F_GETLK"),
    (6, "F_SETLK"),
    (7, "F_SETLKW"),
    (8, "F_SETOWN"),
    (9, "F_GETOWN"),
    (10, "F_SETSIG"),
    (11, "F_GETSIG"),
    (15, "F_SETOWN_EX"),
    (16, "F_GETOWN_EX"),
    (1024, "F_SETLEASE"),
    (1025, "F_GETLEASE"),
    (1026, "F_NOTIFY"),
    (1030, "F_DUPFD_CLOEXEC"),
];

/// The 44 `prctl` options of Linux 3.19 considered by the study.
pub const PRCTL_OPS: &[(u64, &str)] = &[
    (1, "PR_SET_PDEATHSIG"),
    (2, "PR_GET_PDEATHSIG"),
    (3, "PR_GET_DUMPABLE"),
    (4, "PR_SET_DUMPABLE"),
    (5, "PR_GET_UNALIGN"),
    (6, "PR_SET_UNALIGN"),
    (7, "PR_GET_KEEPCAPS"),
    (8, "PR_SET_KEEPCAPS"),
    (9, "PR_GET_FPEMU"),
    (10, "PR_SET_FPEMU"),
    (11, "PR_GET_FPEXC"),
    (12, "PR_SET_FPEXC"),
    (13, "PR_GET_TIMING"),
    (14, "PR_SET_TIMING"),
    (15, "PR_SET_NAME"),
    (16, "PR_GET_NAME"),
    (19, "PR_GET_ENDIAN"),
    (20, "PR_SET_ENDIAN"),
    (21, "PR_GET_SECCOMP"),
    (22, "PR_SET_SECCOMP"),
    (23, "PR_CAPBSET_READ"),
    (24, "PR_CAPBSET_DROP"),
    (25, "PR_GET_TSC"),
    (26, "PR_SET_TSC"),
    (27, "PR_GET_SECUREBITS"),
    (28, "PR_SET_SECUREBITS"),
    (29, "PR_SET_TIMERSLACK"),
    (30, "PR_GET_TIMERSLACK"),
    (31, "PR_TASK_PERF_EVENTS_DISABLE"),
    (32, "PR_TASK_PERF_EVENTS_ENABLE"),
    (33, "PR_MCE_KILL"),
    (34, "PR_MCE_KILL_GET"),
    (35, "PR_SET_MM"),
    (36, "PR_SET_CHILD_SUBREAPER"),
    (37, "PR_GET_CHILD_SUBREAPER"),
    (38, "PR_SET_NO_NEW_PRIVS"),
    (39, "PR_GET_NO_NEW_PRIVS"),
    (40, "PR_GET_TID_ADDRESS"),
    (41, "PR_SET_THP_DISABLE"),
    (42, "PR_GET_THP_DISABLE"),
    (43, "PR_MPX_ENABLE_MANAGEMENT"),
    (44, "PR_MPX_DISABLE_MANAGEMENT"),
    (0x5961_6D61, "PR_SET_PTRACER"),
    (45, "PR_GET_MPX_STATUS"),
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ioctl_table_has_635_entries() {
        assert_eq!(ioctl_table().len(), IOCTL_DEFINED);
    }

    #[test]
    fn ioctl_codes_and_names_are_unique() {
        let ops = ioctl_table();
        let codes: HashSet<u64> = ops.iter().map(|o| o.code).collect();
        assert_eq!(codes.len(), ops.len(), "duplicate ioctl code");
        let names: HashSet<&str> = ops.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names.len(), ops.len(), "duplicate ioctl name");
    }

    #[test]
    fn tty_generic_prefix_is_47_ops() {
        let ops = ioctl_table();
        let head = &ops[..IOCTL_TTY_GENERIC_COUNT];
        assert!(head.iter().all(|o| matches!(
            o.group,
            IoctlGroup::Tty | IoctlGroup::GenericIo
        )));
        assert_eq!(head.last().map(|o| o.name.as_str()), Some("FIGETBSZ"));
    }

    #[test]
    fn fcntl_has_18_commands() {
        assert_eq!(FCNTL_OPS.len(), 18);
        let codes: HashSet<u64> = FCNTL_OPS.iter().map(|&(c, _)| c).collect();
        assert_eq!(codes.len(), 18);
    }

    #[test]
    fn prctl_has_44_options() {
        assert_eq!(PRCTL_OPS.len(), 44);
        let codes: HashSet<u64> = PRCTL_OPS.iter().map(|&(c, _)| c).collect();
        assert_eq!(codes.len(), 44);
    }

    #[test]
    fn driver_tail_fills_exactly_to_the_defined_count() {
        let ops = ioctl_table();
        let named = ops.iter().filter(|o| o.group != IoctlGroup::Driver).count();
        let tail = ops.iter().filter(|o| o.group == IoctlGroup::Driver).count();
        assert_eq!(named + tail, IOCTL_DEFINED);
        assert!(tail > 400, "the anonymous driver tail dominates: {tail}");
        // Every subsystem group that the figures discuss is represented.
        for g in [IoctlGroup::Tty, IoctlGroup::Net, IoctlGroup::Block,
                  IoctlGroup::Kvm, IoctlGroup::Console] {
            assert!(ops.iter().any(|o| o.group == g), "{g:?} missing");
        }
    }

    #[test]
    fn well_known_ioctls_present() {
        let ops = ioctl_table();
        let find = |n: &str| ops.iter().find(|o| o.name == n).map(|o| o.code);
        assert_eq!(find("TCGETS"), Some(0x5401));
        assert_eq!(find("TIOCGWINSZ"), Some(0x5413));
        assert_eq!(find("FIONREAD"), Some(0x541B));
        assert_eq!(find("KVM_RUN"), Some(0xAE80));
    }
}
