//! The GNU libc 2.21 exported-function inventory.
//!
//! The study analyzes the 1,274 global function symbols exported by
//! `libc-2.21.so` (paper §3.5): their per-application usage drives the
//! Figure 7 importance distribution, the libc-restructuring experiment, and
//! the Table 7 libc-variant comparison.
//!
//! We reconstruct the inventory from three parts (DESIGN.md §3):
//!
//! 1. a curated list of real exported names across every glibc family
//!    (stdio, string, stdlib, POSIX I/O, sockets, time, signals, wide
//!    characters, locales, IPC, fortify `__*_chk` variants, LFS `*64`
//!    variants, ISO-C99 scanf shims, C++ runtime hooks, ...);
//! 2. deterministic per-symbol *nominal code sizes* (used by the
//!    restructuring experiment's size accounting);
//! 3. a documented synthetic `__glibc_internal_NNN` tail standing in for the
//!    remaining internal exports (`_IO_*` vtable machinery, NSS and resolver
//!    internals), bringing the total to exactly
//!    [`GLIBC_2_21_SYMBOL_COUNT`].

use std::collections::HashMap;

/// Number of global function symbols exported by glibc 2.21 (paper §3.5).
pub const GLIBC_2_21_SYMBOL_COUNT: usize = 1274;

/// Functional family of a libc symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymbolFamily {
    /// Buffered I/O (`stdio.h`).
    Stdio,
    /// Memory and string routines (`string.h`).
    Str,
    /// Allocation, conversion, environment (`stdlib.h`).
    Stdlib,
    /// POSIX file and process calls (`unistd.h`, `fcntl.h`, ...).
    Posix,
    /// Sockets and name resolution.
    Socket,
    /// Clocks, timers, and calendar time.
    Time,
    /// Signal handling.
    Signal,
    /// Wide-character and multibyte routines.
    Wide,
    /// Character classification.
    Ctype,
    /// Locale machinery.
    Locale,
    /// Users, groups, shadow entries.
    Pwd,
    /// System V / POSIX IPC and semaphores.
    Ipc,
    /// Scheduling and affinity.
    Sched,
    /// Directory traversal and globbing.
    Dirent,
    /// Memory mapping.
    Mman,
    /// Extended attributes.
    Xattr,
    /// Event APIs (poll, epoll, inotify, ...).
    Event,
    /// Fortified `__*_chk` hardening variants.
    Fortify,
    /// Large-file-support `*64` variants.
    Lfs,
    /// Threading stubs exported by libc proper.
    Thread,
    /// Runtime/internal exports (`__libc_start_main`, `__cxa_*`, `_IO_*`).
    Internal,
    /// Synthetic stand-ins for unnamed internal exports.
    Generated,
}

/// One exported libc function symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LibcSymbol {
    /// Exported symbol name.
    pub name: String,
    /// Nominal machine-code size in bytes (deterministic; used for the
    /// restructuring experiment's size accounting).
    pub size: u32,
    /// Functional family.
    pub family: SymbolFamily,
}

macro_rules! family_list {
    ($fam:ident : $($name:expr),+ $(,)?) => {
        &[$(($name, SymbolFamily::$fam)),+]
    };
}

const STDIO: &[(&str, SymbolFamily)] = family_list![Stdio:
    "printf", "fprintf", "sprintf", "snprintf", "vprintf", "vfprintf",
    "vsprintf", "vsnprintf", "asprintf", "vasprintf", "dprintf", "vdprintf",
    "scanf", "fscanf", "sscanf", "vscanf", "vfscanf", "vsscanf",
    "fopen", "freopen", "fclose", "fflush", "fcloseall",
    "fread", "fwrite", "fgets", "fputs", "fgetc", "fputc",
    "getc", "putc", "getchar", "putchar", "ungetc", "gets", "puts",
    "fseek", "ftell", "rewind", "fgetpos", "fsetpos", "fseeko", "ftello",
    "clearerr", "feof", "ferror", "fileno", "fdopen",
    "setbuf", "setvbuf", "setbuffer", "setlinebuf",
    "tmpfile", "tmpnam", "tmpnam_r", "tempnam", "perror", "remove",
    "popen", "pclose", "fmemopen", "open_memstream", "open_wmemstream",
    "getline", "getdelim", "fopencookie", "cuserid", "ctermid",
    "flockfile", "ftrylockfile", "funlockfile",
    "getc_unlocked", "putc_unlocked", "getchar_unlocked", "putchar_unlocked",
    "fgetc_unlocked", "fputc_unlocked", "fread_unlocked", "fwrite_unlocked",
    "fgets_unlocked", "fputs_unlocked", "feof_unlocked", "ferror_unlocked",
    "clearerr_unlocked", "fileno_unlocked", "fflush_unlocked",
    "putw", "getw", "setbuffer_unlocked",
];

const STR: &[(&str, SymbolFamily)] = family_list![Str:
    "memcpy", "memmove", "memset", "memcmp", "memchr", "memrchr",
    "rawmemchr", "mempcpy", "memccpy", "memmem", "memfrob",
    "strcpy", "strncpy", "strcat", "strncat", "strcmp", "strncmp",
    "strcoll", "strxfrm", "strchr", "strrchr", "strchrnul",
    "strcspn", "strspn", "strpbrk", "strstr", "strcasestr",
    "strtok", "strtok_r", "strlen", "strnlen",
    "strerror", "strerror_r", "strsignal",
    "strcasecmp", "strncasecmp", "strdup", "strndup", "strsep",
    "stpcpy", "stpncpy", "strverscmp", "strfry",
    "bcopy", "bzero", "bcmp", "index", "rindex", "ffs", "ffsl", "ffsll",
    "basename", "dirname", "swab",
    "strcoll_l", "strxfrm_l", "strcasecmp_l", "strncasecmp_l",
    "strerror_l", "strtol_l", "strtoul_l", "strtod_l",
];

const STDLIB: &[(&str, SymbolFamily)] = family_list![Stdlib:
    "malloc", "free", "calloc", "realloc", "cfree",
    "posix_memalign", "memalign", "valloc", "pvalloc", "aligned_alloc",
    "malloc_usable_size", "malloc_trim", "malloc_stats", "mallopt", "mallinfo",
    "atoi", "atol", "atoll", "atof",
    "strtol", "strtoul", "strtoll", "strtoull", "strtoq", "strtouq",
    "strtof", "strtod", "strtold", "strtoimax", "strtoumax",
    "rand", "srand", "rand_r", "random", "srandom", "initstate", "setstate",
    "random_r", "srandom_r", "initstate_r", "setstate_r",
    "drand48", "erand48", "lrand48", "nrand48", "mrand48", "jrand48",
    "srand48", "seed48", "lcong48", "drand48_r", "lrand48_r", "mrand48_r",
    "abort", "atexit", "on_exit", "exit", "_exit", "_Exit",
    "quick_exit", "at_quick_exit",
    "getenv", "setenv", "unsetenv", "putenv", "clearenv", "secure_getenv",
    "mktemp", "mkstemp", "mkstemps", "mkdtemp", "mkostemp", "mkostemps",
    "system", "realpath", "canonicalize_file_name",
    "abs", "labs", "llabs", "imaxabs", "div", "ldiv", "lldiv", "imaxdiv",
    "mblen", "mbtowc", "wctomb", "mbstowcs", "wcstombs",
    "qsort", "qsort_r", "bsearch", "lsearch", "lfind",
    "ecvt", "fcvt", "gcvt", "getsubopt", "rpmatch", "getloadavg", "ptsname", "ptsname_r",
    "grantpt", "unlockpt", "posix_openpt", "a64l", "l64a",
];

const POSIX: &[(&str, SymbolFamily)] = family_list![Posix:
    "open", "openat", "creat", "close", "read", "write",
    "pread", "pwrite", "readv", "writev", "preadv", "pwritev",
    "lseek", "access", "faccessat", "euidaccess", "eaccess",
    "alarm", "brk", "sbrk", "chdir", "fchdir",
    "chown", "fchown", "lchown", "fchownat",
    "chmod", "fchmod", "fchmodat", "umask",
    "dup", "dup2", "dup3", "fcntl", "flock", "lockf",
    "fsync", "fdatasync", "syncfs", "sync", "sync_file_range",
    "ftruncate", "truncate", "fallocate", "posix_fallocate", "posix_fadvise",
    "getcwd", "getwd", "get_current_dir_name",
    "getdomainname", "setdomainname", "gethostname", "sethostname",
    "gethostid", "sethostid", "getdtablesize", "getpagesize",
    "getegid", "geteuid", "getgid", "getuid", "getgroups",
    "getlogin", "getlogin_r", "getpass",
    "getopt", "getopt_long", "getopt_long_only",
    "getpgid", "getpgrp", "getpid", "getppid", "getsid", "gettid",
    "isatty", "ttyname", "ttyname_r", "tcgetpgrp", "tcsetpgrp",
    "tcgetattr", "tcsetattr", "tcsendbreak", "tcdrain", "tcflush", "tcflow",
    "tcgetsid", "cfgetispeed", "cfgetospeed", "cfsetispeed", "cfsetospeed",
    "cfsetspeed", "cfmakeraw",
    "link", "linkat", "symlink", "symlinkat", "readlink", "readlinkat",
    "unlink", "unlinkat", "rmdir", "rename", "renameat",
    "mkdir", "mkdirat", "mknod", "mknodat", "mkfifo", "mkfifoat",
    "stat", "fstat", "lstat", "fstatat",
    "statfs", "fstatfs", "statvfs", "fstatvfs",
    "utime", "utimes", "futimes", "lutimes", "futimens", "utimensat",
    "futimesat",
    "nice", "pause", "pipe", "pipe2",
    "fork", "vfork", "execl", "execlp", "execle", "execv", "execvp",
    "execve", "execvpe", "fexecve",
    "wait", "waitpid", "wait3", "wait4", "waitid",
    "posix_spawn", "posix_spawnp",
    "setegid", "seteuid", "setgid", "setuid", "setpgid", "setpgrp",
    "setregid", "setreuid", "setresgid", "setresuid",
    "getresuid", "getresgid", "setsid", "setfsuid", "setfsgid",
    "sleep", "usleep", "ualarm", "daemon", "chroot", "ctermid_r",
    "sysconf", "fpathconf", "pathconf", "confstr",
    "ioctl", "uname", "syscall",
    "getrlimit", "setrlimit", "prlimit", "getrusage",
    "getpriority", "setpriority",
    "clone", "unshare", "setns", "personality",
    "capget", "capset", "prctl", "ptrace", "reboot",
    "swapon", "swapoff", "mount", "umount", "umount2", "pivot_root",
    "syslog", "klogctl", "vsyslog", "openlog", "closelog", "setlogmask",
    "sysinfo", "acct", "iopl", "ioperm",
    "sendfile", "splice", "tee", "vmsplice",
    "readahead", "getauxval", "sethostent", "endhostent",
    "name_to_handle_at", "open_by_handle_at",
    "process_vm_readv", "process_vm_writev", "kcmp",
    "getentropy",
];

const SOCKET: &[(&str, SymbolFamily)] = family_list![Socket:
    "socket", "socketpair", "bind", "listen", "accept", "accept4",
    "connect", "getsockname", "getpeername",
    "send", "recv", "sendto", "recvfrom", "sendmsg", "recvmsg",
    "sendmmsg", "recvmmsg", "getsockopt", "setsockopt", "shutdown",
    "sockatmark", "isfdtype",
    "gethostbyname", "gethostbyaddr", "gethostbyname_r", "gethostbyaddr_r",
    "gethostbyname2", "gethostbyname2_r", "gethostent", "gethostent_r",
    "getaddrinfo", "freeaddrinfo", "getnameinfo", "gai_strerror",
    "getservbyname", "getservbyport", "getservbyname_r", "getservbyport_r",
    "getservent", "setservent", "endservent",
    "getprotobyname", "getprotobynumber", "getprotoent",
    "setprotoent", "endprotoent",
    "getnetent", "getnetbyname", "getnetbyaddr", "setnetent", "endnetent",
    "inet_addr", "inet_ntoa", "inet_aton", "inet_ntop", "inet_pton",
    "inet_network", "inet_makeaddr", "inet_lnaof", "inet_netof",
    "htons", "htonl", "ntohs", "ntohl",
    "if_nametoindex", "if_indextoname", "if_nameindex", "if_freenameindex",
    "getifaddrs", "freeifaddrs",
    "res_init", "res_query", "res_search", "res_querydomain", "res_mkquery",
    "res_send", "dn_comp", "dn_expand", "herror", "hstrerror",
    ];

const TIME: &[(&str, SymbolFamily)] = family_list![Time:
    "time", "clock", "gettimeofday", "settimeofday",
    "clock_gettime", "clock_settime", "clock_getres", "clock_nanosleep",
    "clock_getcpuclockid", "clock_adjtime",
    "mktime", "localtime", "localtime_r", "gmtime", "gmtime_r",
    "asctime", "asctime_r", "ctime", "ctime_r",
    "strftime", "strftime_l", "strptime", "strptime_l",
    "difftime", "timegm", "timelocal", "tzset", "dysize",
    "nanosleep", "adjtime", "adjtimex", "ntp_gettime", "ntp_gettimex",
    "ntp_adjtime", "getdate", "getdate_r",
    "getitimer", "setitimer",
    "timer_create", "timer_delete", "timer_settime", "timer_gettime",
    "timer_getoverrun", "timespec_get", "ftime",
    "timerfd_create", "timerfd_settime", "timerfd_gettime",
    "stime", ];

const SIGNAL: &[(&str, SymbolFamily)] = family_list![Signal:
    "signal", "sigaction", "sigprocmask", "sigpending", "sigsuspend",
    "sigwait", "sigwaitinfo", "sigtimedwait", "sigqueue",
    "raise", "kill", "killpg", "tgkill",
    "sigemptyset", "sigfillset", "sigaddset", "sigdelset", "sigismember",
    "sigisemptyset", "sigandset", "sigorset",
    "sigaltstack", "siginterrupt", "sigsetmask", "siggetmask", "sigblock",
    "sigpause", "sigstack", "sigreturn",
    "psignal", "psiginfo", "bsd_signal", "sysv_signal", "ssignal", "gsignal",
    "sigvec", "sighold", "sigrelse", "sigignore", "sigset",
    "setjmp", "_setjmp", "longjmp", "_longjmp", "siglongjmp", "__sigsetjmp",
    "abort_handler_s",
];

const WIDE: &[(&str, SymbolFamily)] = family_list![Wide:
    "wcscpy", "wcsncpy", "wcscat", "wcsncat", "wcscmp", "wcsncmp",
    "wcslen", "wcsnlen", "wcschr", "wcsrchr", "wcsstr",
    "wcstok", "wcscspn", "wcsspn", "wcspbrk", "wmemcpy", "wmemmove", "wmemset", "wmemcmp", "wmemchr", "mbrtowc", "wcrtomb", "mbsrtowcs", "wcsrtombs", "mbsnrtowcs",
    "wcsnrtombs", "mbrlen", "mbsinit", "btowc", "wctob",
    "fwide", "fgetwc", "fputwc", "getwc", "putwc", "getwchar", "putwchar",
    "fgetws", "fputws", "ungetwc",
    "fgetwc_unlocked", "fputwc_unlocked", "getwc_unlocked", "putwc_unlocked",
    "getwchar_unlocked", "putwchar_unlocked", "fgetws_unlocked",
    "fputws_unlocked",
    "wprintf", "fwprintf", "swprintf", "vwprintf", "vfwprintf", "vswprintf",
    "wscanf", "fwscanf", "swscanf", "vwscanf", "vfwscanf", "vswscanf",
    "wcstol", "wcstoul", "wcstoll", "wcstoull", "wcstod", "wcstof",
    "wcstold", "wcstoimax", "wcstoumax",
    "wcscoll", "wcsxfrm", "wcscoll_l", "wcsxfrm_l", "wcsdup",
    "wcscasecmp", "wcsncasecmp", "wcscasecmp_l", "wcsncasecmp_l",
    "wcwidth", "wcswidth", "wcpcpy", "wcpncpy", "wcsftime",
];

const CTYPE: &[(&str, SymbolFamily)] = family_list![Ctype:
    "isalnum", "isalpha", "iscntrl", "isdigit", "isgraph", "islower",
    "isprint", "ispunct", "isspace", "isupper", "isxdigit", "isblank",
    "isascii", "toascii", "tolower", "toupper", "_tolower", "_toupper",
    "isalnum_l", "isalpha_l", "isdigit_l", "islower_l", "isupper_l",
    "isspace_l", "tolower_l", "toupper_l",
    "iswalnum", "iswalpha", "iswcntrl", "iswdigit", "iswgraph", "iswlower",
    "iswprint", "iswpunct", "iswspace", "iswupper", "iswxdigit", "iswblank",
    "towlower", "towupper", "wctype", "iswctype", "wctrans", "towctrans",
    "iswalnum_l", "iswalpha_l", "towlower_l", "towupper_l", "wctype_l",
    "iswctype_l",
];

const LOCALE: &[(&str, SymbolFamily)] = family_list![Locale:
    "setlocale", "localeconv", "newlocale", "duplocale", "freelocale",
    "uselocale", "nl_langinfo", "nl_langinfo_l",
    "iconv_open", "iconv", "iconv_close",
    "catopen", "catgets", "catclose",
    "gettext", "dgettext", "dcgettext", "ngettext", "dngettext",
    "dcngettext", "textdomain", "bindtextdomain", "bind_textdomain_codeset",
];

const PWD: &[(&str, SymbolFamily)] = family_list![Pwd:
    "getpwnam", "getpwuid", "getpwnam_r", "getpwuid_r",
    "getpwent", "getpwent_r", "setpwent", "endpwent", "fgetpwent", "putpwent",
    "getgrnam", "getgrgid", "getgrnam_r", "getgrgid_r",
    "getgrent", "getgrent_r", "setgrent", "endgrent", "fgetgrent", "putgrent",
    "getgrouplist", "initgroups", "setgroups",
    "getspnam", "getspnam_r", "getspent", "setspent", "endspent", "sgetspent",
    "fgetspent", "putspent", "lckpwdf", "ulckpwdf",
];

const IPC: &[(&str, SymbolFamily)] = family_list![Ipc:
    "ftok", "semget", "semop", "semctl", "semtimedop",
    "msgget", "msgsnd", "msgrcv", "msgctl",
    "shmget", "shmat", "shmdt", "shmctl",
    "mq_open", "mq_close", "mq_unlink", "mq_send", "mq_receive",
    "mq_timedsend", "mq_timedreceive", "mq_notify", "mq_getattr",
    "mq_setattr",
    "sem_open", "sem_close", "sem_unlink", "sem_init", "sem_destroy",
    "sem_wait", "sem_trywait", "sem_timedwait", "sem_post", "sem_getvalue",
    "aio_read", "aio_write", "aio_error", "aio_return", "aio_suspend",
    "aio_cancel", "aio_fsync", "lio_listio",
];

const SCHED: &[(&str, SymbolFamily)] = family_list![Sched:
    "sched_yield", "sched_setscheduler", "sched_getscheduler",
    "sched_setparam", "sched_getparam",
    "sched_get_priority_max", "sched_get_priority_min",
    "sched_rr_get_interval", "sched_setaffinity", "sched_getaffinity",
    "sched_getcpu",
];

const DIRENT: &[(&str, SymbolFamily)] = family_list![Dirent:
    "opendir", "fdopendir", "closedir", "readdir", "readdir_r",
    "rewinddir", "seekdir", "telldir", "dirfd",
    "scandir", "scandirat", "alphasort", "versionsort",
    "ftw", "nftw", "fts_open", "fts_read", "fts_children", "fts_set",
    "fts_close",
    "glob", "globfree", "fnmatch", "wordexp", "wordfree",
    "nftw64",
];

const MMAN: &[(&str, SymbolFamily)] = family_list![Mman:
    "mmap", "munmap", "mprotect", "msync", "madvise", "posix_madvise",
    "mincore", "mlock", "munlock", "mlockall", "munlockall", "mremap",
    "remap_file_pages", "shm_open", "shm_unlink", ];

const XATTR: &[(&str, SymbolFamily)] = family_list![Xattr:
    "setxattr", "lsetxattr", "fsetxattr", "getxattr", "lgetxattr",
    "fgetxattr", "listxattr", "llistxattr", "flistxattr",
    "removexattr", "lremovexattr", "fremovexattr",
];

const EVENT: &[(&str, SymbolFamily)] = family_list![Event:
    "poll", "ppoll", "select", "pselect",
    "epoll_create", "epoll_create1", "epoll_ctl", "epoll_wait", "epoll_pwait",
    "inotify_init", "inotify_init1", "inotify_add_watch", "inotify_rm_watch",
    "eventfd", "eventfd_read", "eventfd_write",
    "signalfd", "fanotify_init", "fanotify_mark",
];

const FORTIFY: &[(&str, SymbolFamily)] = family_list![Fortify:
    "__printf_chk", "__fprintf_chk", "__sprintf_chk", "__snprintf_chk",
    "__vprintf_chk", "__vfprintf_chk", "__vsprintf_chk", "__vsnprintf_chk",
    "__asprintf_chk", "__vasprintf_chk", "__dprintf_chk", "__vdprintf_chk",
    "__memcpy_chk", "__memmove_chk", "__memset_chk", "__mempcpy_chk",
    "__strcpy_chk", "__strncpy_chk", "__strcat_chk", "__strncat_chk",
    "__stpcpy_chk", "__stpncpy_chk",
    "__gets_chk", "__fgets_chk", "__fgets_unlocked_chk",
    "__read_chk", "__pread_chk", "__pread64_chk",
    "__readlink_chk", "__readlinkat_chk",
    "__getcwd_chk", "__getwd_chk", "__recv_chk", "__recvfrom_chk",
    "__realpath_chk", "__ptsname_r_chk", "__ttyname_r_chk",
    "__gethostname_chk", "__getdomainname_chk", "__getlogin_r_chk",
    "__getgroups_chk", "__confstr_chk",
    "__wcscpy_chk", "__wcsncpy_chk", "__wcscat_chk", "__wcsncat_chk",
    "__wmemcpy_chk", "__wmemmove_chk", "__wmemset_chk",
    "__swprintf_chk", "__vswprintf_chk", "__wprintf_chk", "__fwprintf_chk",
    "__vwprintf_chk", "__vfwprintf_chk", "__fgetws_chk",
    "__fgetws_unlocked_chk",
    "__mbstowcs_chk", "__wcstombs_chk", "__mbsrtowcs_chk", "__wcsrtombs_chk",
    "__mbsnrtowcs_chk", "__wcsnrtombs_chk", "__wcrtomb_chk",
    "__syslog_chk", "__vsyslog_chk", "__fread_chk", "__fread_unlocked_chk",
    "__fdelt_chk", "__poll_chk", "__ppoll_chk", "__longjmp_chk",
    "__stack_chk_fail", "__fortify_fail", "__chk_fail", ];

const LFS: &[(&str, SymbolFamily)] = family_list![Lfs:
    "open64", "openat64", "creat64", "fopen64", "freopen64", "tmpfile64",
    "fseeko64", "ftello64", "fgetpos64", "fsetpos64",
    "mmap64", "lseek64", "pread64", "pwrite64", "preadv64", "pwritev64",
    "truncate64", "ftruncate64", "lockf64", "fallocate64",
    "posix_fadvise64", "posix_fallocate64",
    "stat64", "fstat64", "lstat64", "fstatat64",
    "statfs64", "fstatfs64", "statvfs64", "fstatvfs64",
    "readdir64", "readdir64_r", "scandir64", "alphasort64", "versionsort64",
    "glob64", "globfree64", "getrlimit64", "setrlimit64",
    "mkstemp64", "mkostemp64", "mkstemps64", "mkostemps64",
    "sendfile64", "getdirentries64",
];

const THREAD: &[(&str, SymbolFamily)] = family_list![Thread:
    "pthread_self", "pthread_equal", "pthread_attr_init",
    "pthread_attr_destroy", "pthread_attr_setdetachstate",
    "pthread_attr_getdetachstate",
    "pthread_mutex_init", "pthread_mutex_destroy", "pthread_mutex_lock",
    "pthread_mutex_trylock", "pthread_mutex_unlock",
    "pthread_cond_init", "pthread_cond_destroy", "pthread_cond_wait",
    "pthread_cond_signal", "pthread_cond_broadcast", "pthread_cond_timedwait",
    "pthread_once", "pthread_getspecific", "pthread_setspecific",
    "pthread_key_create", "pthread_key_delete",
    "pthread_setcancelstate", "pthread_setcanceltype", "pthread_exit",
    "pthread_atfork", "pthread_sigmask", "pthread_kill",
    "__errno_location", "__h_errno_location",
];

const INTERNAL: &[(&str, SymbolFamily)] = family_list![Internal:
    "__libc_start_main", "__libc_init_first", "__libc_current_sigrtmin",
    "__libc_current_sigrtmax", "__libc_allocate_rtsig",
    "__libc_malloc", "__libc_free", "__libc_calloc", "__libc_realloc",
    "__libc_memalign", "__libc_valloc", "__libc_pvalloc",
    "__cxa_atexit", "__cxa_finalize", "__cxa_thread_atexit_impl",
    "__register_atfork", "__libc_fork", "__libc_pread", "__libc_pwrite",
    "__assert_fail", "__assert_perror_fail", "__assert",
    "__overflow", "__uflow", "__underflow", "_IO_getc", "_IO_putc", "_IO_puts", "_IO_feof", "_IO_ferror",
    "_IO_ungetc", "_IO_flockfile", "_IO_funlockfile",
    "_IO_ftrylockfile", "_IO_vfprintf", "_IO_vfscanf", "_IO_vsprintf",
    "_IO_fgets", "_IO_fputs", "_IO_fread", "_IO_fwrite", "_IO_fopen",
    "_IO_fclose", "_IO_fflush", "_IO_fgetpos", "_IO_fsetpos", "_IO_seekoff",
    "_IO_seekpos", "_IO_file_overflow",
    "_IO_file_underflow", "_IO_file_sync", "_IO_file_xsputn",
    "_IO_file_xsgetn", "_IO_file_seekoff", "_IO_file_close",
    "_IO_file_attach", "_IO_file_open", "__xstat", "__fxstat", "__lxstat", "__fxstatat",
    "__xstat64", "__fxstat64", "__lxstat64", "__fxstatat64",
    "__xmknod", "__xmknodat",
    "__isoc99_scanf", "__isoc99_fscanf", "__isoc99_sscanf",
    "__isoc99_vscanf", "__isoc99_vfscanf", "__isoc99_vsscanf",
    "__isoc99_wscanf", "__isoc99_fwscanf", "__isoc99_swscanf",
    "__isoc99_vwscanf", "__isoc99_vfwscanf", "__isoc99_vswscanf",
    "__strtol_internal", "__strtoul_internal", "__strtoll_internal",
    "__strtoull_internal", "__strtod_internal", "__strtof_internal",
    "__strtold_internal", "__wcstol_internal", "__wcstoul_internal",
    "__wcstod_internal",
    "__sched_cpucount", "__sched_cpualloc", "__sched_cpufree",
    "__getpagesize", "__strdup", "__sbrk", "__select", "__poll",
    "__dup2", "__close", "__open", "__open64", "__read", "__write",
    "__fcntl", "__connect", "__send", "__recv", "__wait", "__waitpid",
    "__fork", "__vfork", "__getpid", "__gettimeofday", "__setpgid",
    "__sigaction", "__sigaddset", "__sigdelset", "__sigismember",
    "__sigpause", "__sigsuspend", "__statfs", "__lseek", "__pipe",
    "__backtrace", "backtrace", "backtrace_symbols", "backtrace_symbols_fd",
    "__res_init", "__res_query", "__res_search", "__res_state",
    "__nss_configure_lookup", "__nss_hostname_digits_dots",
    "__nss_database_lookup", "__nss_next", "__nss_passwd_lookup",
    "__nss_group_lookup", "__nss_hosts_lookup",
    "error", "error_at_line", "err", "errx", "warn", "warnx",
    "verr", "verrx", "vwarn", "vwarnx",
    "regcomp", "regexec", "regerror", "regfree",
    "getmntent", "getmntent_r", "setmntent", "addmntent", "endmntent",
    "hasmntopt", ];

/// Every curated family list in declaration order.
const FAMILIES: &[&[(&str, SymbolFamily)]] = &[
    STDIO, STR, STDLIB, POSIX, SOCKET, TIME, SIGNAL, WIDE, CTYPE, LOCALE,
    PWD, IPC, SCHED, DIRENT, MMAN, XATTR, EVENT, FORTIFY, LFS, THREAD,
    INTERNAL,
];

/// Deterministic nominal code size for a symbol name: FNV-1a folded into a
/// plausible per-function size range (32–2080 bytes).
fn nominal_size(name: &str) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    32 + (h % 2048) as u32
}

/// The reconstructed glibc 2.21 exported-function inventory.
#[derive(Debug, Clone)]
pub struct LibcInventory {
    symbols: Vec<LibcSymbol>,
    by_name: HashMap<String, u32>,
}

impl LibcInventory {
    /// Builds the glibc 2.21 inventory: all curated names plus the synthetic
    /// internal tail, totalling exactly [`GLIBC_2_21_SYMBOL_COUNT`].
    pub fn glibc_2_21() -> Self {
        let mut symbols = Vec::with_capacity(GLIBC_2_21_SYMBOL_COUNT);
        let mut by_name = HashMap::with_capacity(GLIBC_2_21_SYMBOL_COUNT);
        for fam in FAMILIES {
            for &(name, family) in *fam {
                debug_assert!(
                    !by_name.contains_key(name),
                    "duplicate curated symbol {name}"
                );
                by_name.insert(name.to_owned(), symbols.len() as u32);
                symbols.push(LibcSymbol {
                    name: name.to_owned(),
                    size: nominal_size(name),
                    family,
                });
            }
        }
        assert!(
            symbols.len() <= GLIBC_2_21_SYMBOL_COUNT,
            "curated list exceeds target count: {}",
            symbols.len()
        );
        let mut i = 0;
        while symbols.len() < GLIBC_2_21_SYMBOL_COUNT {
            let name = format!("__glibc_internal_{i:03}");
            by_name.insert(name.clone(), symbols.len() as u32);
            symbols.push(LibcSymbol {
                size: nominal_size(&name),
                name,
                family: SymbolFamily::Generated,
            });
            i += 1;
        }
        Self { symbols, by_name }
    }

    /// Number of symbols (always [`GLIBC_2_21_SYMBOL_COUNT`] for
    /// [`Self::glibc_2_21`]).
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the inventory is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Symbol definition by id.
    pub fn get(&self, id: u32) -> Option<&LibcSymbol> {
        self.symbols.get(id as usize)
    }

    /// Symbol id by exported name.
    pub fn id_of(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Iterates `(id, symbol)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &LibcSymbol)> {
        self.symbols.iter().enumerate().map(|(i, s)| (i as u32, s))
    }

    /// Total nominal code size of the listed symbol ids, in bytes.
    pub fn total_size(&self, ids: impl IntoIterator<Item = u32>) -> u64 {
        ids.into_iter()
            .filter_map(|id| self.get(id))
            .map(|s| u64::from(s.size))
            .sum()
    }
}

/// Reverses GNU fortify compile-time replacement: maps a `__*_chk` symbol to
/// the plain API it hardens (`__printf_chk` → `printf`).
///
/// This is the Table 7 "normalization" step: uClibc and musl do not export
/// the `_chk` names, so matching raw symbols makes them look far less
/// compatible than they are.
pub fn normalize_fortified(name: &str) -> Option<String> {
    let body = name.strip_prefix("__")?.strip_suffix("_chk")?;
    if body.is_empty() {
        return None;
    }
    Some(body.to_owned())
}

/// Reverses *any* compile-time API replacement glibc headers perform: the
/// fortify `__*_chk` wrapping and the ISO-C99 scanf redirection
/// (`__isoc99_scanf` → `scanf`). Returns the plain API the program's
/// source actually named, or `None` when the symbol is not a compile-time
/// alias.
pub fn normalize_compile_time_alias(name: &str) -> Option<String> {
    if let Some(base) = normalize_fortified(name) {
        return Some(base);
    }
    name.strip_prefix("__isoc99_").map(str::to_owned)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_has_exact_symbol_count() {
        let inv = LibcInventory::glibc_2_21();
        assert_eq!(inv.len(), GLIBC_2_21_SYMBOL_COUNT);
    }

    #[test]
    fn names_are_unique() {
        let inv = LibcInventory::glibc_2_21();
        assert_eq!(inv.by_name.len(), inv.len());
    }

    #[test]
    fn curated_names_resolve() {
        let inv = LibcInventory::glibc_2_21();
        for name in ["printf", "memcpy", "memalign", "__cxa_finalize",
                     "__printf_chk", "open64", "pthread_mutex_lock"] {
            let id = inv.id_of(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(inv.get(id).map(|s| s.name.as_str()), Some(name));
        }
    }

    #[test]
    fn sizes_are_deterministic_and_plausible() {
        let inv = LibcInventory::glibc_2_21();
        let inv2 = LibcInventory::glibc_2_21();
        for (id, sym) in inv.iter() {
            assert!(sym.size >= 32 && sym.size < 2080 + 32);
            assert_eq!(inv2.get(id).map(|s| s.size), Some(sym.size));
        }
    }

    #[test]
    fn fortify_normalization() {
        assert_eq!(normalize_fortified("__printf_chk").as_deref(), Some("printf"));
        assert_eq!(
            normalize_fortified("__memcpy_chk").as_deref(),
            Some("memcpy")
        );
        assert_eq!(normalize_fortified("printf"), None);
        assert_eq!(normalize_fortified("__chk"), None);
        // The normalized target of every curated fortify symbol that hardens
        // a real API must exist in the inventory.
        let inv = LibcInventory::glibc_2_21();
        let has = |n: &str| inv.id_of(n).is_some();
        for &(name, _) in FORTIFY {
            if let Some(base) = normalize_fortified(name) {
                // Runtime-support symbols (__chk_fail, __stack_chk_fail,
                // __fortify_fail, __fdelt_chk, __longjmp_chk) have no plain
                // counterpart; every other one should.
                let support = ["chk_fail", "stack", "fortify", "fdelt",
                               "longjmp", "explicit_bzero", "wcrtomb",
                               "realpath", "ptsname_r", "ttyname_r"];
                if support.iter().any(|s| base.contains(s)) {
                    continue;
                }
                assert!(has(&base), "no plain counterpart for {name} ({base})");
            }
        }
    }

    #[test]
    fn generated_tail_fills_remainder() {
        let inv = LibcInventory::glibc_2_21();
        let generated = inv
            .iter()
            .filter(|(_, s)| s.family == SymbolFamily::Generated)
            .count();
        assert!(generated > 0, "curated list should not exceed the target");
        let curated: usize = FAMILIES.iter().map(|f| f.len()).sum();
        assert_eq!(curated + generated, GLIBC_2_21_SYMBOL_COUNT);
    }

    #[test]
    fn total_size_sums_selected_ids() {
        let inv = LibcInventory::glibc_2_21();
        let a = inv.id_of("printf").unwrap();
        let b = inv.id_of("memcpy").unwrap();
        let expect =
            u64::from(inv.get(a).unwrap().size) + u64::from(inv.get(b).unwrap().size);
        assert_eq!(inv.total_size([a, b]), expect);
        assert_eq!(inv.total_size([]), 0);
    }
}
