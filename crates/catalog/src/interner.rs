//! Dense interning of [`Api`] identifiers and the word-packed [`ApiSet`].
//!
//! Every API in the Linux 3.19 catalog maps to a dense `u32` bit index:
//! per-kind base offsets (in `Api` ordering — syscalls, ioctls, fcntls,
//! prctls, pseudo-files, libc symbols) plus the variant's own dense
//! payload. The whole universe is ~2.5k bits, so a footprint is a few
//! dozen `u64` words: union is a word-wise OR, membership a single bit
//! test, and cardinality a popcount. This is what lets the metrics
//! engine's dependency-closure fixed point run at memory bandwidth
//! instead of `BTreeSet` node-chasing.

use std::sync::{Arc, OnceLock};

use crate::api::{Api, ApiKind, Catalog};

/// Number of `Api` kinds (and interner segments).
const KINDS: usize = 6;

/// The `Api → u32` interning table for one catalog universe.
///
/// Bit indices are assigned in `Api`'s `Ord` order, so iterating an
/// [`ApiSet`] in ascending bit order yields exactly the sequence a
/// `BTreeSet<Api>` over the same elements would.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiInterner {
    /// Per-kind starting bit, in `Api` variant order.
    bases: [u32; KINDS],
    /// Per-kind payload domain size, in `Api` variant order.
    domains: [u32; KINDS],
    /// Total number of bits.
    universe: u32,
}

fn kind_slot(kind: ApiKind) -> usize {
    match kind {
        ApiKind::Syscall => 0,
        ApiKind::Ioctl => 1,
        ApiKind::Fcntl => 2,
        ApiKind::Prctl => 3,
        ApiKind::PseudoFile => 4,
        ApiKind::LibcSymbol => 5,
    }
}

fn payload(api: Api) -> u32 {
    match api {
        Api::Syscall(n)
        | Api::Ioctl(n)
        | Api::Fcntl(n)
        | Api::Prctl(n)
        | Api::PseudoFile(n)
        | Api::LibcSymbol(n) => n,
    }
}

impl ApiInterner {
    /// Builds the interner for a catalog's API universe.
    pub fn from_catalog(catalog: &Catalog) -> Self {
        // Syscall payloads are kernel numbers; the table is dense on
        // x86-64 Linux 3.19, but derive the bound from the data anyway.
        let syscall_domain = catalog
            .syscalls
            .iter()
            .map(|d| d.number + 1)
            .max()
            .unwrap_or(0);
        let domains = [
            syscall_domain,
            catalog.ioctl_ops.len() as u32,
            crate::vectored::FCNTL_OPS.len() as u32,
            crate::vectored::PRCTL_OPS.len() as u32,
            catalog.pseudo_files.len() as u32,
            catalog.libc.len() as u32,
        ];
        let mut bases = [0u32; KINDS];
        let mut next = 0u32;
        for (base, domain) in bases.iter_mut().zip(domains) {
            *base = next;
            next += domain;
        }
        Self { bases, domains, universe: next }
    }

    /// The shared interner for the study's fixed Linux 3.19 universe.
    ///
    /// All [`ApiSet`]s (including `Default` ones) draw from this table,
    /// so any two sets can be OR-ed word-for-word.
    pub fn global() -> &'static Arc<ApiInterner> {
        static GLOBAL: OnceLock<Arc<ApiInterner>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(Self::from_catalog(&Catalog::linux_3_19())))
    }

    /// Dense bit index for an API, or `None` if its payload lies outside
    /// this universe (e.g. `Api::Syscall(9999)`).
    pub fn intern(&self, api: Api) -> Option<u32> {
        let slot = kind_slot(api.kind());
        let p = payload(api);
        (p < self.domains[slot]).then(|| self.bases[slot] + p)
    }

    /// The API whose bit index is `id`.
    ///
    /// # Panics
    /// If `id` is outside the universe.
    pub fn resolve(&self, id: u32) -> Api {
        assert!(id < self.universe, "api id {id} outside universe");
        // Six segments: a linear scan beats a binary search.
        let slot = (1..KINDS)
            .take_while(|&k| self.bases[k] <= id)
            .last()
            .unwrap_or(0);
        let p = id - self.bases[slot];
        match slot {
            0 => Api::Syscall(p),
            1 => Api::Ioctl(p),
            2 => Api::Fcntl(p),
            3 => Api::Prctl(p),
            4 => Api::PseudoFile(p),
            _ => Api::LibcSymbol(p),
        }
    }

    /// Total number of bit indices.
    pub fn universe(&self) -> usize {
        self.universe as usize
    }

    /// Number of `u64` words an [`ApiSet`] over this universe needs.
    pub fn words(&self) -> usize {
        (self.universe as usize).div_ceil(64)
    }
}

/// A set of APIs over the global interned universe, packed one bit per
/// API into `u64` words.
#[derive(Clone, PartialEq, Eq)]
pub struct ApiSet {
    words: Vec<u64>,
}

impl Default for ApiSet {
    fn default() -> Self {
        Self::new()
    }
}

impl ApiSet {
    /// The empty set.
    pub fn new() -> Self {
        Self { words: vec![0; ApiInterner::global().words()] }
    }

    /// Adds an API; returns whether it was newly inserted.
    ///
    /// # Panics
    /// If the API is outside the interned universe — resolved footprints
    /// only ever contain catalog APIs, so this indicates a bug upstream.
    pub fn insert(&mut self, api: Api) -> bool {
        let id = ApiInterner::global()
            .intern(api)
            .unwrap_or_else(|| panic!("{api:?} outside the interned catalog universe"));
        let (w, b) = (id as usize / 64, id % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Removes an API; returns whether it was present. Out-of-universe
    /// APIs were never present, so removing them is a no-op.
    pub fn remove(&mut self, api: Api) -> bool {
        match ApiInterner::global().intern(api) {
            Some(id) => {
                let (w, b) = (id as usize / 64, id % 64);
                let had = self.words[w] & (1 << b) != 0;
                self.words[w] &= !(1 << b);
                had
            }
            None => false,
        }
    }

    /// Membership test; out-of-universe APIs are simply absent.
    pub fn contains(&self, api: Api) -> bool {
        match ApiInterner::global().intern(api) {
            Some(id) => self.words[id as usize / 64] & (1 << (id % 64)) != 0,
            None => false,
        }
    }

    /// Word-wise OR of `other` into `self`; returns whether `self` grew
    /// (the signal the closure fixed point iterates on).
    pub fn union_with(&mut self, other: &ApiSet) -> bool {
        let mut grew = false;
        for (dst, &src) in self.words.iter_mut().zip(&other.words) {
            let merged = *dst | src;
            grew |= merged != *dst;
            *dst = merged;
        }
        grew
    }

    /// Whether the two sets share any element (no allocation).
    pub fn intersects(&self, other: &ApiSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .any(|(&a, &b)| a & b != 0)
    }

    /// Number of elements shared with `other` (popcount over the word-wise
    /// AND — no allocation).
    pub fn intersection_len(&self, other: &ApiSet) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Number of elements (popcount over the words).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates in ascending bit order — identical to the iteration order
    /// of a `BTreeSet<Api>` holding the same elements.
    pub fn iter(&self) -> impl Iterator<Item = Api> + '_ {
        let interner = ApiInterner::global();
        self.ids().map(move |id| interner.resolve(id))
    }

    /// Iterates the raw dense bit indices in ascending order.
    pub fn ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut rest = word;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros();
                rest &= rest - 1;
                Some(w as u32 * 64 + bit)
            })
        })
    }
}

impl Extend<Api> for ApiSet {
    fn extend<I: IntoIterator<Item = Api>>(&mut self, iter: I) {
        for api in iter {
            self.insert(api);
        }
    }
}

impl FromIterator<Api> for ApiSet {
    fn from_iter<I: IntoIterator<Item = Api>>(iter: I) -> Self {
        let mut set = Self::new();
        set.extend(iter);
        set
    }
}

impl<'a> IntoIterator for &'a ApiSet {
    type Item = Api;
    type IntoIter = Box<dyn Iterator<Item = Api> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl std::fmt::Debug for ApiSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn universe_covers_every_catalog_api() {
        let interner = ApiInterner::global();
        // 323 syscalls + 635 ioctls + fcntl + prctl + pseudo-files + 1274
        // libc symbols.
        assert!(interner.universe() > 2300, "universe {}", interner.universe());
        assert!(interner.words() < 64);
    }

    #[test]
    fn intern_resolve_roundtrip() {
        let interner = ApiInterner::global();
        let c = Catalog::linux_3_19();
        let samples = [
            c.syscall("read").unwrap(),
            c.syscall("kexec_load").unwrap(),
            c.ioctl("TCGETS").unwrap(),
            Api::Fcntl(0),
            Api::Prctl(3),
            c.pseudo_file("/dev/null").unwrap(),
            c.libc_symbol("printf").unwrap(),
        ];
        for api in samples {
            let id = interner.intern(api).unwrap();
            assert_eq!(interner.resolve(id), api, "roundtrip for {api:?}");
        }
    }

    #[test]
    fn interning_preserves_api_order() {
        let interner = ApiInterner::global();
        let apis = [
            Api::Syscall(0),
            Api::Syscall(322),
            Api::Ioctl(0),
            Api::Ioctl(1),
            Api::Fcntl(0),
            Api::Prctl(0),
            Api::PseudoFile(0),
            Api::LibcSymbol(0),
            Api::LibcSymbol(1273),
        ];
        let ids: Vec<u32> = apis.iter().map(|&a| interner.intern(a).unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids {ids:?}");
    }

    #[test]
    fn out_of_universe_is_absent_not_fatal() {
        assert!(ApiInterner::global().intern(Api::Syscall(9999)).is_none());
        let set = ApiSet::new();
        assert!(!set.contains(Api::Syscall(9999)));
        assert!(!set.contains(Api::LibcSymbol(1_000_000)));
    }

    #[test]
    fn set_semantics_match_btreeset() {
        let apis = [
            Api::Syscall(1),
            Api::LibcSymbol(10),
            Api::Ioctl(5),
            Api::Syscall(1),
            Api::PseudoFile(3),
        ];
        let set: ApiSet = apis.iter().copied().collect();
        let reference: BTreeSet<Api> = apis.iter().copied().collect();
        assert_eq!(set.len(), reference.len());
        let iterated: Vec<Api> = set.iter().collect();
        let expected: Vec<Api> = reference.iter().copied().collect();
        assert_eq!(iterated, expected, "iteration order matches BTreeSet");
        for &api in &apis {
            assert!(set.contains(api));
        }
        assert!(!set.contains(Api::Syscall(2)));
    }

    #[test]
    fn remove_and_intersection_len() {
        let mut a: ApiSet =
            [Api::Syscall(1), Api::Ioctl(2), Api::LibcSymbol(7)].into_iter().collect();
        let b: ApiSet =
            [Api::Syscall(1), Api::LibcSymbol(7), Api::Prctl(0)].into_iter().collect();
        assert_eq!(a.intersection_len(&b), 2);
        assert!(a.remove(Api::Syscall(1)), "present element removed");
        assert!(!a.remove(Api::Syscall(1)), "second removal is a no-op");
        assert!(!a.remove(Api::Syscall(9999)), "out-of-universe is absent");
        assert_eq!(a.len(), 2);
        assert_eq!(a.intersection_len(&b), 1);
        assert!(a.insert(Api::Syscall(1)), "removal really cleared the bit");
    }

    #[test]
    fn union_reports_growth() {
        let mut a: ApiSet = [Api::Syscall(1)].into_iter().collect();
        let b: ApiSet = [Api::Syscall(1), Api::Ioctl(2)].into_iter().collect();
        assert!(a.union_with(&b), "gains ioctl 2");
        assert!(!a.union_with(&b), "second OR is a no-op");
        assert_eq!(a.len(), 2);
        assert!(a.intersects(&b));
        assert!(!ApiSet::new().intersects(&b));
    }
}
