//! # apistudy-catalog
//!
//! Inventories of Linux system APIs for the EuroSys'16 study reproduction
//! ("A Study of Modern Linux API Usage and Compatibility"):
//!
//! - [`syscalls`] — the complete x86-64 Linux 3.19 system call table;
//! - [`vectored`] — `ioctl`/`fcntl`/`prctl` operation-code tables;
//! - [`pseudofiles`] — the `/proc`, `/dev`, `/sys` pseudo-file inventory
//!   with format-pattern matching;
//! - [`libc_symbols`] — the reconstructed glibc 2.21 exported-function
//!   inventory (1,274 symbols);
//! - [`wrappers`] — the reference libc-function → wrapped-syscalls map;
//! - [`variants`] — the §5 variant-pair relations (Tables 8–11);
//! - [`api`] — the unified [`Api`] identifier and the [`Catalog`] bundle.
//!
//! Everything here is *inventory*: descriptive data about which APIs exist.
//! Usage measurement lives in `apistudy-analysis`/`apistudy-core`; the
//! synthetic corpus that stands in for the Ubuntu archive lives in
//! `apistudy-corpus`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod interner;
pub mod libc_symbols;
pub mod pseudofiles;
pub mod syscalls;
pub mod variants;
pub mod vectored;
pub mod wrappers;

pub use api::{Api, ApiKind, Catalog};
pub use interner::{ApiInterner, ApiSet};
pub use libc_symbols::{LibcInventory, LibcSymbol, GLIBC_2_21_SYMBOL_COUNT};
pub use pseudofiles::{PseudoFileSet, PseudoFs};
pub use syscalls::{SyscallDef, SyscallStatus, SyscallTable, SYSCALLS};
pub use vectored::{IoctlGroup, VectoredOp, FCNTL_OPS, IOCTL_DEFINED, PRCTL_OPS};
