//! API variant relations studied in paper §5 (Tables 8–11).
//!
//! Many system calls come in families of variants: an insecure original and
//! a hardened replacement, an obsolete call and its successor, a
//! Linux-specific extension and a portable baseline, or a simple form and a
//! more powerful one. The unweighted-importance analysis compares adoption
//! within each pair.

/// The relationship between the two members of a variant pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VariantRelation {
    /// Table 8: `left` is the insecure/unclear API, `right` the secure or
    /// well-defined replacement.
    InsecureVsSecure,
    /// Table 9: `left` is the old (generally deprecated) API, `right` the
    /// preferred successor.
    OldVsNew,
    /// Table 10: `left` is Linux-specific, `right` portable/generic.
    LinuxVsPortable,
    /// Table 11: `left` is the simpler API, `right` the more powerful one.
    SimpleVsPowerful,
}

/// A pair of related system call variants (both are kernel syscall names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VariantPair {
    /// Semantic grouping shown in the paper's table rows (e.g. "Unclear vs.
    /// Well-defined ID Management Semantics").
    pub group: &'static str,
    /// The left-column syscall (insecure / old / Linux-specific / simple).
    pub left: &'static str,
    /// The right-column syscall (secure / new / portable / powerful).
    pub right: &'static str,
    /// Relation kind (which table the pair belongs to).
    pub relation: VariantRelation,
}

macro_rules! pairs {
    ($rel:ident : $(($group:expr, $l:expr, $r:expr)),+ $(,)?) => {
        &[$(VariantPair {
            group: $group,
            left: $l,
            right: $r,
            relation: VariantRelation::$rel,
        }),+]
    };
}

/// Table 8: insecure vs secure variant pairs.
pub const SECURITY_PAIRS: &[VariantPair] = pairs![InsecureVsSecure:
    ("id-management", "setuid", "setresuid"),
    ("id-management", "setreuid", "setresuid"),
    ("id-management", "setgid", "setresgid"),
    ("id-management", "setregid", "setresgid"),
    ("id-management", "getuid", "getresuid"),
    ("id-management", "geteuid", "getresuid"),
    ("id-management", "getgid", "getresgid"),
    ("id-management", "getegid", "getresgid"),
    ("atomic-dir-ops", "access", "faccessat"),
    ("atomic-dir-ops", "mkdir", "mkdirat"),
    ("atomic-dir-ops", "rename", "renameat"),
    ("atomic-dir-ops", "readlink", "readlinkat"),
    ("atomic-dir-ops", "chown", "fchownat"),
    ("atomic-dir-ops", "chmod", "fchmodat"),
];

/// Table 9: old (deprecated) vs new (preferred) variant pairs.
pub const GENERATION_PAIRS: &[VariantPair] = pairs![OldVsNew:
    ("dirents", "getdents", "getdents64"),
    ("utime", "utime", "utimes"),
    ("process-creation", "fork", "clone"),
    ("process-creation", "fork", "vfork"),
    ("thread-kill", "tkill", "tgkill"),
    ("wait", "wait4", "waitid"),
];

/// Table 10: Linux-specific vs portable/generic variant pairs.
pub const PORTABILITY_PAIRS: &[VariantPair] = pairs![LinuxVsPortable:
    ("vectored-io", "preadv", "readv"),
    ("vectored-io", "pwritev", "writev"),
    ("accept", "accept4", "accept"),
    ("poll", "ppoll", "poll"),
    ("multi-message", "recvmmsg", "recvmsg"),
    ("multi-message", "sendmmsg", "sendmsg"),
    ("pipe", "pipe2", "pipe"),
];

/// Table 11: simple vs powerful variant pairs (paper finds the *simple* side
/// wins; `left` is the simple member).
pub const POWER_PAIRS: &[VariantPair] = pairs![SimpleVsPowerful:
    ("read", "read", "pread64"),
    ("dup", "dup2", "dup3"),
    ("dup", "dup", "dup3"),
    ("socket-recv", "recvfrom", "recvmsg"),
    ("socket-send", "sendto", "sendmsg"),
    ("select", "select", "pselect6"),
    ("chdir", "chdir", "fchdir"),
];

/// All variant pairs across Tables 8–11.
pub fn all_pairs() -> impl Iterator<Item = &'static VariantPair> {
    SECURITY_PAIRS
        .iter()
        .chain(GENERATION_PAIRS)
        .chain(PORTABILITY_PAIRS)
        .chain(POWER_PAIRS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syscalls::SyscallTable;

    #[test]
    fn every_pair_member_is_a_real_syscall() {
        let t = SyscallTable::new();
        for p in all_pairs() {
            assert!(t.by_name(p.left).is_some(), "unknown syscall {}", p.left);
            assert!(t.by_name(p.right).is_some(), "unknown syscall {}", p.right);
        }
    }

    #[test]
    fn pair_members_differ() {
        for p in all_pairs() {
            assert_ne!(p.left, p.right);
        }
    }

    #[test]
    fn table_sizes() {
        assert_eq!(SECURITY_PAIRS.len(), 14);
        assert_eq!(GENERATION_PAIRS.len(), 6);
        assert_eq!(PORTABILITY_PAIRS.len(), 7);
        assert_eq!(POWER_PAIRS.len(), 7);
    }
}
