//! The x86-64 Linux 3.19 system call table.
//!
//! This is the inventory the study ranges over: every slot in
//! `arch/x86/syscalls/syscall_64.tbl` as of Linux 3.19 (numbers 0–322).
//! The paper reports "320 system calls as listed in `unistd.h`"; the
//! three-entry difference is a counting convention (three slots have no
//! `unistd.h` prototype). See DESIGN.md §3.
//!
//! Each entry carries a [`SyscallStatus`] used by the study:
//!
//! - [`SyscallStatus::Active`] — a regular, implemented system call.
//! - [`SyscallStatus::Retired`] — officially retired (returns `-ENOSYS`) but
//!   still *attempted* by legacy software, so it can have non-zero API
//!   importance (the paper's `uselib`/`nfsservctl` example).
//! - [`SyscallStatus::NoEntryPoint`] — a slot with no kernel entry point at
//!   all; the paper found exactly ten of these among its 18 unused calls.

use std::collections::HashMap;

/// Lifecycle status of a system call slot in Linux 3.19.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyscallStatus {
    /// Implemented and supported.
    Active,
    /// Officially retired; the kernel returns `-ENOSYS`, but legacy binaries
    /// may still attempt the call for backward compatibility.
    Retired,
    /// The slot is defined in headers but has no kernel entry point.
    NoEntryPoint,
}

/// Coarse functional category of a system call.
///
/// Categories are used for reporting (e.g. the stage table groups calls by
/// theme) and for the corpus generator's archetype construction; they do not
/// affect metric computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyscallCategory {
    /// Reads, writes, file descriptors, file metadata.
    FileIo,
    /// Directory and path manipulation.
    Path,
    /// Process lifecycle and credentials.
    Process,
    /// Scheduling control.
    Sched,
    /// Virtual memory management.
    Memory,
    /// Signals.
    Signal,
    /// Sockets and networking.
    Network,
    /// System V and POSIX IPC.
    Ipc,
    /// Clocks and timers.
    Time,
    /// Security, capabilities, keys.
    Security,
    /// Kernel modules.
    Module,
    /// Event notification (epoll, inotify, eventfd, ...).
    Event,
    /// Asynchronous I/O.
    Aio,
    /// Extended attributes.
    Xattr,
    /// NUMA placement.
    Numa,
    /// System administration (mount, reboot, quota, ...).
    Admin,
    /// Everything else.
    Misc,
}

/// A single system call definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallDef {
    /// The x86-64 system call number.
    pub number: u32,
    /// The canonical kernel name (without the `sys_` prefix).
    pub name: &'static str,
    /// Lifecycle status in Linux 3.19.
    pub status: SyscallStatus,
    /// Coarse functional category.
    pub category: SyscallCategory,
}

macro_rules! syscall_table {
    ($(($num:expr, $name:expr, $status:ident, $cat:ident)),+ $(,)?) => {
        &[
            $(SyscallDef {
                number: $num,
                name: $name,
                status: SyscallStatus::$status,
                category: SyscallCategory::$cat,
            }),+
        ]
    };
}

/// The complete x86-64 Linux 3.19 system call table, ordered by number.
pub const SYSCALLS: &[SyscallDef] = syscall_table![
    (0, "read", Active, FileIo),
    (1, "write", Active, FileIo),
    (2, "open", Active, FileIo),
    (3, "close", Active, FileIo),
    (4, "stat", Active, FileIo),
    (5, "fstat", Active, FileIo),
    (6, "lstat", Active, FileIo),
    (7, "poll", Active, Event),
    (8, "lseek", Active, FileIo),
    (9, "mmap", Active, Memory),
    (10, "mprotect", Active, Memory),
    (11, "munmap", Active, Memory),
    (12, "brk", Active, Memory),
    (13, "rt_sigaction", Active, Signal),
    (14, "rt_sigprocmask", Active, Signal),
    (15, "rt_sigreturn", Active, Signal),
    (16, "ioctl", Active, FileIo),
    (17, "pread64", Active, FileIo),
    (18, "pwrite64", Active, FileIo),
    (19, "readv", Active, FileIo),
    (20, "writev", Active, FileIo),
    (21, "access", Active, Path),
    (22, "pipe", Active, FileIo),
    (23, "select", Active, Event),
    (24, "sched_yield", Active, Sched),
    (25, "mremap", Active, Memory),
    (26, "msync", Active, Memory),
    (27, "mincore", Active, Memory),
    (28, "madvise", Active, Memory),
    (29, "shmget", Active, Ipc),
    (30, "shmat", Active, Ipc),
    (31, "shmctl", Active, Ipc),
    (32, "dup", Active, FileIo),
    (33, "dup2", Active, FileIo),
    (34, "pause", Active, Signal),
    (35, "nanosleep", Active, Time),
    (36, "getitimer", Active, Time),
    (37, "alarm", Active, Time),
    (38, "setitimer", Active, Time),
    (39, "getpid", Active, Process),
    (40, "sendfile", Active, FileIo),
    (41, "socket", Active, Network),
    (42, "connect", Active, Network),
    (43, "accept", Active, Network),
    (44, "sendto", Active, Network),
    (45, "recvfrom", Active, Network),
    (46, "sendmsg", Active, Network),
    (47, "recvmsg", Active, Network),
    (48, "shutdown", Active, Network),
    (49, "bind", Active, Network),
    (50, "listen", Active, Network),
    (51, "getsockname", Active, Network),
    (52, "getpeername", Active, Network),
    (53, "socketpair", Active, Network),
    (54, "setsockopt", Active, Network),
    (55, "getsockopt", Active, Network),
    (56, "clone", Active, Process),
    (57, "fork", Active, Process),
    (58, "vfork", Active, Process),
    (59, "execve", Active, Process),
    (60, "exit", Active, Process),
    (61, "wait4", Active, Process),
    (62, "kill", Active, Signal),
    (63, "uname", Active, Misc),
    (64, "semget", Active, Ipc),
    (65, "semop", Active, Ipc),
    (66, "semctl", Active, Ipc),
    (67, "shmdt", Active, Ipc),
    (68, "msgget", Active, Ipc),
    (69, "msgsnd", Active, Ipc),
    (70, "msgrcv", Active, Ipc),
    (71, "msgctl", Active, Ipc),
    (72, "fcntl", Active, FileIo),
    (73, "flock", Active, FileIo),
    (74, "fsync", Active, FileIo),
    (75, "fdatasync", Active, FileIo),
    (76, "truncate", Active, FileIo),
    (77, "ftruncate", Active, FileIo),
    (78, "getdents", Active, Path),
    (79, "getcwd", Active, Path),
    (80, "chdir", Active, Path),
    (81, "fchdir", Active, Path),
    (82, "rename", Active, Path),
    (83, "mkdir", Active, Path),
    (84, "rmdir", Active, Path),
    (85, "creat", Active, FileIo),
    (86, "link", Active, Path),
    (87, "unlink", Active, Path),
    (88, "symlink", Active, Path),
    (89, "readlink", Active, Path),
    (90, "chmod", Active, Path),
    (91, "fchmod", Active, FileIo),
    (92, "chown", Active, Path),
    (93, "fchown", Active, FileIo),
    (94, "lchown", Active, Path),
    (95, "umask", Active, Process),
    (96, "gettimeofday", Active, Time),
    (97, "getrlimit", Active, Process),
    (98, "getrusage", Active, Process),
    (99, "sysinfo", Active, Misc),
    (100, "times", Active, Time),
    (101, "ptrace", Active, Process),
    (102, "getuid", Active, Process),
    (103, "syslog", Active, Admin),
    (104, "getgid", Active, Process),
    (105, "setuid", Active, Process),
    (106, "setgid", Active, Process),
    (107, "geteuid", Active, Process),
    (108, "getegid", Active, Process),
    (109, "setpgid", Active, Process),
    (110, "getppid", Active, Process),
    (111, "getpgrp", Active, Process),
    (112, "setsid", Active, Process),
    (113, "setreuid", Active, Process),
    (114, "setregid", Active, Process),
    (115, "getgroups", Active, Process),
    (116, "setgroups", Active, Process),
    (117, "setresuid", Active, Process),
    (118, "getresuid", Active, Process),
    (119, "setresgid", Active, Process),
    (120, "getresgid", Active, Process),
    (121, "getpgid", Active, Process),
    (122, "setfsuid", Active, Process),
    (123, "setfsgid", Active, Process),
    (124, "getsid", Active, Process),
    (125, "capget", Active, Security),
    (126, "capset", Active, Security),
    (127, "rt_sigpending", Active, Signal),
    (128, "rt_sigtimedwait", Active, Signal),
    (129, "rt_sigqueueinfo", Active, Signal),
    (130, "rt_sigsuspend", Active, Signal),
    (131, "sigaltstack", Active, Signal),
    (132, "utime", Active, Path),
    (133, "mknod", Active, Path),
    (134, "uselib", Retired, Misc),
    (135, "personality", Active, Process),
    (136, "ustat", Active, Admin),
    (137, "statfs", Active, FileIo),
    (138, "fstatfs", Active, FileIo),
    (139, "sysfs", Active, Admin),
    (140, "getpriority", Active, Sched),
    (141, "setpriority", Active, Sched),
    (142, "sched_setparam", Active, Sched),
    (143, "sched_getparam", Active, Sched),
    (144, "sched_setscheduler", Active, Sched),
    (145, "sched_getscheduler", Active, Sched),
    (146, "sched_get_priority_max", Active, Sched),
    (147, "sched_get_priority_min", Active, Sched),
    (148, "sched_rr_get_interval", Active, Sched),
    (149, "mlock", Active, Memory),
    (150, "munlock", Active, Memory),
    (151, "mlockall", Active, Memory),
    (152, "munlockall", Active, Memory),
    (153, "vhangup", Active, Admin),
    (154, "modify_ldt", Active, Misc),
    (155, "pivot_root", Active, Admin),
    (156, "_sysctl", Active, Admin),
    (157, "prctl", Active, Process),
    (158, "arch_prctl", Active, Process),
    (159, "adjtimex", Active, Time),
    (160, "setrlimit", Active, Process),
    (161, "chroot", Active, Path),
    (162, "sync", Active, FileIo),
    (163, "acct", Active, Admin),
    (164, "settimeofday", Active, Time),
    (165, "mount", Active, Admin),
    (166, "umount2", Active, Admin),
    (167, "swapon", Active, Admin),
    (168, "swapoff", Active, Admin),
    (169, "reboot", Active, Admin),
    (170, "sethostname", Active, Admin),
    (171, "setdomainname", Active, Admin),
    (172, "iopl", Active, Admin),
    (173, "ioperm", Active, Admin),
    (174, "create_module", NoEntryPoint, Module),
    (175, "init_module", Active, Module),
    (176, "delete_module", Active, Module),
    (177, "get_kernel_syms", NoEntryPoint, Module),
    (178, "query_module", NoEntryPoint, Module),
    (179, "quotactl", Active, Admin),
    (180, "nfsservctl", Retired, Admin),
    (181, "getpmsg", NoEntryPoint, Misc),
    (182, "putpmsg", NoEntryPoint, Misc),
    (183, "afs_syscall", Retired, Misc),
    (184, "tuxcall", NoEntryPoint, Misc),
    (185, "security", Retired, Security),
    (186, "gettid", Active, Process),
    (187, "readahead", Active, FileIo),
    (188, "setxattr", Active, Xattr),
    (189, "lsetxattr", Active, Xattr),
    (190, "fsetxattr", Active, Xattr),
    (191, "getxattr", Active, Xattr),
    (192, "lgetxattr", Active, Xattr),
    (193, "fgetxattr", Active, Xattr),
    (194, "listxattr", Active, Xattr),
    (195, "llistxattr", Active, Xattr),
    (196, "flistxattr", Active, Xattr),
    (197, "removexattr", Active, Xattr),
    (198, "lremovexattr", Active, Xattr),
    (199, "fremovexattr", Active, Xattr),
    (200, "tkill", Active, Signal),
    (201, "time", Active, Time),
    (202, "futex", Active, Process),
    (203, "sched_setaffinity", Active, Sched),
    (204, "sched_getaffinity", Active, Sched),
    (205, "set_thread_area", NoEntryPoint, Misc),
    (206, "io_setup", Active, Aio),
    (207, "io_destroy", Active, Aio),
    (208, "io_getevents", Active, Aio),
    (209, "io_submit", Active, Aio),
    (210, "io_cancel", Active, Aio),
    (211, "get_thread_area", NoEntryPoint, Misc),
    (212, "lookup_dcookie", Active, Misc),
    (213, "epoll_create", Active, Event),
    (214, "epoll_ctl_old", NoEntryPoint, Event),
    (215, "epoll_wait_old", NoEntryPoint, Event),
    (216, "remap_file_pages", Active, Memory),
    (217, "getdents64", Active, Path),
    (218, "set_tid_address", Active, Process),
    (219, "restart_syscall", Active, Signal),
    (220, "semtimedop", Active, Ipc),
    (221, "fadvise64", Active, FileIo),
    (222, "timer_create", Active, Time),
    (223, "timer_settime", Active, Time),
    (224, "timer_gettime", Active, Time),
    (225, "timer_getoverrun", Active, Time),
    (226, "timer_delete", Active, Time),
    (227, "clock_settime", Active, Time),
    (228, "clock_gettime", Active, Time),
    (229, "clock_getres", Active, Time),
    (230, "clock_nanosleep", Active, Time),
    (231, "exit_group", Active, Process),
    (232, "epoll_wait", Active, Event),
    (233, "epoll_ctl", Active, Event),
    (234, "tgkill", Active, Signal),
    (235, "utimes", Active, Path),
    (236, "vserver", Retired, Misc),
    (237, "mbind", Active, Numa),
    (238, "set_mempolicy", Active, Numa),
    (239, "get_mempolicy", Active, Numa),
    (240, "mq_open", Active, Ipc),
    (241, "mq_unlink", Active, Ipc),
    (242, "mq_timedsend", Active, Ipc),
    (243, "mq_timedreceive", Active, Ipc),
    (244, "mq_notify", Active, Ipc),
    (245, "mq_getsetattr", Active, Ipc),
    (246, "kexec_load", Active, Admin),
    (247, "waitid", Active, Process),
    (248, "add_key", Active, Security),
    (249, "request_key", Active, Security),
    (250, "keyctl", Active, Security),
    (251, "ioprio_set", Active, Sched),
    (252, "ioprio_get", Active, Sched),
    (253, "inotify_init", Active, Event),
    (254, "inotify_add_watch", Active, Event),
    (255, "inotify_rm_watch", Active, Event),
    (256, "migrate_pages", Active, Numa),
    (257, "openat", Active, FileIo),
    (258, "mkdirat", Active, Path),
    (259, "mknodat", Active, Path),
    (260, "fchownat", Active, Path),
    (261, "futimesat", Active, Path),
    (262, "newfstatat", Active, FileIo),
    (263, "unlinkat", Active, Path),
    (264, "renameat", Active, Path),
    (265, "linkat", Active, Path),
    (266, "symlinkat", Active, Path),
    (267, "readlinkat", Active, Path),
    (268, "fchmodat", Active, Path),
    (269, "faccessat", Active, Path),
    (270, "pselect6", Active, Event),
    (271, "ppoll", Active, Event),
    (272, "unshare", Active, Process),
    (273, "set_robust_list", Active, Process),
    (274, "get_robust_list", Active, Process),
    (275, "splice", Active, FileIo),
    (276, "tee", Active, FileIo),
    (277, "sync_file_range", Active, FileIo),
    (278, "vmsplice", Active, FileIo),
    (279, "move_pages", Active, Numa),
    (280, "utimensat", Active, Path),
    (281, "epoll_pwait", Active, Event),
    (282, "signalfd", Active, Event),
    (283, "timerfd_create", Active, Time),
    (284, "eventfd", Active, Event),
    (285, "fallocate", Active, FileIo),
    (286, "timerfd_settime", Active, Time),
    (287, "timerfd_gettime", Active, Time),
    (288, "accept4", Active, Network),
    (289, "signalfd4", Active, Event),
    (290, "eventfd2", Active, Event),
    (291, "epoll_create1", Active, Event),
    (292, "dup3", Active, FileIo),
    (293, "pipe2", Active, FileIo),
    (294, "inotify_init1", Active, Event),
    (295, "preadv", Active, FileIo),
    (296, "pwritev", Active, FileIo),
    (297, "rt_tgsigqueueinfo", Active, Signal),
    (298, "perf_event_open", Active, Misc),
    (299, "recvmmsg", Active, Network),
    (300, "fanotify_init", Active, Event),
    (301, "fanotify_mark", Active, Event),
    (302, "prlimit64", Active, Process),
    (303, "name_to_handle_at", Active, FileIo),
    (304, "open_by_handle_at", Active, FileIo),
    (305, "clock_adjtime", Active, Time),
    (306, "syncfs", Active, FileIo),
    (307, "sendmmsg", Active, Network),
    (308, "setns", Active, Process),
    (309, "getcpu", Active, Sched),
    (310, "process_vm_readv", Active, Process),
    (311, "process_vm_writev", Active, Process),
    (312, "kcmp", Active, Process),
    (313, "finit_module", Active, Module),
    (314, "sched_setattr", Active, Sched),
    (315, "sched_getattr", Active, Sched),
    (316, "renameat2", Active, Path),
    (317, "seccomp", Active, Security),
    (318, "getrandom", Active, Security),
    (319, "memfd_create", Active, Memory),
    (320, "kexec_file_load", Active, Admin),
    (321, "bpf", Active, Security),
    (322, "execveat", Active, Process),
];


/// Mainline kernel versions in which the *newer* x86-64 system calls were
/// introduced (calls not listed predate 2.6.16 on x86-64). Powers the
/// adoption-lag analysis: Table 9's "adoption of newer variants is slow"
/// observation, quantified against API age.
pub const SYSCALL_INTRODUCED: &[(&str, &str)] = &[
    ("openat", "2.6.16"),
    ("mkdirat", "2.6.16"),
    ("mknodat", "2.6.16"),
    ("fchownat", "2.6.16"),
    ("futimesat", "2.6.16"),
    ("newfstatat", "2.6.16"),
    ("unlinkat", "2.6.16"),
    ("renameat", "2.6.16"),
    ("linkat", "2.6.16"),
    ("symlinkat", "2.6.16"),
    ("readlinkat", "2.6.16"),
    ("fchmodat", "2.6.16"),
    ("faccessat", "2.6.16"),
    ("pselect6", "2.6.16"),
    ("ppoll", "2.6.16"),
    ("unshare", "2.6.16"),
    ("set_robust_list", "2.6.17"),
    ("get_robust_list", "2.6.17"),
    ("splice", "2.6.17"),
    ("tee", "2.6.17"),
    ("sync_file_range", "2.6.17"),
    ("vmsplice", "2.6.17"),
    ("move_pages", "2.6.18"),
    ("utimensat", "2.6.22"),
    ("epoll_pwait", "2.6.19"),
    ("signalfd", "2.6.22"),
    ("timerfd_create", "2.6.25"),
    ("eventfd", "2.6.22"),
    ("fallocate", "2.6.23"),
    ("timerfd_settime", "2.6.25"),
    ("timerfd_gettime", "2.6.25"),
    ("accept4", "2.6.28"),
    ("signalfd4", "2.6.27"),
    ("eventfd2", "2.6.27"),
    ("epoll_create1", "2.6.27"),
    ("dup3", "2.6.27"),
    ("pipe2", "2.6.27"),
    ("inotify_init1", "2.6.27"),
    ("preadv", "2.6.30"),
    ("pwritev", "2.6.30"),
    ("rt_tgsigqueueinfo", "2.6.31"),
    ("perf_event_open", "2.6.31"),
    ("recvmmsg", "2.6.33"),
    ("fanotify_init", "2.6.36"),
    ("fanotify_mark", "2.6.36"),
    ("prlimit64", "2.6.36"),
    ("name_to_handle_at", "2.6.39"),
    ("open_by_handle_at", "2.6.39"),
    ("clock_adjtime", "2.6.39"),
    ("syncfs", "3.0"),
    ("sendmmsg", "3.0"),
    ("setns", "3.0"),
    ("getcpu", "2.6.19"),
    ("process_vm_readv", "3.2"),
    ("process_vm_writev", "3.2"),
    ("kcmp", "3.5"),
    ("finit_module", "3.8"),
    ("sched_setattr", "3.14"),
    ("sched_getattr", "3.14"),
    ("renameat2", "3.15"),
    ("seccomp", "3.17"),
    ("getrandom", "3.17"),
    ("memfd_create", "3.17"),
    ("kexec_file_load", "3.17"),
    ("bpf", "3.18"),
    ("execveat", "3.19"),
];

/// The kernel version a syscall was introduced in, when it postdates the
/// 2.6.16 baseline.
pub fn introduced_in(name: &str) -> Option<&'static str> {
    SYSCALL_INTRODUCED
        .iter()
        .find(|&&(n, _)| n == name)
        .map(|&(_, v)| v)
}

/// Indexed access to the system call table.
///
/// Construction builds name and number indices once; lookups are O(1).
#[derive(Debug, Clone)]
pub struct SyscallTable {
    by_name: HashMap<&'static str, u32>,
}

impl SyscallTable {
    /// Builds the lookup indices over [`SYSCALLS`].
    pub fn new() -> Self {
        let by_name = SYSCALLS.iter().map(|s| (s.name, s.number)).collect();
        Self { by_name }
    }

    /// Total number of table slots (323 for x86-64 Linux 3.19).
    pub fn len(&self) -> usize {
        SYSCALLS.len()
    }

    /// The table is never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Looks up a system call definition by number.
    pub fn by_number(&self, number: u32) -> Option<&'static SyscallDef> {
        SYSCALLS.get(number as usize).filter(|s| s.number == number)
    }

    /// Looks up a system call definition by kernel name.
    pub fn by_name(&self, name: &str) -> Option<&'static SyscallDef> {
        self.by_name.get(name).and_then(|&n| self.by_number(n))
    }

    /// Returns the system call number for a kernel name, if defined.
    pub fn number_of(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Iterates over all definitions in number order.
    pub fn iter(&self) -> impl Iterator<Item = &'static SyscallDef> {
        SYSCALLS.iter()
    }

    /// All system calls with the given status.
    pub fn with_status(
        &self,
        status: SyscallStatus,
    ) -> impl Iterator<Item = &'static SyscallDef> {
        SYSCALLS.iter().filter(move |s| s.status == status)
    }
}

impl Default for SyscallTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_dense_and_ordered() {
        for (i, def) in SYSCALLS.iter().enumerate() {
            assert_eq!(def.number as usize, i, "hole at slot {i}");
        }
    }

    #[test]
    fn table_covers_linux_3_19() {
        assert_eq!(SYSCALLS.len(), 323);
        assert_eq!(SYSCALLS.last().map(|s| s.name), Some("execveat"));
    }

    #[test]
    fn names_are_unique() {
        let table = SyscallTable::new();
        assert_eq!(table.by_name.len(), SYSCALLS.len());
    }

    #[test]
    fn well_known_numbers() {
        let t = SyscallTable::new();
        assert_eq!(t.number_of("read"), Some(0));
        assert_eq!(t.number_of("write"), Some(1));
        assert_eq!(t.number_of("ioctl"), Some(16));
        assert_eq!(t.number_of("fcntl"), Some(72));
        assert_eq!(t.number_of("prctl"), Some(157));
        assert_eq!(t.number_of("futex"), Some(202));
        assert_eq!(t.number_of("openat"), Some(257));
        assert_eq!(t.number_of("seccomp"), Some(317));
        assert_eq!(t.number_of("not_a_syscall"), None);
    }

    #[test]
    fn ten_slots_have_no_entry_point() {
        let t = SyscallTable::new();
        let no_entry: Vec<_> = t
            .with_status(SyscallStatus::NoEntryPoint)
            .map(|s| s.name)
            .collect();
        assert_eq!(no_entry.len(), 10);
        assert!(no_entry.contains(&"tuxcall"));
        assert!(no_entry.contains(&"create_module"));
        assert!(no_entry.contains(&"set_thread_area"));
    }

    #[test]
    fn five_calls_are_retired_but_attempted() {
        let t = SyscallTable::new();
        let retired: Vec<_> =
            t.with_status(SyscallStatus::Retired).map(|s| s.name).collect();
        assert_eq!(
            retired,
            vec!["uselib", "nfsservctl", "afs_syscall", "security", "vserver"]
        );
    }

    #[test]
    fn introduction_versions_reference_real_syscalls() {
        let t = SyscallTable::new();
        for &(name, version) in SYSCALL_INTRODUCED {
            assert!(t.by_name(name).is_some(), "unknown syscall {name}");
            assert!(
                version.starts_with("2.6") || version.starts_with('3'),
                "implausible version {version} for {name}"
            );
        }
        assert_eq!(introduced_in("execveat"), Some("3.19"));
        assert_eq!(introduced_in("read"), None, "ancient calls are unlisted");
    }

    #[test]
    fn lookup_by_number_roundtrips() {
        let t = SyscallTable::new();
        for def in SYSCALLS {
            assert_eq!(t.by_number(def.number), Some(def));
            assert_eq!(t.by_name(def.name), Some(def));
        }
        assert!(t.by_number(5000).is_none());
    }
}
