//! The unified [`Api`] identifier and the [`Catalog`] bundle.
//!
//! The study ranges over several kinds of system APIs — system calls,
//! vectored opcodes, pseudo-files, libc symbols. Metrics treat them
//! uniformly; [`Api`] is the compact, copyable identifier used throughout
//! footprints and the metrics engine.

use std::fmt;

use crate::{
    libc_symbols::LibcInventory,
    pseudofiles::PseudoFileSet,
    syscalls::SyscallTable,
    vectored::{ioctl_table, VectoredOp, FCNTL_OPS, PRCTL_OPS},
};

/// A single system API, in the study's broad sense.
///
/// Payloads are *indices into the catalog tables* (not raw kernel values),
/// keeping the identifier dense, ordered, and cheap to hash. Use
/// [`Catalog`] to translate to names and kernel values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Api {
    /// A system call, by x86-64 syscall number.
    Syscall(u32),
    /// An `ioctl` operation, by index into [`Catalog::ioctl_ops`].
    Ioctl(u32),
    /// An `fcntl` command, by index into [`crate::vectored::FCNTL_OPS`].
    Fcntl(u32),
    /// A `prctl` option, by index into [`crate::vectored::PRCTL_OPS`].
    Prctl(u32),
    /// A pseudo-file, by id in the catalog's [`PseudoFileSet`].
    PseudoFile(u32),
    /// A libc exported function, by id in the catalog's [`LibcInventory`].
    LibcSymbol(u32),
}

impl Api {
    /// The broad kind of this API, for per-kind reporting.
    pub fn kind(self) -> ApiKind {
        match self {
            Api::Syscall(_) => ApiKind::Syscall,
            Api::Ioctl(_) => ApiKind::Ioctl,
            Api::Fcntl(_) => ApiKind::Fcntl,
            Api::Prctl(_) => ApiKind::Prctl,
            Api::PseudoFile(_) => ApiKind::PseudoFile,
            Api::LibcSymbol(_) => ApiKind::LibcSymbol,
        }
    }
}

/// The broad kinds of APIs the study considers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApiKind {
    /// System calls proper.
    Syscall,
    /// `ioctl` operation codes.
    Ioctl,
    /// `fcntl` commands.
    Fcntl,
    /// `prctl` options.
    Prctl,
    /// Pseudo-files under `/proc`, `/dev`, `/sys`.
    PseudoFile,
    /// libc exported functions.
    LibcSymbol,
}

/// The complete API catalog for x86-64 Ubuntu 15.04 / Linux 3.19.
///
/// Bundles every inventory the study ranges over and provides name
/// resolution in both directions.
pub struct Catalog {
    /// The system call table.
    pub syscalls: SyscallTable,
    /// All 635 ioctl operations.
    pub ioctl_ops: Vec<VectoredOp>,
    /// The pseudo-file inventory (named entries plus any synthetic tail).
    pub pseudo_files: PseudoFileSet,
    /// The glibc 2.21 exported-symbol inventory.
    pub libc: LibcInventory,
}

impl Catalog {
    /// Builds the full Linux 3.19 catalog with the named pseudo-file
    /// inventory (no synthetic tail).
    pub fn linux_3_19() -> Self {
        Self {
            syscalls: SyscallTable::new(),
            ioctl_ops: ioctl_table(),
            pseudo_files: PseudoFileSet::new(),
            libc: LibcInventory::glibc_2_21(),
        }
    }

    /// Builds the catalog with `tail` synthetic `/sys` attribute families
    /// appended to the pseudo-file inventory (used by the corpus generator).
    pub fn linux_3_19_with_pseudo_tail(tail: usize) -> Self {
        Self {
            pseudo_files: PseudoFileSet::new().with_synthetic_tail(tail),
            ..Self::linux_3_19()
        }
    }

    /// The dense `Api → u32` interning table over this catalog's fixed
    /// universe (shared process-wide; see [`crate::interner::ApiInterner`]).
    pub fn interner(&self) -> &'static std::sync::Arc<crate::interner::ApiInterner> {
        crate::interner::ApiInterner::global()
    }

    /// Human-readable name of an API (e.g. `read`, `ioctl:TCGETS`,
    /// `/proc/cpuinfo`, `libc:printf`).
    pub fn name(&self, api: Api) -> String {
        match api {
            Api::Syscall(n) => self
                .syscalls
                .by_number(n)
                .map(|d| d.name.to_owned())
                .unwrap_or_else(|| format!("syscall#{n}")),
            Api::Ioctl(i) => self
                .ioctl_ops
                .get(i as usize)
                .map(|o| format!("ioctl:{}", o.name))
                .unwrap_or_else(|| format!("ioctl#{i}")),
            Api::Fcntl(i) => FCNTL_OPS
                .get(i as usize)
                .map(|&(_, n)| format!("fcntl:{n}"))
                .unwrap_or_else(|| format!("fcntl#{i}")),
            Api::Prctl(i) => PRCTL_OPS
                .get(i as usize)
                .map(|&(_, n)| format!("prctl:{n}"))
                .unwrap_or_else(|| format!("prctl#{i}")),
            Api::PseudoFile(id) => self
                .pseudo_files
                .pattern(id)
                .map(str::to_owned)
                .unwrap_or_else(|| format!("pseudofile#{id}")),
            Api::LibcSymbol(id) => self
                .libc
                .get(id)
                .map(|s| format!("libc:{}", s.name))
                .unwrap_or_else(|| format!("libcsym#{id}")),
        }
    }

    /// The [`Api`] for a kernel syscall name, if defined.
    pub fn syscall(&self, name: &str) -> Option<Api> {
        self.syscalls.number_of(name).map(Api::Syscall)
    }

    /// The [`Api`] for an ioctl operation name, if defined.
    pub fn ioctl(&self, name: &str) -> Option<Api> {
        self.ioctl_ops
            .iter()
            .position(|o| o.name == name)
            .map(|i| Api::Ioctl(i as u32))
    }

    /// The [`Api`] for an ioctl operation *code*, if defined.
    pub fn ioctl_by_code(&self, code: u64) -> Option<Api> {
        self.ioctl_ops
            .iter()
            .position(|o| o.code == code)
            .map(|i| Api::Ioctl(i as u32))
    }

    /// The [`Api`] for an fcntl command code, if defined.
    pub fn fcntl_by_code(&self, code: u64) -> Option<Api> {
        FCNTL_OPS
            .iter()
            .position(|&(c, _)| c == code)
            .map(|i| Api::Fcntl(i as u32))
    }

    /// The [`Api`] for a prctl option code, if defined.
    pub fn prctl_by_code(&self, code: u64) -> Option<Api> {
        PRCTL_OPS
            .iter()
            .position(|&(c, _)| c == code)
            .map(|i| Api::Prctl(i as u32))
    }

    /// The [`Api`] for a libc exported function name, if in the inventory.
    pub fn libc_symbol(&self, name: &str) -> Option<Api> {
        self.libc.id_of(name).map(Api::LibcSymbol)
    }

    /// The [`Api`] for a pseudo-file string (literal, format pattern, or
    /// instantiated pattern), if tracked.
    pub fn pseudo_file(&self, s: &str) -> Option<Api> {
        self.pseudo_files.match_string(s).map(Api::PseudoFile)
    }
}

impl fmt::Debug for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Catalog")
            .field("syscalls", &self.syscalls.len())
            .field("ioctl_ops", &self.ioctl_ops.len())
            .field("pseudo_files", &self.pseudo_files.len())
            .field("libc", &self.libc.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_scales() {
        let c = Catalog::linux_3_19();
        assert_eq!(c.syscalls.len(), 323);
        assert_eq!(c.ioctl_ops.len(), 635);
        assert_eq!(c.libc.len(), 1274);
        assert!(c.pseudo_files.len() > 100);
    }

    #[test]
    fn name_roundtrips() {
        let c = Catalog::linux_3_19();
        assert_eq!(c.name(c.syscall("read").unwrap()), "read");
        assert_eq!(c.name(c.ioctl("TCGETS").unwrap()), "ioctl:TCGETS");
        assert_eq!(c.name(c.libc_symbol("printf").unwrap()), "libc:printf");
        assert_eq!(
            c.name(c.pseudo_file("/dev/null").unwrap()),
            "/dev/null"
        );
    }

    #[test]
    fn code_lookups() {
        let c = Catalog::linux_3_19();
        assert_eq!(c.ioctl_by_code(0x5401), c.ioctl("TCGETS"));
        assert!(c.fcntl_by_code(0).is_some());
        assert!(c.fcntl_by_code(9999).is_none());
        assert!(c.prctl_by_code(22).is_some());
    }

    #[test]
    fn api_ordering_is_stable() {
        let a = Api::Syscall(1);
        let b = Api::Syscall(2);
        let c = Api::Ioctl(0);
        assert!(a < b);
        assert!(b < c, "syscalls order before ioctls");
    }

    #[test]
    fn unknown_ids_render_placeholders() {
        let c = Catalog::linux_3_19();
        assert_eq!(c.name(Api::Syscall(9999)), "syscall#9999");
        assert_eq!(c.name(Api::LibcSymbol(99_999)), "libcsym#99999");
    }
}
