//! Reference mapping from libc exported functions to the system calls they
//! wrap.
//!
//! The paper observes that most binaries do not issue system calls directly;
//! they call libc, and libc's wrappers contribute the syscalls to the
//! application's footprint (§2.3, §7). The corpus generator uses this table
//! when emitting the synthetic `libc.so`: each exported function's machine
//! code contains `mov eax, <nr>; syscall` sequences for exactly the calls
//! listed here, so the analyzer recovers footprints from real instruction
//! bytes.
//!
//! Functions not listed wrap no system call (pure userspace computation,
//! e.g. `strlen`).

/// Returns the kernel syscall names wrapped by a libc function, or an empty
/// slice when the function performs no system call.
pub fn wrapped_syscalls(libc_fn: &str) -> &'static [&'static str] {
    // Fortified variants wrap the same syscalls as their plain form.
    let name = crate::libc_symbols::normalize_fortified(libc_fn);
    let name = name.as_deref().unwrap_or(libc_fn);
    // LFS variants wrap the same syscalls as the plain form.
    let name = name.strip_suffix("64").unwrap_or(name);
    // `__`-prefixed internal aliases wrap the same syscalls; `__libc_*`
    // aliases additionally drop the `libc_` prefix, except for the startup
    // entry point itself, which has its own footprint (Table 5).
    let name = name.strip_prefix("__").unwrap_or(name);
    let name = if name != "libc_start_main" {
        name.strip_prefix("libc_").unwrap_or(name)
    } else {
        name
    };
    match name {
        // Stdio: buffered I/O bottoms out in open/read/write/close plus
        // stat-based buffer sizing and mmap'd buffers.
        "printf" | "vprintf" | "puts" | "putchar" | "putchar_unlocked" => {
            &["write"]
        }
        "fprintf" | "vfprintf" | "dprintf" | "vdprintf" | "fputs" | "fputc"
        | "putc" | "putc_unlocked" | "fputc_unlocked" | "fputs_unlocked"
        | "fwrite" | "fwrite_unlocked" | "_IO_putc" | "_IO_puts"
        | "_IO_fputs" | "_IO_fwrite" | "_IO_vfprintf" | "_IO_file_xsputn"
        | "_IO_file_overflow" | "overflow" | "woverflow" => &["write"],
        "scanf" | "vscanf" | "getchar" | "getchar_unlocked" | "gets" => {
            &["read"]
        }
        "fscanf" | "vfscanf" | "fgets" | "fgetc" | "getc" | "getc_unlocked"
        | "fgetc_unlocked" | "fgets_unlocked" | "fread" | "fread_unlocked"
        | "getline" | "getdelim" | "_IO_getc" | "_IO_fgets" | "_IO_fread"
        | "_IO_vfscanf" | "_IO_file_xsgetn" | "_IO_file_underflow"
        | "uflow" | "underflow" | "wuflow" | "wunderflow"
        | "isoc99_scanf" | "isoc99_fscanf" | "isoc99_vscanf"
        | "isoc99_vfscanf" => &["read"],
        "fopen" | "freopen" | "fdopen" | "_IO_fopen" | "_IO_file_open"
        | "_IO_file_attach" => &["open", "fstat"],
        "fclose" | "pclose" | "_IO_fclose" | "_IO_file_close" => {
            &["close", "write"]
        }
        "fflush" | "fflush_unlocked" | "fcloseall" | "_IO_fflush"
        | "_IO_file_sync" => &["write"],
        "fseek" | "fseeko" | "ftell" | "ftello" | "rewind" | "fgetpos"
        | "fsetpos" | "_IO_seekoff" | "_IO_seekpos" | "_IO_file_seekoff" => {
            &["lseek"]
        }
        "tmpfile" | "mkstemp" | "mkstemps" | "mkostemp" | "mkostemps" => {
            &["open", "unlink"]
        }
        "mkdtemp" => &["mkdir"],
        "remove" => &["unlink", "rmdir"],
        "perror" => &["write"],
        "popen" => &["pipe2", "clone", "execve", "close", "fcntl"],
        "setvbuf" | "setbuf" | "setbuffer" | "setlinebuf" => &[],
        "fmemopen" | "open_memstream" | "open_wmemstream" | "fopencookie" => {
            &["mmap"]
        }
        "fileno" | "fileno_unlocked" | "feof" | "ferror" | "clearerr" => &[],

        // Allocation.
        "malloc" | "calloc" | "realloc" | "memalign" | "posix_memalign"
        | "valloc" | "pvalloc" | "aligned_alloc" | "malloc_trim" => {
            &["brk", "mmap", "munmap"]
        }
        "free" | "cfree" => &["munmap"],

        // Process control.
        "fork" => &["clone"],
        "vfork" => &["vfork"],
        "exit" => &["exit_group"],
        "_exit" | "_Exit" => &["exit_group", "exit"],
        "abort" => &["rt_sigprocmask", "tgkill", "getpid", "gettid"],
        "raise" | "gsignal" => &["getpid", "gettid", "tgkill"],
        "system" => &["clone", "execve", "wait4", "rt_sigaction",
                      "rt_sigprocmask"],
        "execl" | "execlp" | "execle" | "execv" | "execvp" | "execve"
        | "execvpe" | "fexecve" => &["execve"],
        "posix_spawn" | "posix_spawnp" => &["clone", "execve", "dup2",
                                            "close"],
        "wait" | "waitpid" | "wait3" | "wait4" => &["wait4"],
        "waitid" => &["waitid"],
        "atexit" | "on_exit" | "cxa_atexit" | "register_atfork" => &[],
        "daemon" => &["clone", "setsid", "open", "dup2", "close", "chdir"],

        // Signals.
        "signal" | "bsd_signal" | "sysv_signal" | "ssignal" | "sigaction"
        | "sigvec" | "sighold" | "sigrelse" | "sigignore" | "sigset" => {
            &["rt_sigaction"]
        }
        "sigprocmask" | "sigsetmask" | "siggetmask" | "sigblock"
        | "pthread_sigmask" => &["rt_sigprocmask"],
        "sigpending" => &["rt_sigpending"],
        "sigsuspend" | "sigpause" => &["rt_sigsuspend"],
        "sigwait" | "sigwaitinfo" | "sigtimedwait" => &["rt_sigtimedwait"],
        "sigqueue" => &["rt_sigqueueinfo"],
        "sigaltstack" | "sigstack" => &["sigaltstack"],
        "kill" | "killpg" => &["kill"],
        "tgkill" | "pthread_kill" => &["tgkill"],
        "sigreturn" => &["rt_sigreturn"],
        "siglongjmp" | "longjmp_chk" => &["rt_sigprocmask"],

        // Direct POSIX wrappers (one syscall, same name or near-same).
        "open" | "open_by_handle_at" => &["open", "openat"],
        "openat" => &["openat"],
        "creat" => &["open"],
        "close" => &["close"],
        "read" => &["read"],
        "write" => &["write"],
        "pread" => &["pread64"],
        "pwrite" => &["pwrite64"],
        "readv" => &["readv"],
        "writev" => &["writev"],
        "preadv" => &["preadv"],
        "pwritev" => &["pwritev"],
        "lseek" => &["lseek"],
        "access" | "euidaccess" | "eaccess" => &["access"],
        "faccessat" => &["faccessat"],
        "alarm" => &["alarm"],
        "brk" | "sbrk" => &["brk"],
        "chdir" => &["chdir"],
        "fchdir" => &["fchdir"],
        "chown" => &["chown"],
        "fchown" => &["fchown"],
        "lchown" => &["lchown"],
        "fchownat" => &["fchownat"],
        "chmod" => &["chmod"],
        "fchmod" => &["fchmod"],
        "fchmodat" => &["fchmodat"],
        "umask" => &["umask"],
        "dup" => &["dup"],
        "dup2" => &["dup2"],
        "dup3" => &["dup3"],
        "fcntl" => &["fcntl"],
        "flock" => &["flock"],
        "lockf" => &["fcntl"],
        "fsync" => &["fsync"],
        "fdatasync" => &["fdatasync"],
        "syncfs" => &["syncfs"],
        "sync" => &["sync"],
        "sync_file_range" => &["sync_file_range"],
        "ftruncate" => &["ftruncate"],
        "truncate" => &["truncate"],
        "fallocate" | "posix_fallocate" => &["fallocate"],
        "posix_fadvise" => &["fadvise64"],
        "getcwd" | "getwd" | "get_current_dir_name" => &["getcwd"],
        "isatty" => &["ioctl"],
        "ttyname" | "ttyname_r" => &["readlink", "fstat"],
        "tcgetattr" => &["ioctl"],
        "tcsetattr" | "tcsendbreak" | "tcdrain" | "tcflush" | "tcflow"
        | "tcgetpgrp" | "tcsetpgrp" | "tcgetsid" => &["ioctl"],
        "ptsname" | "ptsname_r" | "grantpt" | "unlockpt" => &["ioctl"],
        "posix_openpt" => &["open"],
        "link" => &["link"],
        "linkat" => &["linkat"],
        "symlink" => &["symlink"],
        "symlinkat" => &["symlinkat"],
        "readlink" => &["readlink"],
        "readlinkat" => &["readlinkat"],
        "unlink" => &["unlink"],
        "unlinkat" => &["unlinkat"],
        "rmdir" => &["rmdir"],
        "rename" => &["rename"],
        "renameat" => &["renameat"],
        "mkdir" => &["mkdir"],
        "mkdirat" => &["mkdirat"],
        "mknod" | "xmknod" => &["mknod"],
        "mknodat" | "xmknodat" => &["mknodat"],
        "mkfifo" => &["mknod"],
        "mkfifoat" => &["mknodat"],
        "stat" | "xstat" => &["stat"],
        "fstat" | "fxstat" => &["fstat"],
        "lstat" | "lxstat" => &["lstat"],
        "fstatat" | "fxstatat" => &["newfstatat"],
        "statfs" => &["statfs"],
        "fstatfs" => &["fstatfs"],
        "statvfs" => &["statfs"],
        "fstatvfs" => &["fstatfs"],
        "utime" => &["utime"],
        "utimes" => &["utimes"],
        "futimes" | "lutimes" | "futimens" | "utimensat" => &["utimensat"],
        "futimesat" => &["futimesat"],
        "nice" => &["setpriority", "getpriority"],
        "pause" => &["pause"],
        "pipe" => &["pipe"],
        "pipe2" => &["pipe2"],
        "sleep" | "usleep" | "nanosleep" => &["nanosleep"],
        "ualarm" => &["setitimer"],
        "chroot" => &["chroot"],
        "sysconf" => &["getrlimit"],
        "fpathconf" | "pathconf" | "confstr" => &[],
        "ioctl" => &["ioctl"],
        "uname" => &["uname"],
        "gethostname" | "getdomainname" => &["uname"],
        "sethostname" => &["sethostname"],
        "setdomainname" => &["setdomainname"],
        "gethostid" | "sethostid" => &["open", "read", "write", "close"],
        "getdtablesize" => &["getrlimit"],
        "getpagesize" | "getauxval" => &[],
        "getrlimit" => &["getrlimit", "prlimit64"],
        "setrlimit" => &["setrlimit", "prlimit64"],
        "prlimit" => &["prlimit64"],
        "getrusage" => &["getrusage"],
        "getpriority" => &["getpriority"],
        "setpriority" => &["setpriority"],
        "clone" => &["clone"],
        "unshare" => &["unshare"],
        "setns" => &["setns"],
        "personality" => &["personality"],
        "capget" => &["capget"],
        "capset" => &["capset"],
        "prctl" => &["prctl"],
        "ptrace" => &["ptrace"],
        "reboot" => &["reboot"],
        "swapon" => &["swapon"],
        "swapoff" => &["swapoff"],
        "mount" => &["mount"],
        "umount" | "umount2" => &["umount2"],
        "pivot_root" => &["pivot_root"],
        "syslog" | "klogctl" => &["syslog"],
        "vsyslog" | "openlog" | "closelog" | "setlogmask" | "syslog_chk"
        | "vsyslog_chk" => &["socket", "connect", "sendto", "close"],
        "sysinfo" => &["sysinfo"],
        "getloadavg" => &["open", "read", "close"],
        "acct" => &["acct"],
        "iopl" => &["iopl"],
        "ioperm" => &["ioperm"],
        "sendfile" => &["sendfile"],
        "splice" => &["splice"],
        "tee" => &["tee"],
        "vmsplice" => &["vmsplice"],
        "readahead" => &["readahead"],
        "name_to_handle_at" => &["name_to_handle_at"],
        "process_vm_readv" => &["process_vm_readv"],
        "process_vm_writev" => &["process_vm_writev"],
        "kcmp" => &["kcmp"],
        "getentropy" => &["getrandom"],
        "syscall" => &[],

        // Identity.
        "getpid" => &["getpid"],
        "getppid" => &["getppid"],
        "gettid" => &["gettid"],
        "getuid" => &["getuid"],
        "geteuid" => &["geteuid"],
        "getgid" => &["getgid"],
        "getegid" => &["getegid"],
        "getgroups" | "getgroups_chk" => &["getgroups"],
        "setgroups" => &["setgroups"],
        "getlogin" | "getlogin_r" | "cuserid" => &["geteuid", "open",
                                                   "read", "close"],
        "getpgid" => &["getpgid"],
        "getpgrp" => &["getpgrp"],
        "getsid" => &["getsid"],
        "setsid" => &["setsid"],
        "setpgid" | "setpgrp" => &["setpgid"],
        "setuid" => &["setuid"],
        "seteuid" => &["setresuid"],
        "setreuid" => &["setreuid"],
        "setresuid" => &["setresuid"],
        "getresuid" => &["getresuid"],
        "setgid" => &["setgid"],
        "setegid" => &["setresgid"],
        "setregid" => &["setregid"],
        "setresgid" => &["setresgid"],
        "getresgid" => &["getresgid"],
        "setfsuid" => &["setfsuid"],
        "setfsgid" => &["setfsgid"],

        // Time.
        "time" => &["time"],
        "clock" => &["times"],
        "times" => &["times"],
        "gettimeofday" => &["gettimeofday"],
        "settimeofday" => &["settimeofday"],
        "clock_gettime" => &["clock_gettime"],
        "clock_settime" => &["clock_settime"],
        "clock_getres" => &["clock_getres"],
        "clock_nanosleep" => &["clock_nanosleep"],
        "clock_adjtime" => &["clock_adjtime"],
        "adjtime" | "adjtimex" | "ntp_adjtime" | "ntp_gettime"
        | "ntp_gettimex" => &["adjtimex"],
        "stime" => &["settimeofday"],
        "getitimer" => &["getitimer"],
        "setitimer" => &["setitimer"],
        "timer_create" => &["timer_create"],
        "timer_delete" => &["timer_delete"],
        "timer_settime" => &["timer_settime"],
        "timer_gettime" => &["timer_gettime"],
        "timer_getoverrun" => &["timer_getoverrun"],
        "timerfd_create" => &["timerfd_create"],
        "timerfd_settime" => &["timerfd_settime"],
        "timerfd_gettime" => &["timerfd_gettime"],
        "ftime" => &["gettimeofday"],
        "tzset" | "localtime" | "localtime_r" | "mktime" | "timelocal" => {
            &["open", "read", "fstat", "close"]
        }

        // Sockets.
        "socket" => &["socket"],
        "socketpair" => &["socketpair"],
        "bind" => &["bind"],
        "listen" => &["listen"],
        "accept" => &["accept"],
        "accept4" => &["accept4"],
        "connect" => &["connect"],
        "getsockname" => &["getsockname"],
        "getpeername" => &["getpeername"],
        "send" => &["sendto"],
        "recv" | "recv_chk" => &["recvfrom"],
        "sendto" => &["sendto"],
        "recvfrom" | "recvfrom_chk" => &["recvfrom"],
        "sendmsg" => &["sendmsg"],
        "recvmsg" => &["recvmsg"],
        "sendmmsg" => &["sendmmsg"],
        "recvmmsg" => &["recvmmsg"],
        "getsockopt" => &["getsockopt"],
        "setsockopt" => &["setsockopt"],
        "shutdown" => &["shutdown"],
        "sockatmark" => &["ioctl"],
        "getaddrinfo" | "gethostbyname" | "gethostbyname_r"
        | "gethostbyname2" | "gethostbyname2_r" | "gethostbyaddr"
        | "gethostbyaddr_r" | "getnameinfo" | "res_init" | "res_query"
        | "res_search" | "res_send" => {
            &["socket", "connect", "sendto", "recvfrom", "poll", "close",
              "open", "read", "fstat"]
        }
        "getifaddrs" | "if_nametoindex" | "if_indextoname" | "if_nameindex" => {
            &["socket", "ioctl", "sendto", "recvmsg", "close"]
        }

        // Event APIs.
        "poll" => &["poll"],
        "ppoll" | "ppoll_chk" | "poll_chk" => &["ppoll"],
        "select" => &["select"],
        "pselect" => &["pselect6"],
        "epoll_create" => &["epoll_create"],
        "epoll_create1" => &["epoll_create1"],
        "epoll_ctl" => &["epoll_ctl"],
        "epoll_wait" => &["epoll_wait"],
        "epoll_pwait" => &["epoll_pwait"],
        "inotify_init" => &["inotify_init"],
        "inotify_init1" => &["inotify_init1"],
        "inotify_add_watch" => &["inotify_add_watch"],
        "inotify_rm_watch" => &["inotify_rm_watch"],
        "eventfd" | "eventfd_read" | "eventfd_write" => &["eventfd2"],
        "signalfd" => &["signalfd4"],
        "fanotify_init" => &["fanotify_init"],
        "fanotify_mark" => &["fanotify_mark"],

        // Memory mapping.
        "mmap" => &["mmap"],
        "munmap" => &["munmap"],
        "mprotect" => &["mprotect"],
        "msync" => &["msync"],
        "madvise" | "posix_madvise" => &["madvise"],
        "mincore" => &["mincore"],
        "mlock" => &["mlock"],
        "munlock" => &["munlock"],
        "mlockall" => &["mlockall"],
        "munlockall" => &["munlockall"],
        "mremap" => &["mremap"],
        "remap_file_pages" => &["remap_file_pages"],
        "shm_open" => &["open"],
        "shm_unlink" => &["unlink"],

        // Xattr.
        "setxattr" => &["setxattr"],
        "lsetxattr" => &["lsetxattr"],
        "fsetxattr" => &["fsetxattr"],
        "getxattr" => &["getxattr"],
        "lgetxattr" => &["lgetxattr"],
        "fgetxattr" => &["fgetxattr"],
        "listxattr" => &["listxattr"],
        "llistxattr" => &["llistxattr"],
        "flistxattr" => &["flistxattr"],
        "removexattr" => &["removexattr"],
        "lremovexattr" => &["lremovexattr"],
        "fremovexattr" => &["fremovexattr"],

        // IPC.
        "ftok" => &["stat"],
        "semget" => &["semget"],
        "semop" => &["semop"],
        "semctl" => &["semctl"],
        "semtimedop" => &["semtimedop"],
        "msgget" => &["msgget"],
        "msgsnd" => &["msgsnd"],
        "msgrcv" => &["msgrcv"],
        "msgctl" => &["msgctl"],
        "shmget" => &["shmget"],
        "shmat" => &["shmat"],
        "shmdt" => &["shmdt"],
        "shmctl" => &["shmctl"],
        "mq_open" => &["mq_open"],
        "mq_close" => &["close"],
        "mq_unlink" => &["mq_unlink"],
        "mq_send" | "mq_timedsend" => &["mq_timedsend"],
        "mq_receive" | "mq_timedreceive" => &["mq_timedreceive"],
        "mq_notify" => &["mq_notify"],
        "mq_getattr" | "mq_setattr" => &["mq_getsetattr"],
        "sem_open" => &["open", "mmap"],
        "sem_close" | "sem_unlink" => &["munmap", "unlink"],
        "sem_wait" | "sem_trywait" | "sem_timedwait" | "sem_post" => {
            &["futex"]
        }
        "sem_init" | "sem_destroy" | "sem_getvalue" => &[],
        "aio_read" | "aio_write" | "lio_listio" => &["io_submit", "io_setup",
                                                     "pread64", "pwrite64"],
        "aio_error" | "aio_return" | "aio_suspend" | "aio_cancel"
        | "aio_fsync" => &["io_getevents", "io_cancel", "fsync"],

        // Scheduling.
        "sched_yield" => &["sched_yield"],
        "sched_setscheduler" => &["sched_setscheduler"],
        "sched_getscheduler" => &["sched_getscheduler"],
        "sched_setparam" => &["sched_setparam"],
        "sched_getparam" => &["sched_getparam"],
        "sched_get_priority_max" => &["sched_get_priority_max"],
        "sched_get_priority_min" => &["sched_get_priority_min"],
        "sched_rr_get_interval" => &["sched_rr_get_interval"],
        "sched_setaffinity" => &["sched_setaffinity"],
        "sched_getaffinity" => &["sched_getaffinity"],
        "sched_getcpu" | "getcpu" => &["getcpu"],

        // Directory traversal.
        "opendir" | "fdopendir" => &["open", "openat", "fstat"],
        "closedir" => &["close"],
        "readdir" | "readdir_r" | "getdirentries" => &["getdents"],
        "rewinddir" | "seekdir" | "telldir" => &["lseek"],
        "dirfd" => &[],
        "scandir" | "scandirat" => &["openat", "getdents", "close"],
        "ftw" | "nftw" | "fts_open" | "fts_read" | "fts_children" => {
            &["open", "openat", "getdents", "stat", "lstat", "fstat",
              "fchdir", "close"]
        }
        "fts_set" | "fts_close" => &["close", "fchdir"],
        "glob" => &["openat", "getdents", "stat", "lstat", "close"],
        "globfree" | "fnmatch" | "wordexp" | "wordfree" => &[],

        // Users and groups.
        "getpwnam" | "getpwuid" | "getpwnam_r" | "getpwuid_r" | "getpwent"
        | "getpwent_r" | "setpwent" | "endpwent" | "fgetpwent"
        | "getgrnam" | "getgrgid" | "getgrnam_r" | "getgrgid_r" | "getgrent"
        | "getgrent_r" | "setgrent" | "endgrent" | "fgetgrent"
        | "getgrouplist" | "getspnam" | "getspnam_r" | "getspent"
        | "setspent" | "endspent" => {
            &["open", "read", "fstat", "close", "socket", "connect"]
        }
        "initgroups" => &["setgroups", "open", "read", "close"],
        "getpass" => &["open", "read", "write", "ioctl", "close"],

        // Keys / entropy-ish helpers reach the pseudo-file layer instead.
        "getrandom" => &["getrandom"],

        // Pseudo-terminal helpers.
        "openpty" | "forkpty" | "login_tty" => &["open", "ioctl", "dup2",
                                                 "setsid", "close", "clone"],
        "login" | "logout" | "logwtmp" | "updwtmp" | "utmpname" | "getutent"
        | "getutent_r" | "getutid" | "getutid_r" | "getutline"
        | "getutline_r" | "pututline" | "setutent" | "endutent" => {
            &["open", "read", "write", "lseek", "flock", "close"]
        }
        "getmntent" | "getmntent_r" | "setmntent" | "addmntent"
        | "endmntent" => &["open", "read", "write", "fstat", "close"],

        // Threading stubs in libc.
        "pthread_mutex_lock" | "pthread_mutex_trylock"
        | "pthread_mutex_unlock" | "pthread_cond_wait"
        | "pthread_cond_signal" | "pthread_cond_broadcast"
        | "pthread_cond_timedwait" | "pthread_once" => &["futex"],
        "pthread_self" | "pthread_equal" | "pthread_atfork" => &[],
        "pthread_exit" => &["exit"],

        // Runtime startup/teardown (Table 5's ubiquitous libc footprint;
        // `access`/`arch_prctl` come from ld.so, not from here, so their
        // per-package adoption stays a free variable — see Table 8).
        // This list fits inside the study's Stage I (the 40 most important
        // system calls, Table 4): it is what makes "hello world" need ~40
        // calls before anything runs (Figure 3's left edge).
        "libc_start_main" => &[
            "mprotect", "mmap", "munmap", "read", "write", "writev",
            "close", "fstat", "openat", "brk", "exit_group",
            "getuid", "getgid",
            "getrlimit", "set_tid_address", "set_robust_list",
            "rt_sigaction", "rt_sigprocmask", "rt_sigreturn", "futex",
            "execve", "getpid", "getppid", "gettid", "kill", "tgkill",
            "clone", "vfork", "dup2", "fcntl",
            "sched_setscheduler", "sched_setparam",
            "setresuid", "setresgid", "sched_yield", "lseek",
            "getcwd", "getdents",
        ],
        "cxa_finalize" => &["exit_group"],
        "backtrace" | "backtrace_symbols" | "backtrace_symbols_fd" => {
            &["write", "open", "read", "close", "mmap"]
        }
        "assert_fail" | "assert_perror_fail" | "fortify_fail" | "chk_fail"
        | "stack_chk_fail" => &["write", "rt_sigprocmask", "gettid",
                                "getpid", "tgkill"],

        _ => &[],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syscalls::SyscallTable;

    #[test]
    fn every_wrapped_syscall_name_is_valid() {
        // Run every curated libc symbol through the mapping and validate the
        // produced syscall names against the real table.
        let inv = crate::libc_symbols::LibcInventory::glibc_2_21();
        let t = SyscallTable::new();
        for (_, sym) in inv.iter() {
            for sc in wrapped_syscalls(&sym.name) {
                assert!(
                    t.by_name(sc).is_some(),
                    "{} maps to unknown syscall {sc}",
                    sym.name
                );
            }
        }
    }

    #[test]
    fn fortified_variants_inherit_wrapping() {
        assert_eq!(wrapped_syscalls("__printf_chk"), wrapped_syscalls("printf"));
        assert_eq!(wrapped_syscalls("__read_chk"), wrapped_syscalls("read"));
    }

    #[test]
    fn lfs_variants_inherit_wrapping() {
        assert_eq!(wrapped_syscalls("open64"), wrapped_syscalls("open"));
        assert_eq!(wrapped_syscalls("mmap64"), wrapped_syscalls("mmap"));
    }

    #[test]
    fn pure_functions_wrap_nothing() {
        assert!(wrapped_syscalls("strlen").is_empty());
        assert!(wrapped_syscalls("memcpy").is_empty());
        assert!(wrapped_syscalls("qsort").is_empty());
    }

    #[test]
    fn startup_footprint_covers_table_5_libc_rows() {
        let fp = wrapped_syscalls("__libc_start_main");
        for required in ["mprotect", "clone", "set_tid_address",
                         "set_robust_list", "rt_sigprocmask", "futex",
                         "getuid", "gettid", "kill", "getrlimit",
                         "setresuid"] {
            assert!(fp.contains(&required), "missing {required}");
        }
        // Table 8/9 adoption targets must stay free variables: these must
        // NOT be ubiquitous through startup.
        for excluded in ["access", "arch_prctl", "wait4", "select", "poll",
                         "geteuid", "getegid", "dup", "pipe", "chdir"] {
            assert!(!fp.contains(&excluded), "{excluded} must not be ubiquitous");
        }
        assert_eq!(wrapped_syscalls("fork"), &["clone"]);
    }
}
