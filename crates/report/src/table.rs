//! Plain-text table rendering for the study's tables.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (text).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple text table with a title, headers, and rows.
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            aligns: vec![Align::Left; headers.len()],
            rows: Vec::new(),
        }
    }

    /// Sets per-column alignment (must match the header count).
    pub fn aligns(mut self, aligns: &[Align]) -> Self {
        assert_eq!(aligns.len(), self.headers.len());
        self.aligns = aligns.to_vec();
        self
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a row of `&str` cells.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> =
            self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                let pad = widths[i].saturating_sub(cell.chars().count());
                match aligns[i] {
                    Align::Left => {
                        line.push_str(cell);
                        line.extend(std::iter::repeat_n(' ', pad));
                    }
                    Align::Right => {
                        line.extend(std::iter::repeat_n(' ', pad));
                        line.push_str(cell);
                    }
                }
            }
            line.trim_end().to_owned()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths, &self.aligns));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths, &self.aligns));
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table (used for
    /// EXPERIMENTS-style documents).
    pub fn to_markdown(&self) -> String {
        let esc = |s: &str| s.replace('|', "\\|");
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "### {}", self.title);
            let _ = writeln!(out);
        }
        let _ = writeln!(
            out,
            "| {} |",
            self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(" | ")
        );
        let sep: Vec<&str> = self
            .aligns
            .iter()
            .map(|a| match a {
                Align::Left => "---",
                Align::Right => "---:",
            })
            .collect();
        let _ = writeln!(out, "| {} |", sep.join(" | "));
        for row in &self.rows {
            let _ = writeln!(
                out,
                "| {} |",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(" | ")
            );
        }
        out
    }

    /// Renders as CSV (headers + rows, comma-separated, quotes around
    /// cells containing commas).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a probability as a percentage with one decimal (negative zero
/// normalizes to `0.0%`).
pub fn pct(v: f64) -> String {
    let x = 100.0 * v;
    format!("{:.1}%", if x == 0.0 { 0.0 } else { x })
}

/// Formats a probability as a percentage with two decimals (for the
/// unweighted tables).
pub fn pct2(v: f64) -> String {
    let x = 100.0 * v;
    format!("{:.2}%", if x == 0.0 { 0.0 } else { x })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("Demo", &["name", "value"])
            .aligns(&[Align::Left, Align::Right]);
        t.row_str(&["read", "100.0%"]);
        t.row_str(&["a-much-longer-name", "3.2%"]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // Title, header, separator, two rows.
        assert_eq!(lines.len(), 5);
        assert!(lines[3].ends_with("100.0%"));
        assert!(lines[4].ends_with("3.2%"));
    }

    #[test]
    fn markdown_renders_alignment_row() {
        let mut t = TextTable::new("MD", &["name", "value"])
            .aligns(&[Align::Left, Align::Right]);
        t.row_str(&["a|b", "1"]);
        let md = t.to_markdown();
        assert!(md.starts_with("### MD"));
        assert!(md.contains("| --- | ---: |"));
        assert!(md.contains("a\\|b"), "pipes are escaped: {md}");
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new("", &["a", "b"]);
        t.row_str(&["x,y", "plain"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",plain"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new("", &["a", "b"]);
        t.row_str(&["only-one"]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.4295), "43.0%");
        assert_eq!(pct2(0.74241), "74.24%");
        assert_eq!(pct(1.0), "100.0%");
        assert_eq!(pct(-0.0), "0.0%", "negative zero normalizes");
        assert_eq!(pct2(-0.0), "0.00%");
    }
}
