//! # apistudy-report
//!
//! Rendering layer for the study's artifacts: plain-text tables
//! ([`table::TextTable`]) and figure series ([`series::Series`]) with CSV
//! export — the output side of every table and figure the `repro` harness
//! regenerates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod series;
pub mod table;

pub use series::Series;
pub use table::{pct, pct2, Align, TextTable};
