//! Figure series: the study's figures are lines (inverted CDFs and
//! accumulation curves) rendered as sampled points plus an ASCII sketch.

use std::fmt::Write as _;

/// One figure line: a label and `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Sampled points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series from points.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self { label: label.into(), points }
    }

    /// Builds an inverted-CDF series from descending values (the figures'
    /// "N-most important" style): `x` = 1-based rank, `y` = value.
    pub fn inverted_cdf(label: impl Into<String>, values: &[f64]) -> Self {
        let points = values
            .iter()
            .enumerate()
            .map(|(i, &v)| ((i + 1) as f64, v))
            .collect();
        Self::new(label, points)
    }

    /// The y value at the largest x ≤ the given x (step interpolation).
    pub fn value_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .take_while(|&&(px, _)| px <= x)
            .last()
            .map(|&(_, y)| y)
    }

    /// The smallest x whose y reaches at least `y` (for monotonically
    /// increasing series).
    pub fn x_reaching(&self, y: f64) -> Option<f64> {
        self.points.iter().find(|&&(_, py)| py >= y).map(|&(x, _)| x)
    }

    /// Renders a compact ASCII sketch of the series (height rows,
    /// downsampled to `width` columns), plus the labelled anchor points.
    pub fn sketch(&self, width: usize, height: usize) -> String {
        if self.points.is_empty() || width == 0 || height == 0 {
            return String::new();
        }
        let (ymin, ymax) = self.points.iter().fold(
            (f64::INFINITY, f64::NEG_INFINITY),
            |(lo, hi), &(_, y)| (lo.min(y), hi.max(y)),
        );
        let span = (ymax - ymin).max(1e-12);
        let n = self.points.len();
        let mut grid = vec![vec![' '; width]; height];
        for c in 0..width {
            let idx = c * (n - 1) / width.max(1);
            let y = self.points[idx.min(n - 1)].1;
            let r = ((ymax - y) / span * (height - 1) as f64).round() as usize;
            if let Some(row) = grid.get_mut(r.min(height - 1)) {
                row[c] = '*';
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{} [{:.3}..{:.3}]", self.label, ymin, ymax);
        for row in grid {
            let line: String = row.into_iter().collect();
            let _ = writeln!(out, "|{}", line.trim_end());
        }
        out
    }

    /// CSV export: `x,y` lines with a header.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("x,y\n");
        for &(x, y) in &self.points {
            let _ = writeln!(out, "{x},{y}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverted_cdf_ranks_from_one() {
        let s = Series::inverted_cdf("test", &[1.0, 0.5, 0.1]);
        assert_eq!(s.points, vec![(1.0, 1.0), (2.0, 0.5), (3.0, 0.1)]);
    }

    #[test]
    fn value_at_steps() {
        let s = Series::new("t", vec![(1.0, 0.0), (2.0, 0.5), (3.0, 1.0)]);
        assert_eq!(s.value_at(2.5), Some(0.5));
        assert_eq!(s.value_at(3.0), Some(1.0));
        assert_eq!(s.value_at(0.5), None);
    }

    #[test]
    fn x_reaching_finds_threshold() {
        let s = Series::new("t", vec![(1.0, 0.1), (2.0, 0.6), (3.0, 0.9)]);
        assert_eq!(s.x_reaching(0.5), Some(2.0));
        assert_eq!(s.x_reaching(0.95), None);
    }

    #[test]
    fn sketch_renders_grid() {
        let s = Series::inverted_cdf("curve", &[1.0, 0.8, 0.5, 0.2, 0.0]);
        let sk = s.sketch(10, 4);
        assert!(sk.starts_with("curve"));
        assert_eq!(sk.lines().count(), 5);
        assert!(sk.contains('*'));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let s = Series::new("t", vec![(1.0, 0.5)]);
        assert_eq!(s.to_csv(), "x,y\n1,0.5\n");
    }
}
