//! x86-64 instruction decoder.
//!
//! A length decoder with semantic classification for the instructions the
//! study's analyzer cares about (constant loads, control flow, RIP-relative
//! address formation, and system call instructions). The decoder never
//! fails: byte sequences outside the supported set decode as
//! [`Insn::Unknown`] with length 1, giving the linear resynchronization
//! behaviour the paper assumes of its disassembler.
//!
//! Coverage: all legacy prefixes, REX, the common one-byte opcode map, and
//! the `0F` two-byte map entries that matter (`syscall`, `sysenter`,
//! long conditional branches, `movzx`/`movsx`, multi-byte NOPs, `setcc`).

use crate::insn::{Decoded, Insn, Reg};

/// Legacy prefixes we skip over.
fn is_legacy_prefix(b: u8) -> bool {
    matches!(
        b,
        0x66 | 0x67 | 0xf0 | 0xf2 | 0xf3 | 0x2e | 0x36 | 0x3e | 0x26 | 0x64 | 0x65
    )
}

#[derive(Debug, Clone, Copy, Default)]
struct Rex {
    w: bool,
    r: bool,
    b: bool,
}

/// Parsed ModRM information.
#[derive(Debug, Clone, Copy)]
struct ModRm {
    /// Total bytes consumed by ModRM + SIB + displacement.
    consumed: usize,
    /// The `mod` field.
    modb: u8,
    /// The `reg` field (without REX extension).
    reg: u8,
    /// The `rm` field (without REX extension).
    rm: u8,
    /// `Some(disp32)` when the operand is RIP-relative.
    rip_disp: Option<i32>,
}

fn parse_modrm(bytes: &[u8]) -> Option<ModRm> {
    let m = *bytes.first()?;
    let modb = m >> 6;
    let reg = (m >> 3) & 7;
    let rm = m & 7;
    let mut consumed = 1usize;
    let mut rip_disp = None;
    if modb != 3 {
        let mut disp_size = match modb {
            0 => 0usize,
            1 => 1,
            2 => 4,
            _ => unreachable!(),
        };
        if rm == 4 {
            // SIB byte.
            let sib = *bytes.get(consumed)?;
            consumed += 1;
            if modb == 0 && (sib & 7) == 5 {
                disp_size = 4;
            }
        } else if modb == 0 && rm == 5 {
            // RIP-relative disp32 in 64-bit mode.
            disp_size = 4;
            let d = bytes.get(consumed..consumed + 4)?;
            rip_disp = Some(i32::from_le_bytes([d[0], d[1], d[2], d[3]]));
        }
        if bytes.len() < consumed + disp_size {
            return None;
        }
        consumed += disp_size;
    }
    Some(ModRm { consumed, modb, reg, rm, rip_disp })
}

fn imm32(bytes: &[u8]) -> Option<u32> {
    let b = bytes.get(..4)?;
    Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn imm64(bytes: &[u8]) -> Option<u64> {
    let b = bytes.get(..8)?;
    Some(u64::from_le_bytes([
        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
    ]))
}

const UNKNOWN: fn(u64) -> Decoded =
    |addr| Decoded { addr, len: 1, insn: Insn::Unknown };

/// Decodes one instruction at `addr` from `bytes` (which starts at `addr`).
///
/// Always returns an instruction; undecodable input yields
/// [`Insn::Unknown`] of length 1.
pub fn decode(bytes: &[u8], addr: u64) -> Decoded {
    let mut i = 0usize;
    let mut opsize16 = false;
    // Legacy prefixes.
    while let Some(&b) = bytes.get(i) {
        if is_legacy_prefix(b) {
            if b == 0x66 {
                opsize16 = true;
            }
            i += 1;
            if i > 14 {
                return UNKNOWN(addr);
            }
        } else {
            break;
        }
    }
    // REX prefix.
    let mut rex = Rex::default();
    if let Some(&b) = bytes.get(i) {
        if (0x40..=0x4f).contains(&b) {
            rex = Rex { w: b & 8 != 0, r: b & 4 != 0, b: b & 1 != 0 };
            i += 1;
        }
    }
    let Some(&op) = bytes.get(i) else {
        return UNKNOWN(addr);
    };
    i += 1;
    let zimm = if opsize16 { 2usize } else { 4 };

    let done = |len: usize, insn: Insn| Decoded { addr, len, insn };
    let rest = &bytes[i..];

    // Helper: generic ModRM instruction with trailing immediate bytes.
    let with_modrm = |imm: usize, insn: Insn| -> Decoded {
        match parse_modrm(rest) {
            Some(m) if rest.len() >= m.consumed + imm => {
                done(i + m.consumed + imm, insn)
            }
            _ => UNKNOWN(addr),
        }
    };

    match op {
        // Two-byte map.
        0x0f => {
            let Some(&op2) = bytes.get(i) else {
                return UNKNOWN(addr);
            };
            i += 1;
            let rest = &bytes[i..];
            let with_modrm2 = |imm: usize, insn: Insn| -> Decoded {
                match parse_modrm(rest) {
                    Some(m) if rest.len() >= m.consumed + imm => {
                        done(i + m.consumed + imm, insn)
                    }
                    _ => UNKNOWN(addr),
                }
            };
            match op2 {
                0x05 => done(i, Insn::Syscall),
                0x34 => done(i, Insn::Sysenter),
                // endbr64/endbr32 (F3 0F 1E FA/FB) and the nop-class
                // 0F 1E group decode via ModRM.
                0x1e => with_modrm2(0, Insn::Other),
                0x31 | 0xa2 | 0x0b => done(i, Insn::Other), // rdtsc/cpuid/ud2
                0x1f => with_modrm2(0, Insn::Other),        // long NOP
                0x80..=0x8f => {
                    // jcc rel32.
                    let Some(d) = imm32(rest) else {
                        return UNKNOWN(addr);
                    };
                    let end = addr + (i + 4) as u64;
                    done(i + 4, Insn::Jcc {
                        target: end.wrapping_add(d as i32 as i64 as u64),
                    })
                }
                0x90..=0x9f => with_modrm2(0, Insn::Other), // setcc
                0xaf | 0xb6 | 0xb7 | 0xbe | 0xbf => with_modrm2(0, Insn::Other),
                0x10 | 0x11 | 0x28 | 0x29 | 0x2e | 0x2f | 0x57 | 0x6e
                | 0x7e | 0xd6 => with_modrm2(0, Insn::Other), // common SSE moves
                0xc8..=0xcf => done(i, Insn::Other),          // bswap
                _ => UNKNOWN(addr),
            }
        }

        // Arithmetic groups 0x00-0x3D (add/or/adc/sbb/and/sub/xor/cmp).
        // The invalid-in-64-bit 0x06/0x07/... column has (op & 7) > 5 and
        // falls through to Unknown; 0x0f was matched by the arm above.
        0x00..=0x3f if (op & 7) <= 5 => {
            match op & 7 {
                0..=3 => {
                    // XorSelf detection: `xor r, r` in the 0x30/0x31 forms.
                    match parse_modrm(rest) {
                        Some(m) if rest.len() >= m.consumed => {
                            let insn = if (op == 0x31 || op == 0x33)
                                && m.modb == 3
                                && m.reg == m.rm
                                && rex.r == rex.b
                            {
                                let full =
                                    m.rm | if rex.b { 8 } else { 0 };
                                Insn::XorSelf { reg: Reg(full) }
                            } else {
                                Insn::Other
                            };
                            done(i + m.consumed, insn)
                        }
                        _ => UNKNOWN(addr),
                    }
                }
                4 => {
                    if rest.is_empty() {
                        UNKNOWN(addr)
                    } else {
                        done(i + 1, Insn::Other)
                    }
                }
                5 => {
                    if rest.len() < zimm {
                        UNKNOWN(addr)
                    } else {
                        done(i + zimm, Insn::Other)
                    }
                }
                _ => UNKNOWN(addr),
            }
        }

        // push/pop r64.
        0x50..=0x5f => done(i, Insn::Other),
        // movsxd.
        0x63 => with_modrm(0, Insn::Other),
        // push imm.
        0x68 => {
            if rest.len() < zimm {
                UNKNOWN(addr)
            } else {
                done(i + zimm, Insn::Other)
            }
        }
        0x6a => {
            if rest.is_empty() {
                UNKNOWN(addr)
            } else {
                done(i + 1, Insn::Other)
            }
        }
        // imul with immediate.
        0x69 => with_modrm(zimm, Insn::Other),
        0x6b => with_modrm(1, Insn::Other),

        // jcc rel8.
        0x70..=0x7f => {
            let Some(&d) = rest.first() else {
                return UNKNOWN(addr);
            };
            let end = addr + (i + 1) as u64;
            done(i + 1, Insn::Jcc {
                target: end.wrapping_add(d as i8 as i64 as u64),
            })
        }

        // Group-1 immediates.
        0x80 => with_modrm(1, Insn::Other),
        0x81 => with_modrm(zimm, Insn::Other),
        0x83 => with_modrm(1, Insn::Other),

        // test/xchg/mov r/m.
        0x84..=0x8b => with_modrm(0, Insn::Other),

        // lea.
        0x8d => match parse_modrm(rest) {
            Some(m) if rest.len() >= m.consumed => {
                let insn = match m.rip_disp {
                    Some(disp) => {
                        let end = addr + (i + m.consumed) as u64;
                        let full = m.reg | if rex.r { 8 } else { 0 };
                        Insn::LeaRip {
                            reg: Reg(full),
                            target: end.wrapping_add(disp as i64 as u64),
                        }
                    }
                    None => Insn::Other,
                };
                done(i + m.consumed, insn)
            }
            _ => UNKNOWN(addr),
        },
        0x8f => with_modrm(0, Insn::Other),

        // nop / cwde / cdq.
        0x90 | 0x98 | 0x99 => done(i, Insn::Other),

        // test al/eax, imm.
        0xa8 => {
            if rest.is_empty() {
                UNKNOWN(addr)
            } else {
                done(i + 1, Insn::Other)
            }
        }
        0xa9 => {
            if rest.len() < zimm {
                UNKNOWN(addr)
            } else {
                done(i + zimm, Insn::Other)
            }
        }

        // mov r8, imm8.
        0xb0..=0xb7 => {
            if rest.is_empty() {
                UNKNOWN(addr)
            } else {
                done(i + 1, Insn::Other)
            }
        }

        // mov r32/r64, imm.
        0xb8..=0xbf => {
            let reg = Reg((op & 7) | if rex.b { 8 } else { 0 });
            if rex.w {
                let Some(v) = imm64(rest) else {
                    return UNKNOWN(addr);
                };
                done(i + 8, Insn::MovImm { reg, imm: v })
            } else if opsize16 {
                let Some(b2) = rest.get(..2) else {
                    return UNKNOWN(addr);
                };
                let v = u16::from_le_bytes([b2[0], b2[1]]);
                done(i + 2, Insn::MovImm { reg, imm: u64::from(v) })
            } else {
                let Some(v) = imm32(rest) else {
                    return UNKNOWN(addr);
                };
                done(i + 4, Insn::MovImm { reg, imm: u64::from(v) })
            }
        }

        // Shift groups with imm8.
        0xc0 | 0xc1 => with_modrm(1, Insn::Other),

        // ret.
        0xc2 => {
            if rest.len() < 2 {
                UNKNOWN(addr)
            } else {
                done(i + 2, Insn::Ret)
            }
        }
        0xc3 => done(i, Insn::Ret),

        // mov r/m, imm.
        0xc6 => with_modrm(1, Insn::Other),
        0xc7 => match parse_modrm(rest) {
            Some(m) if rest.len() >= m.consumed + zimm => {
                let insn = if m.modb == 3 && m.reg == 0 {
                    let v = imm32(&rest[m.consumed..]).unwrap_or(0);
                    let imm = if rex.w {
                        v as i32 as i64 as u64 // sign-extended to 64-bit
                    } else {
                        u64::from(v)
                    };
                    let full = m.rm | if rex.b { 8 } else { 0 };
                    Insn::MovImm { reg: Reg(full), imm }
                } else {
                    Insn::Other
                };
                done(i + m.consumed + zimm, insn)
            }
            _ => UNKNOWN(addr),
        },

        // leave / int3 / int imm8.
        0xc9 => done(i, Insn::Other),
        0xcc => done(i, Insn::Other),
        0xcd => {
            let Some(&v) = rest.first() else {
                return UNKNOWN(addr);
            };
            done(i + 1, Insn::Int { vector: v })
        }

        // Shift groups.
        0xd0..=0xd3 => with_modrm(0, Insn::Other),

        // call/jmp rel.
        0xe8 => {
            let Some(d) = imm32(rest) else {
                return UNKNOWN(addr);
            };
            let end = addr + (i + 4) as u64;
            done(i + 4, Insn::CallRel {
                target: end.wrapping_add(d as i32 as i64 as u64),
            })
        }
        0xe9 => {
            let Some(d) = imm32(rest) else {
                return UNKNOWN(addr);
            };
            let end = addr + (i + 4) as u64;
            done(i + 4, Insn::JmpRel {
                target: end.wrapping_add(d as i32 as i64 as u64),
            })
        }
        0xeb => {
            let Some(&d) = rest.first() else {
                return UNKNOWN(addr);
            };
            let end = addr + (i + 1) as u64;
            done(i + 1, Insn::JmpRel {
                target: end.wrapping_add(d as i8 as i64 as u64),
            })
        }

        // hlt.
        0xf4 => done(i, Insn::Other),

        // Group 3: test has an immediate, the rest do not.
        0xf6 => match parse_modrm(rest) {
            Some(m) => {
                let imm = if m.reg <= 1 { 1 } else { 0 };
                if rest.len() >= m.consumed + imm {
                    done(i + m.consumed + imm, Insn::Other)
                } else {
                    UNKNOWN(addr)
                }
            }
            None => UNKNOWN(addr),
        },
        0xf7 => match parse_modrm(rest) {
            Some(m) => {
                let imm = if m.reg <= 1 { zimm } else { 0 };
                if rest.len() >= m.consumed + imm {
                    done(i + m.consumed + imm, Insn::Other)
                } else {
                    UNKNOWN(addr)
                }
            }
            None => UNKNOWN(addr),
        },

        // Group 4/5.
        0xfe => with_modrm(0, Insn::Other),
        0xff => match parse_modrm(rest) {
            Some(m) if rest.len() >= m.consumed => {
                let insn = match m.reg {
                    2 | 3 => Insn::CallIndirect,
                    4 | 5 => Insn::JmpIndirect,
                    _ => Insn::Other,
                };
                done(i + m.consumed, insn)
            }
            _ => UNKNOWN(addr),
        },

        _ => UNKNOWN(addr),
    }
}

/// Iterates over the instructions of a code region.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    addr: u64,
    pos: usize,
    emitted: u64,
    limit: u64,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `bytes`, which begin at virtual address
    /// `addr`.
    pub fn new(bytes: &'a [u8], addr: u64) -> Self {
        Self { bytes, addr, pos: 0, emitted: 0, limit: u64::MAX }
    }

    /// Like [`Decoder::new`], but stops after at most `limit` instructions
    /// — a resource guard for hostile inputs, so a pathological byte
    /// stream can never hold a scan loop hostage. Use
    /// [`Decoder::hit_limit`] afterwards to tell a budget stop from a
    /// normal end of input.
    pub fn with_insn_limit(bytes: &'a [u8], addr: u64, limit: u64) -> Self {
        Self { bytes, addr, pos: 0, emitted: 0, limit }
    }

    /// True when iteration stopped because the instruction budget ran out
    /// while input remained.
    pub fn hit_limit(&self) -> bool {
        self.emitted >= self.limit && self.pos < self.bytes.len()
    }

    /// Instructions decoded so far.
    pub fn decoded(&self) -> u64 {
        self.emitted
    }
}

impl Iterator for Decoder<'_> {
    type Item = Decoded;

    fn next(&mut self) -> Option<Decoded> {
        if self.pos >= self.bytes.len() || self.emitted >= self.limit {
            return None;
        }
        let d = decode(&self.bytes[self.pos..], self.addr + self.pos as u64);
        self.pos += d.len;
        self.emitted += 1;
        Some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(bytes: &[u8]) -> Decoded {
        decode(bytes, 0x1000)
    }

    #[test]
    fn decodes_syscall() {
        let d = one(&[0x0f, 0x05]);
        assert_eq!(d.insn, Insn::Syscall);
        assert_eq!(d.len, 2);
    }

    #[test]
    fn decodes_int80() {
        let d = one(&[0xcd, 0x80]);
        assert_eq!(d.insn, Insn::Int { vector: 0x80 });
        assert_eq!(d.len, 2);
    }

    #[test]
    fn decodes_sysenter() {
        assert_eq!(one(&[0x0f, 0x34]).insn, Insn::Sysenter);
    }

    #[test]
    fn decodes_mov_eax_imm32() {
        // mov eax, 0x3c
        let d = one(&[0xb8, 0x3c, 0, 0, 0]);
        assert_eq!(d.insn, Insn::MovImm { reg: Reg::RAX, imm: 0x3c });
        assert_eq!(d.len, 5);
    }

    #[test]
    fn decodes_mov_r10d_imm32_with_rex() {
        // mov r10d, 7 (41 BA 07 00 00 00)
        let d = one(&[0x41, 0xba, 7, 0, 0, 0]);
        assert_eq!(d.insn, Insn::MovImm { reg: Reg::R10, imm: 7 });
        assert_eq!(d.len, 6);
    }

    #[test]
    fn decodes_mov_rax_imm64() {
        let d = one(&[0x48, 0xb8, 1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(
            d.insn,
            Insn::MovImm { reg: Reg::RAX, imm: 0x0807060504030201 }
        );
        assert_eq!(d.len, 10);
    }

    #[test]
    fn decodes_mov_rax_imm32_sign_extended() {
        // mov rax, -1 → 48 C7 C0 FF FF FF FF
        let d = one(&[0x48, 0xc7, 0xc0, 0xff, 0xff, 0xff, 0xff]);
        assert_eq!(d.insn, Insn::MovImm { reg: Reg::RAX, imm: u64::MAX });
        assert_eq!(d.len, 7);
    }

    #[test]
    fn decodes_xor_self() {
        // xor eax, eax → 31 C0
        let d = one(&[0x31, 0xc0]);
        assert_eq!(d.insn, Insn::XorSelf { reg: Reg::RAX });
        // xor edi, esi is NOT a self-xor.
        let d = one(&[0x31, 0xf7]);
        assert_eq!(d.insn, Insn::Other);
    }

    #[test]
    fn decodes_call_rel32() {
        // call +0x10 from 0x1000: E8 10 00 00 00; end = 0x1005.
        let d = one(&[0xe8, 0x10, 0, 0, 0]);
        assert_eq!(d.insn, Insn::CallRel { target: 0x1015 });
        assert_eq!(d.len, 5);
    }

    #[test]
    fn decodes_backward_call() {
        // call -5: E8 FB FF FF FF → target = start.
        let d = one(&[0xe8, 0xfb, 0xff, 0xff, 0xff]);
        assert_eq!(d.insn, Insn::CallRel { target: 0x1000 });
    }

    #[test]
    fn decodes_jmp_rel8_and_rel32() {
        let d = one(&[0xeb, 0x02]);
        assert_eq!(d.insn, Insn::JmpRel { target: 0x1004 });
        let d = one(&[0xe9, 0x00, 0x01, 0, 0]);
        assert_eq!(d.insn, Insn::JmpRel { target: 0x1105 });
    }

    #[test]
    fn decodes_jcc() {
        let d = one(&[0x74, 0x10]); // je +0x10
        assert_eq!(d.insn, Insn::Jcc { target: 0x1012 });
        let d = one(&[0x0f, 0x84, 0x10, 0, 0, 0]); // je rel32
        assert_eq!(d.insn, Insn::Jcc { target: 0x1016 });
    }

    #[test]
    fn decodes_lea_rip_relative() {
        // lea rdi, [rip+0x20] → 48 8D 3D 20 00 00 00; end = 0x1007.
        let d = one(&[0x48, 0x8d, 0x3d, 0x20, 0, 0, 0]);
        assert_eq!(d.insn, Insn::LeaRip { reg: Reg::RDI, target: 0x1027 });
        assert_eq!(d.len, 7);
    }

    #[test]
    fn decodes_lea_non_rip() {
        // lea rax, [rbx+8] → 48 8D 43 08
        let d = one(&[0x48, 0x8d, 0x43, 0x08]);
        assert_eq!(d.insn, Insn::Other);
        assert_eq!(d.len, 4);
    }

    #[test]
    fn decodes_indirect_call_and_jmp() {
        // call rax → FF D0
        let d = one(&[0xff, 0xd0]);
        assert_eq!(d.insn, Insn::CallIndirect);
        // jmp [rip+0] → FF 25 00 00 00 00 (the PLT stub shape)
        let d = one(&[0xff, 0x25, 0, 0, 0, 0]);
        assert_eq!(d.insn, Insn::JmpIndirect);
        assert_eq!(d.len, 6);
    }

    #[test]
    fn decodes_ret_and_prologue() {
        assert_eq!(one(&[0xc3]).insn, Insn::Ret);
        assert_eq!(one(&[0xc2, 0x08, 0x00]).insn, Insn::Ret);
        assert_eq!(one(&[0x55]).insn, Insn::Other); // push rbp
        let d = one(&[0x48, 0x89, 0xe5]); // mov rbp, rsp
        assert_eq!(d.insn, Insn::Other);
        assert_eq!(d.len, 3);
        let d = one(&[0x48, 0x83, 0xec, 0x10]); // sub rsp, 0x10
        assert_eq!(d.len, 4);
    }

    #[test]
    fn unknown_bytes_resync_one_byte() {
        let d = one(&[0x06]); // invalid in 64-bit mode
        assert_eq!(d.insn, Insn::Unknown);
        assert_eq!(d.len, 1);
    }

    #[test]
    fn truncated_instruction_is_unknown() {
        let d = one(&[0xb8, 0x01]); // mov eax, <truncated>
        assert_eq!(d.insn, Insn::Unknown);
        assert_eq!(d.len, 1);
    }

    #[test]
    fn operand_size_prefix_shrinks_immediate() {
        // 66 B8 34 12 → mov ax, 0x1234 (4 bytes total)
        let d = one(&[0x66, 0xb8, 0x34, 0x12]);
        assert_eq!(d.insn, Insn::MovImm { reg: Reg::RAX, imm: 0x1234 });
        assert_eq!(d.len, 4);
    }

    #[test]
    fn decodes_endbr64() {
        // F3 0F 1E FA.
        let d = one(&[0xf3, 0x0f, 0x1e, 0xfa]);
        assert_eq!(d.insn, Insn::Other);
        assert_eq!(d.len, 4);
    }

    #[test]
    fn decoder_iterates_and_advances() {
        // mov eax, 1; mov edi, 2; syscall; ret
        let code = [
            0xb8, 1, 0, 0, 0, //
            0xbf, 2, 0, 0, 0, //
            0x0f, 0x05, //
            0xc3,
        ];
        let insns: Vec<_> = Decoder::new(&code, 0x4000).collect();
        assert_eq!(insns.len(), 4);
        assert_eq!(insns[0].insn, Insn::MovImm { reg: Reg::RAX, imm: 1 });
        assert_eq!(insns[1].insn, Insn::MovImm { reg: Reg::RDI, imm: 2 });
        assert_eq!(insns[2].insn, Insn::Syscall);
        assert_eq!(insns[3].insn, Insn::Ret);
        assert_eq!(insns[3].addr, 0x4000 + 12);
    }

    #[test]
    fn modrm_with_sib_and_disp() {
        // mov rax, [rsp+0x10] → 48 8B 44 24 10
        let d = one(&[0x48, 0x8b, 0x44, 0x24, 0x10]);
        assert_eq!(d.insn, Insn::Other);
        assert_eq!(d.len, 5);
        // mov rax, [rbp-8] → 48 8B 45 F8
        let d = one(&[0x48, 0x8b, 0x45, 0xf8]);
        assert_eq!(d.len, 4);
        // mov rax, [rax+disp32] → 48 8B 80 44 33 22 11
        let d = one(&[0x48, 0x8b, 0x80, 0x44, 0x33, 0x22, 0x11]);
        assert_eq!(d.len, 7);
    }

    #[test]
    fn insn_limit_stops_iteration() {
        // Four instructions; a budget of two yields exactly two and
        // reports the budget stop.
        let code = [
            0xb8, 1, 0, 0, 0, //
            0xbf, 2, 0, 0, 0, //
            0x0f, 0x05, //
            0xc3,
        ];
        let mut d = Decoder::with_insn_limit(&code, 0x4000, 2);
        assert!(d.next().is_some());
        assert!(d.next().is_some());
        assert!(d.next().is_none(), "budget exhausted");
        assert!(d.hit_limit(), "input remained when the budget ran out");
        assert_eq!(d.decoded(), 2);

        // A budget larger than the stream never reports a limit stop.
        let mut d = Decoder::with_insn_limit(&code, 0x4000, 100);
        assert_eq!(d.by_ref().count(), 4);
        assert!(!d.hit_limit());
        assert_eq!(d.decoded(), 4);
    }
}
