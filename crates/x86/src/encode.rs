//! A small x86-64 assembler.
//!
//! Emits the instruction mix the corpus generator needs: function
//! prologues/epilogues, constant loads for system call numbers and vectored
//! opcodes, `syscall`/`int $0x80`, direct and indirect calls, RIP-relative
//! string references, and padding. Every emitted instruction is covered by
//! the decoder; the property tests assert the round trip.

use crate::insn::Reg;

/// An append-only assembler positioned at a base virtual address.
#[derive(Debug, Clone)]
pub struct Asm {
    bytes: Vec<u8>,
    base: u64,
}

impl Asm {
    /// Creates an assembler whose first byte will live at `base`.
    pub fn new(base: u64) -> Self {
        Self { bytes: Vec::new(), base }
    }

    /// The virtual address of the next emitted byte.
    pub fn here(&self) -> u64 {
        self.base + self.bytes.len() as u64
    }

    /// Bytes emitted so far.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Consumes the assembler, returning the machine code.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }

    fn rex_b(&mut self, reg: Reg) -> u8 {
        if reg.0 >= 8 {
            0x41
        } else {
            0
        }
    }

    /// `mov r32, imm32` (B8+r). Zero-extends into the full register.
    pub fn mov_imm32(&mut self, reg: Reg, imm: u32) {
        let rex = self.rex_b(reg);
        if rex != 0 {
            self.bytes.push(rex);
        }
        self.bytes.push(0xb8 + (reg.0 & 7));
        self.bytes.extend_from_slice(&imm.to_le_bytes());
    }

    /// `mov r64, imm32` sign-extended (REX.W C7 /0). The compiler-style
    /// encoding of small constants into 64-bit registers.
    pub fn mov_imm32_sx(&mut self, reg: Reg, imm: i32) {
        self.bytes.push(if reg.0 >= 8 { 0x49 } else { 0x48 });
        self.bytes.push(0xc7);
        self.bytes.push(0xc0 | (reg.0 & 7));
        self.bytes.extend_from_slice(&imm.to_le_bytes());
    }

    /// `xor r32, r32` — the idiomatic zero.
    pub fn xor_self(&mut self, reg: Reg) {
        let rex = if reg.0 >= 8 { 0x45 } else { 0 };
        if rex != 0 {
            self.bytes.push(rex);
        }
        self.bytes.push(0x31);
        self.bytes.push(0xc0 | ((reg.0 & 7) << 3) | (reg.0 & 7));
    }

    /// `syscall`.
    pub fn syscall(&mut self) {
        self.bytes.extend_from_slice(&[0x0f, 0x05]);
    }

    /// `int $0x80` — the legacy 32-bit system call gate.
    pub fn int80(&mut self) {
        self.bytes.extend_from_slice(&[0xcd, 0x80]);
    }

    /// `ret`.
    pub fn ret(&mut self) {
        self.bytes.push(0xc3);
    }

    /// `call rel32` to an absolute target.
    pub fn call(&mut self, target: u64) {
        let end = self.here() + 5;
        let rel = target.wrapping_sub(end) as i64;
        debug_assert!(
            i32::try_from(rel).is_ok(),
            "call target out of rel32 range"
        );
        self.bytes.push(0xe8);
        self.bytes.extend_from_slice(&(rel as i32).to_le_bytes());
    }

    /// `jmp rel32` to an absolute target.
    pub fn jmp(&mut self, target: u64) {
        let end = self.here() + 5;
        let rel = target.wrapping_sub(end) as i64;
        self.bytes.push(0xe9);
        self.bytes.extend_from_slice(&(rel as i32).to_le_bytes());
    }

    /// `je rel32` (any long conditional works; the analyzer treats them
    /// uniformly).
    pub fn je(&mut self, target: u64) {
        let end = self.here() + 6;
        let rel = target.wrapping_sub(end) as i64;
        self.bytes.extend_from_slice(&[0x0f, 0x84]);
        self.bytes.extend_from_slice(&(rel as i32).to_le_bytes());
    }

    /// `lea r64, [rip+disp32]` resolving to an absolute target.
    pub fn lea_rip(&mut self, reg: Reg, target: u64) {
        let rex: u8 = if reg.0 >= 8 { 0x4c } else { 0x48 };
        let end = self.here() + 7;
        let rel = target.wrapping_sub(end) as i64;
        debug_assert!(
            i32::try_from(rel).is_ok(),
            "lea target out of disp32 range"
        );
        self.bytes.push(rex);
        self.bytes.push(0x8d);
        self.bytes.push(((reg.0 & 7) << 3) | 0x05);
        self.bytes.extend_from_slice(&(rel as i32).to_le_bytes());
    }

    /// `call r64` — indirect call through a register.
    pub fn call_reg(&mut self, reg: Reg) {
        if reg.0 >= 8 {
            self.bytes.push(0x41);
        }
        self.bytes.push(0xff);
        self.bytes.push(0xd0 | (reg.0 & 7));
    }

    /// `endbr64` — the CET landing pad modern toolchains emit at every
    /// indirect-call target.
    pub fn endbr64(&mut self) {
        self.bytes.extend_from_slice(&[0xf3, 0x0f, 0x1e, 0xfa]);
    }

    /// `push rbp`.
    pub fn push_rbp(&mut self) {
        self.bytes.push(0x55);
    }

    /// `mov rbp, rsp`.
    pub fn mov_rbp_rsp(&mut self) {
        self.bytes.extend_from_slice(&[0x48, 0x89, 0xe5]);
    }

    /// `pop rbp`.
    pub fn pop_rbp(&mut self) {
        self.bytes.push(0x5d);
    }

    /// `sub rsp, imm8`.
    pub fn sub_rsp(&mut self, imm: u8) {
        self.bytes.extend_from_slice(&[0x48, 0x83, 0xec, imm]);
    }

    /// `add rsp, imm8`.
    pub fn add_rsp(&mut self, imm: u8) {
        self.bytes.extend_from_slice(&[0x48, 0x83, 0xc4, imm]);
    }

    /// `mov r64, r64`.
    pub fn mov_reg(&mut self, dst: Reg, src: Reg) {
        let rex = 0x48 | if src.0 >= 8 { 4 } else { 0 } | if dst.0 >= 8 { 1 } else { 0 };
        self.bytes.push(rex);
        self.bytes.push(0x89);
        self.bytes.push(0xc0 | ((src.0 & 7) << 3) | (dst.0 & 7));
    }

    /// One-byte `nop`, `n` times.
    pub fn nops(&mut self, n: usize) {
        self.bytes.extend(std::iter::repeat_n(0x90, n));
    }

    /// `int3` padding (used between functions, like real toolchains).
    pub fn int3_pad(&mut self, n: usize) {
        self.bytes.extend(std::iter::repeat_n(0xcc, n));
    }

    /// Pads with `int3` so the next byte lands on `align` (a power of two).
    pub fn align(&mut self, align: u64) {
        debug_assert!(align.is_power_of_two());
        while !self.here().is_multiple_of(align) {
            self.bytes.push(0xcc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{decode, Decoder};
    use crate::insn::Insn;

    #[test]
    fn mov_imm_roundtrip() {
        let mut a = Asm::new(0x1000);
        a.mov_imm32(Reg::RAX, 60);
        a.mov_imm32(Reg::R10, 0x5401);
        let code = a.finish();
        let insns: Vec<_> = Decoder::new(&code, 0x1000).collect();
        assert_eq!(insns[0].insn, Insn::MovImm { reg: Reg::RAX, imm: 60 });
        assert_eq!(insns[1].insn, Insn::MovImm { reg: Reg::R10, imm: 0x5401 });
    }

    #[test]
    fn mov_imm_sx_roundtrip() {
        let mut a = Asm::new(0);
        a.mov_imm32_sx(Reg::RAX, -1);
        a.mov_imm32_sx(Reg::R9, 42);
        let code = a.finish();
        let insns: Vec<_> = Decoder::new(&code, 0).collect();
        assert_eq!(insns[0].insn, Insn::MovImm { reg: Reg::RAX, imm: u64::MAX });
        assert_eq!(insns[1].insn, Insn::MovImm { reg: Reg::R9, imm: 42 });
    }

    #[test]
    fn call_targets_resolve() {
        let mut a = Asm::new(0x4000);
        a.call(0x4100);
        a.jmp(0x4000);
        let code = a.finish();
        let insns: Vec<_> = Decoder::new(&code, 0x4000).collect();
        assert_eq!(insns[0].insn, Insn::CallRel { target: 0x4100 });
        assert_eq!(insns[1].insn, Insn::JmpRel { target: 0x4000 });
    }

    #[test]
    fn lea_rip_resolves() {
        let mut a = Asm::new(0x2000);
        a.lea_rip(Reg::RDI, 0x3000);
        a.lea_rip(Reg::R8, 0x2000);
        let code = a.finish();
        let insns: Vec<_> = Decoder::new(&code, 0x2000).collect();
        assert_eq!(insns[0].insn, Insn::LeaRip { reg: Reg::RDI, target: 0x3000 });
        assert_eq!(insns[1].insn, Insn::LeaRip { reg: Reg::R8, target: 0x2000 });
    }

    #[test]
    fn xor_self_roundtrip() {
        let mut a = Asm::new(0);
        a.xor_self(Reg::RAX);
        a.xor_self(Reg::R9);
        let code = a.finish();
        let insns: Vec<_> = Decoder::new(&code, 0).collect();
        assert_eq!(insns[0].insn, Insn::XorSelf { reg: Reg::RAX });
        assert_eq!(insns[1].insn, Insn::XorSelf { reg: Reg::R9 });
    }

    #[test]
    fn prologue_epilogue_decode_cleanly() {
        let mut a = Asm::new(0);
        a.push_rbp();
        a.mov_rbp_rsp();
        a.sub_rsp(0x20);
        a.mov_reg(Reg::RSI, Reg::RDI);
        a.add_rsp(0x20);
        a.pop_rbp();
        a.ret();
        let code = a.finish();
        let insns: Vec<_> = Decoder::new(&code, 0).collect();
        assert_eq!(insns.len(), 7);
        assert_eq!(insns.last().unwrap().insn, Insn::Ret);
        assert!(insns.iter().all(|d| d.insn != Insn::Unknown));
    }

    #[test]
    fn indirect_call_roundtrip() {
        let mut a = Asm::new(0);
        a.call_reg(Reg::RAX);
        a.call_reg(Reg::R11);
        let code = a.finish();
        let insns: Vec<_> = Decoder::new(&code, 0).collect();
        assert_eq!(insns[0].insn, Insn::CallIndirect);
        assert_eq!(insns[1].insn, Insn::CallIndirect);
    }

    #[test]
    fn align_pads_to_boundary() {
        let mut a = Asm::new(0x1001);
        a.align(16);
        assert_eq!(a.here() % 16, 0);
        let code = a.finish();
        assert!(code.iter().all(|&b| b == 0xcc));
    }

    #[test]
    fn syscall_sequence() {
        let mut a = Asm::new(0);
        a.mov_imm32(Reg::RAX, 1);
        a.mov_imm32(Reg::RDI, 1);
        a.syscall();
        a.ret();
        let code = a.finish();
        let d = decode(&code[10..], 10);
        assert_eq!(d.insn, Insn::Syscall);
    }
}
