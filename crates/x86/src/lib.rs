//! # apistudy-x86
//!
//! A from-scratch x86-64 instruction decoder and miniature assembler for
//! the EuroSys'16 Linux API usage study reproduction.
//!
//! The study's analyzer (paper §7) disassembles every binary in the
//! distribution to find system call instructions and reconstruct call
//! graphs. [`decode()`](decode::decode) provides that disassembler: a length decoder with
//! semantic classification of exactly the facts the analyzer consumes —
//! constant loads into registers (system call numbers, `ioctl`/`fcntl`/
//! `prctl` opcodes), direct and indirect control flow, RIP-relative address
//! formation (function pointers, string references), and the three system
//! call instructions (`syscall`, `int $0x80`, `sysenter`).
//!
//! [`encode::Asm`] is the matching assembler used by the corpus generator;
//! its output is guaranteed decodable, which the property tests assert.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decode;
pub mod encode;
pub mod insn;

pub use decode::{decode, Decoder};
pub use encode::Asm;
pub use insn::{Decoded, Insn, Reg};
