//! Instruction representation: registers and decoded-instruction semantics.

/// A general-purpose register number (0–15, x86-64 encoding order).
///
/// The low eight map to the classic registers; REX extensions reach r8–r15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

#[allow(missing_docs)]
impl Reg {
    pub const RAX: Reg = Reg(0);
    pub const RCX: Reg = Reg(1);
    pub const RDX: Reg = Reg(2);
    pub const RBX: Reg = Reg(3);
    pub const RSP: Reg = Reg(4);
    pub const RBP: Reg = Reg(5);
    pub const RSI: Reg = Reg(6);
    pub const RDI: Reg = Reg(7);
    pub const R8: Reg = Reg(8);
    pub const R9: Reg = Reg(9);
    pub const R10: Reg = Reg(10);
    pub const R11: Reg = Reg(11);

    /// Conventional x86-64 name (64-bit form).
    pub fn name(self) -> &'static str {
        const NAMES: [&str; 16] = [
            "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi", "r8",
            "r9", "r10", "r11", "r12", "r13", "r14", "r15",
        ];
        NAMES[usize::from(self.0 & 0xf)]
    }
}

/// Semantic classification of a decoded instruction.
///
/// The analyzer only needs a handful of semantics — constant loads into
/// registers (system call numbers, vectored opcodes), control flow (call
/// graph edges), RIP-relative address formation (function pointers and
/// string references), and the three system call instructions. Everything
/// else decodes as [`Insn::Other`] with a correct length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// `mov r32, imm32` (zero-extends) or `mov r/m64, imm32`
    /// (sign-extends); the analyzer treats both as a constant load.
    MovImm {
        /// Destination register.
        reg: Reg,
        /// The loaded constant, as seen in the full 64-bit register.
        imm: u64,
    },
    /// `xor r, r` with identical source and destination: a constant zero.
    XorSelf {
        /// The zeroed register.
        reg: Reg,
    },
    /// `lea r64, [rip+disp32]` with the *resolved absolute* target.
    LeaRip {
        /// Destination register.
        reg: Reg,
        /// Absolute address the instruction computes.
        target: u64,
    },
    /// `call rel32` with the resolved absolute target.
    CallRel {
        /// Absolute call target.
        target: u64,
    },
    /// `jmp rel8/rel32` with the resolved absolute target.
    JmpRel {
        /// Absolute jump target.
        target: u64,
    },
    /// A conditional branch with the resolved absolute target.
    Jcc {
        /// Absolute branch target.
        target: u64,
    },
    /// `call r/m64` — an indirect call (target unknown statically).
    CallIndirect,
    /// `jmp r/m64` — an indirect jump.
    JmpIndirect,
    /// `syscall`.
    Syscall,
    /// `int imm8` (the analyzer cares about `int $0x80`).
    Int {
        /// Interrupt vector.
        vector: u8,
    },
    /// `sysenter`.
    Sysenter,
    /// `ret` / `ret imm16`.
    Ret,
    /// Any other instruction; only its length matters.
    Other,
    /// An undecodable byte sequence; the decoder advances one byte
    /// (linear resynchronization, mirroring the paper's disassembler-trust
    /// assumption).
    Unknown,
}

/// A decoded instruction with its location and size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decoded {
    /// Virtual address of the first byte.
    pub addr: u64,
    /// Instruction length in bytes (≥ 1).
    pub len: usize,
    /// Semantic classification.
    pub insn: Insn,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_names() {
        assert_eq!(Reg::RAX.name(), "rax");
        assert_eq!(Reg::RDI.name(), "rdi");
        assert_eq!(Reg(15).name(), "r15");
        assert_eq!(Reg(31).name(), "r15", "masked to 4 bits");
    }
}
