//! Decoder coverage over the broader instruction mix found in real
//! toolchain output: prefixes, the 0F map, addressing-form variety, and
//! group-3 immediates.

use apistudy_x86::{decode, Decoder, Insn, Reg};

fn one(bytes: &[u8]) -> (Insn, usize) {
    let d = decode(bytes, 0x1000);
    (d.insn, d.len)
}

#[test]
fn two_byte_map_entries() {
    // syscall / sysenter / rdtsc / cpuid / ud2.
    assert_eq!(one(&[0x0f, 0x05]).0, Insn::Syscall);
    assert_eq!(one(&[0x0f, 0x34]).0, Insn::Sysenter);
    assert_eq!(one(&[0x0f, 0x31]).0, Insn::Other);
    assert_eq!(one(&[0x0f, 0xa2]).0, Insn::Other);
    assert_eq!(one(&[0x0f, 0x0b]).0, Insn::Other);
    // movzx/movsx with ModRM.
    assert_eq!(one(&[0x0f, 0xb6, 0xc0]), (Insn::Other, 3)); // movzx eax, al
    assert_eq!(one(&[0x48, 0x0f, 0xbe, 0x07]), (Insn::Other, 4)); // movsx rax, [rdi]
    // setcc.
    assert_eq!(one(&[0x0f, 0x94, 0xc0]), (Insn::Other, 3)); // sete al
    // Long NOPs, as emitted by assemblers for alignment.
    assert_eq!(one(&[0x0f, 0x1f, 0x00]), (Insn::Other, 3));
    assert_eq!(
        one(&[0x66, 0x0f, 0x1f, 0x44, 0x00, 0x00]),
        (Insn::Other, 6)
    );
    // bswap.
    assert_eq!(one(&[0x0f, 0xc8]), (Insn::Other, 2));
}

#[test]
fn legacy_prefixes_are_skipped() {
    // rep stosb-style prefixes in front of known instructions.
    assert_eq!(one(&[0xf3, 0x0f, 0x05]).0, Insn::Syscall); // (nonsense but decodable)
    assert_eq!(one(&[0x2e, 0xc3]).0, Insn::Ret); // cs-prefix ret
    assert_eq!(one(&[0x66, 0x90]), (Insn::Other, 2)); // xchg ax,ax
    // gs-segment load.
    assert_eq!(one(&[0x65, 0x48, 0x8b, 0x04, 0x25, 0, 0, 0, 0]).1, 9);
}

#[test]
fn addressing_forms() {
    // [reg] / [reg+disp8] / [reg+disp32] / [base+index*scale].
    assert_eq!(one(&[0x48, 0x8b, 0x00]).1, 3); // mov rax, [rax]
    assert_eq!(one(&[0x48, 0x8b, 0x40, 0x08]).1, 4); // mov rax, [rax+8]
    assert_eq!(one(&[0x48, 0x8b, 0x80, 1, 0, 0, 0]).1, 7); // +disp32
    assert_eq!(one(&[0x48, 0x8b, 0x04, 0xc8]).1, 4); // [rax+rcx*8]
    assert_eq!(one(&[0x48, 0x8b, 0x44, 0xc8, 0x10]).1, 5); // [rax+rcx*8+0x10]
    // SIB with no base ([index*scale+disp32], mod=00 base=101).
    assert_eq!(one(&[0x48, 0x8b, 0x04, 0xcd, 0, 0, 0, 0]).1, 8);
    // RIP-relative data (mov, not lea): len 7, classified Other.
    assert_eq!(one(&[0x48, 0x8b, 0x05, 1, 0, 0, 0]), (Insn::Other, 7));
}

#[test]
fn group3_immediates() {
    // test r/m32, imm32 (F7 /0) has an immediate...
    assert_eq!(one(&[0xf7, 0xc0, 1, 0, 0, 0]).1, 6);
    // ...but not r/m32 (F7 /3: neg) does not.
    assert_eq!(one(&[0xf7, 0xd8]).1, 2);
    // test r/m8, imm8 (F6 /0).
    assert_eq!(one(&[0xf6, 0xc0, 0x01]).1, 3);
    // mul r/m8 (F6 /4).
    assert_eq!(one(&[0xf6, 0xe0]).1, 2);
}

#[test]
fn group5_forms() {
    assert_eq!(one(&[0xff, 0xd0]).0, Insn::CallIndirect); // call rax
    assert_eq!(one(&[0xff, 0x10]).0, Insn::CallIndirect); // call [rax]
    assert_eq!(one(&[0xff, 0xe0]).0, Insn::JmpIndirect); // jmp rax
    assert_eq!(one(&[0xff, 0x25, 0, 0, 0, 0]).0, Insn::JmpIndirect); // jmp [rip]
    assert_eq!(one(&[0xff, 0xc0]).0, Insn::Other); // inc eax
    assert_eq!(one(&[0xff, 0x30]).0, Insn::Other); // push [rax]
}

#[test]
fn arithmetic_column_forms() {
    // add/sub/cmp with ModRM and immediates.
    assert_eq!(one(&[0x01, 0xd8]).1, 2); // add eax, ebx
    assert_eq!(one(&[0x48, 0x29, 0xc3]).1, 3); // sub rbx, rax
    assert_eq!(one(&[0x3c, 0x05]).1, 2); // cmp al, 5
    assert_eq!(one(&[0x3d, 1, 0, 0, 0]).1, 5); // cmp eax, imm32
    assert_eq!(one(&[0x83, 0xf8, 0x01]).1, 3); // cmp eax, 1 (imm8)
    assert_eq!(one(&[0x81, 0xf8, 1, 0, 0, 0]).1, 6); // cmp eax, imm32
    // 16-bit operand-size immediate shrinks.
    assert_eq!(one(&[0x66, 0x3d, 0x34, 0x12]).1, 4); // cmp ax, 0x1234
}

#[test]
fn rex_extended_registers() {
    // mov r15d, imm32: 41 BF.
    let d = decode(&[0x41, 0xbf, 1, 0, 0, 0], 0);
    assert_eq!(d.insn, Insn::MovImm { reg: Reg(15), imm: 1 });
    // xor r9d, r9d: 45 31 C9.
    let d = decode(&[0x45, 0x31, 0xc9], 0);
    assert_eq!(d.insn, Insn::XorSelf { reg: Reg(9) });
    // lea r12, [rip+1]: 4C 8D 25 01 00 00 00.
    let d = decode(&[0x4c, 0x8d, 0x25, 1, 0, 0, 0], 0x100);
    assert_eq!(d.insn, Insn::LeaRip { reg: Reg(12), target: 0x108 });
}

#[test]
fn stack_and_flow_misc() {
    assert_eq!(one(&[0x68, 1, 0, 0, 0]).1, 5); // push imm32
    assert_eq!(one(&[0x6a, 0x10]).1, 2); // push imm8
    assert_eq!(one(&[0xc9]), (Insn::Other, 1)); // leave
    assert_eq!(one(&[0xc2, 0x10, 0x00]).0, Insn::Ret); // ret imm16
    assert_eq!(one(&[0xf4]).1, 1); // hlt
    assert_eq!(one(&[0x99]).1, 1); // cdq
    // Shifts.
    assert_eq!(one(&[0xc1, 0xe0, 0x04]).1, 3); // shl eax, 4
    assert_eq!(one(&[0xd1, 0xe0]).1, 2); // shl eax, 1
}

#[test]
fn resync_consumes_entire_buffer() {
    // A pathological byte soup still terminates with full coverage.
    let junk: Vec<u8> = (0..=255u8).collect();
    let total: usize = Decoder::new(&junk, 0).map(|d| d.len).sum();
    assert_eq!(total, junk.len());
}

#[test]
fn prefix_flood_is_rejected_gracefully() {
    // 16+ prefixes cannot form an instruction; decoder must emit Unknown
    // and advance.
    let flood = [0x66u8; 32];
    let d = decode(&flood, 0);
    assert_eq!(d.insn, Insn::Unknown);
    assert_eq!(d.len, 1);
}
