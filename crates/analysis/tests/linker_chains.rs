//! Cross-binary resolution edge cases: dependency chains, symbol
//! shadowing by search order, and dependency cycles between libraries.

use apistudy_analysis::{BinaryAnalysis, Linker};
use apistudy_corpus::codegen::{
    generate_executable, generate_library, ExecSpec, ExportSpec, LibSpec,
};
use apistudy_elf::ElfFile;

fn lib(soname: &str, needed: &[&str], exports: Vec<ExportSpec>) -> BinaryAnalysis {
    let spec = LibSpec {
        soname: soname.into(),
        needed: needed.iter().map(|s| s.to_string()).collect(),
        exports,
    };
    let bytes = generate_library(&spec);
    let elf = ElfFile::parse(&bytes).unwrap();
    BinaryAnalysis::analyze(&elf).unwrap()
}

fn export(name: &str, syscalls: &[u32], imports: &[&str]) -> ExportSpec {
    ExportSpec {
        name: name.into(),
        direct_syscalls: syscalls.to_vec(),
        imports: imports.iter().map(|s| s.to_string()).collect(),
        ..Default::default()
    }
}

fn exec(needed: &[&str], calls: &[&str]) -> BinaryAnalysis {
    let spec = ExecSpec {
        needed: needed.iter().map(|s| s.to_string()).collect(),
        libc_calls: calls.iter().map(|s| s.to_string()).collect(),
        helpers: 1,
        seed: 1,
        ..Default::default()
    };
    let bytes = generate_executable(&spec);
    let elf = ElfFile::parse(&bytes).unwrap();
    BinaryAnalysis::analyze(&elf).unwrap()
}

#[test]
fn three_level_dependency_chain_resolves_transitively() {
    // exec → libA.f → libB.g → libC.h (each hop adds a syscall).
    let mut linker = Linker::new();
    linker.add_library(
        "libC.so",
        lib("libC.so", &[], vec![export("h", &[30], &[])]),
    );
    linker.add_library(
        "libB.so",
        lib("libB.so", &["libC.so"], vec![export("g", &[20], &["h"])]),
    );
    linker.add_library(
        "libA.so",
        lib("libA.so", &["libB.so"], vec![export("f", &[10], &["g"])]),
    );
    linker.seal();
    let e = exec(&["libA.so"], &["f"]);
    let fp = linker.resolve_executable(&e);
    for nr in [10, 20, 30] {
        assert!(fp.syscalls.contains(&nr), "missing hop syscall {nr}");
    }
}

#[test]
fn needed_order_decides_symbol_shadowing() {
    // Two libraries export `shadowed`; the first library in the DT_NEEDED
    // search order wins, like the dynamic linker's breadth-first lookup.
    let first = lib("libfirst.so", &[], vec![export("shadowed", &[100], &[])]);
    let second = lib("libsecond.so", &[], vec![export("shadowed", &[200], &[])]);
    let mut linker = Linker::new();
    linker.add_library("libfirst.so", first);
    linker.add_library("libsecond.so", second);
    linker.seal();

    let e1 = exec(&["libfirst.so", "libsecond.so"], &["shadowed"]);
    let fp = linker.resolve_executable(&e1);
    assert!(fp.syscalls.contains(&100));
    assert!(!fp.syscalls.contains(&200), "second lib must be shadowed");

    let e2 = exec(&["libsecond.so", "libfirst.so"], &["shadowed"]);
    let fp = linker.resolve_executable(&e2);
    assert!(fp.syscalls.contains(&200));
    assert!(!fp.syscalls.contains(&100));
}

#[test]
fn library_dependency_cycles_terminate_and_union() {
    // libX.f calls libY.g; libY.g calls libX.f — a cross-library SCC.
    let x = lib("libX.so", &["libY.so"], vec![export("f", &[41], &["g"])]);
    let y = lib("libY.so", &["libX.so"], vec![export("g", &[42], &["f"])]);
    let mut linker = Linker::new();
    linker.add_library("libX.so", x);
    linker.add_library("libY.so", y);
    linker.seal();
    let f = linker.resolve_export("libX.so", "f").unwrap();
    let g = linker.resolve_export("libY.so", "g").unwrap();
    assert_eq!(f.syscalls, g.syscalls, "SCC members share the closure");
    assert!(f.syscalls.contains(&41) && f.syscalls.contains(&42));
}

#[test]
fn diamond_dependencies_resolve_once() {
    // exec needs libL and libR; both need libBase. The base syscall must
    // appear exactly once in the set (sets dedupe), and resolution must
    // not error on the shared dependency.
    let base = lib("libbase.so", &[], vec![export("base_fn", &[77], &[])]);
    let l = lib("libl.so", &["libbase.so"], vec![export("lf", &[1], &["base_fn"])]);
    let r = lib("libr.so", &["libbase.so"], vec![export("rf", &[2], &["base_fn"])]);
    let mut linker = Linker::new();
    linker.add_library("libbase.so", base);
    linker.add_library("libl.so", l);
    linker.add_library("libr.so", r);
    linker.seal();
    let e = exec(&["libl.so", "libr.so"], &["lf", "rf"]);
    let fp = linker.resolve_executable(&e);
    for nr in [1, 2, 77] {
        assert!(fp.syscalls.contains(&nr));
    }
}

#[test]
fn missing_transitive_library_degrades_gracefully() {
    // libA needs libGone (never registered): resolution keeps libA's own
    // facts and simply cannot see through the missing hop.
    let a = lib("liba.so", &["libgone.so"], vec![export("f", &[10], &["ghost"])]);
    let mut linker = Linker::new();
    linker.add_library("liba.so", a);
    linker.seal();
    let f = linker.resolve_export("liba.so", "f").unwrap();
    assert!(f.syscalls.contains(&10));
    assert!(f.imports.contains("ghost"), "unresolved import is recorded");
}
