//! Cross-binary footprint resolution.
//!
//! A binary's own code is only part of its footprint: most applications
//! reach the kernel through shared libraries (paper §2.3). The [`Linker`]
//! registers every analyzed shared library, resolves import references
//! through `DT_NEEDED` closures, and computes *closed* footprints — the
//! union of everything reachable through the cross-binary call graph.
//!
//! The paper implements this step as recursive SQL aggregation over a
//! Postgres database; here it is an explicit strongly-connected-component
//! condensation over the global function graph, computed once, after which
//! every executable resolves in time proportional to its own reachable set.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use crate::binary::BinaryAnalysis;
use crate::facts::Footprint;

/// Node id in the global function graph.
type Node = u32;

/// The cross-binary resolver.
///
/// Usage: [`Linker::add_library`] every shared library, then [`Linker::seal`]
/// once, then query [`Linker::resolve_executable`] /
/// [`Linker::resolve_export`] any number of times.
#[derive(Debug, Default)]
pub struct Linker {
    libs: Vec<Arc<BinaryAnalysis>>,
    by_soname: HashMap<String, usize>,
    /// Per-library node-id base offset.
    node_base: Vec<u32>,
    /// Closed footprint per node (shared within an SCC).
    closed: Vec<Arc<Footprint>>,
    sealed: bool,
}

impl Linker {
    /// Creates an empty linker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a shared library by its `DT_SONAME` (falling back to the
    /// given name when the binary has none). Accepts either an owned
    /// analysis or a shared `Arc` (the incremental cache hands out the
    /// latter). Must be called before [`Linker::seal`].
    pub fn add_library(
        &mut self,
        name_fallback: &str,
        ba: impl Into<Arc<BinaryAnalysis>>,
    ) -> usize {
        assert!(!self.sealed, "cannot add libraries after seal()");
        let ba = ba.into();
        let name = ba.soname.clone().unwrap_or_else(|| name_fallback.to_owned());
        let idx = self.libs.len();
        self.libs.push(ba);
        self.by_soname.insert(name, idx);
        idx
    }

    /// Number of registered libraries.
    pub fn library_count(&self) -> usize {
        self.libs.len()
    }

    /// The analysis of a registered library, by soname.
    pub fn library(&self, soname: &str) -> Option<&BinaryAnalysis> {
        self.by_soname.get(soname).map(|&i| &*self.libs[i])
    }

    /// Iterates every registered `(soname, analysis)` pair (the pipeline's
    /// degradation-taint propagation walks `DT_NEEDED` edges through this).
    pub fn libraries_iter(&self) -> impl Iterator<Item = (&str, &BinaryAnalysis)> {
        self.by_soname.iter().map(|(name, &i)| (name.as_str(), &*self.libs[i]))
    }

    /// BFS over `DT_NEEDED` starting from the given sonames, returning
    /// library indices (as handed out by [`Linker::add_library`]) in
    /// search order. Unknown sonames are skipped. This is the exact
    /// closure [`Linker::resolve_executable`] resolves symbols through,
    /// which is why the incremental footprint cache derives its keys from
    /// it: a resolved footprint is a pure function of the executable and
    /// the libraries this walk visits.
    pub fn needed_closure(&self, roots: &[String]) -> Vec<usize> {
        let mut order = Vec::new();
        let mut seen = BTreeSet::new();
        let mut queue: Vec<&str> = roots.iter().map(String::as_str).collect();
        let mut qi = 0;
        while qi < queue.len() {
            let name = queue[qi];
            qi += 1;
            let Some(&idx) = self.by_soname.get(name) else { continue };
            if !seen.insert(idx) {
                continue;
            }
            order.push(idx);
            for dep in &self.libs[idx].needed {
                queue.push(dep);
            }
        }
        order
    }

    /// Resolves an imported symbol through a needed-closure search order.
    fn resolve_symbol(&self, closure: &[usize], name: &str) -> Option<(usize, usize)> {
        for &lib in closure {
            if let Some(func) = self.libs[lib].export(name) {
                return Some((lib, func));
            }
        }
        None
    }

    /// Builds the global function graph, condenses it (iterative Tarjan),
    /// and computes the closed footprint of every library function.
    pub fn seal(&mut self) {
        assert!(!self.sealed, "seal() called twice");
        self.sealed = true;

        // Node numbering.
        self.node_base = Vec::with_capacity(self.libs.len());
        let mut total: u32 = 0;
        for lib in &self.libs {
            self.node_base.push(total);
            total += lib.funcs.len() as u32;
        }
        let node_of = |lib: usize, func: usize| -> Node {
            self.node_base[lib] + func as u32
        };

        // Edges: internal calls + resolved imports.
        let closures: Vec<Vec<usize>> = self
            .libs
            .iter()
            .map(|lib| self.needed_closure(&lib.needed))
            .collect();
        let mut edges: Vec<Vec<Node>> = vec![Vec::new(); total as usize];
        for (li, lib) in self.libs.iter().enumerate() {
            for (fi, f) in lib.funcs.iter().enumerate() {
                let n = node_of(li, fi) as usize;
                for &callee in &f.calls {
                    edges[n].push(node_of(li, callee));
                }
                for imp in &f.facts.imports {
                    if let Some((tl, tf)) = self.resolve_symbol(&closures[li], imp)
                    {
                        edges[n].push(node_of(tl, tf));
                    }
                }
            }
        }

        // Iterative Tarjan SCC.
        let n = total as usize;
        let mut index = vec![u32::MAX; n];
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut scc_of = vec![u32::MAX; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        let mut scc_count = 0u32;
        // SCCs come out in reverse topological order (roots of the
        // condensation last), which is exactly the order we can fold
        // closed footprints in.
        let mut scc_members: Vec<Vec<u32>> = Vec::new();

        #[derive(Clone, Copy)]
        struct Frame {
            v: u32,
            edge: u32,
        }
        for start in 0..n as u32 {
            if index[start as usize] != u32::MAX {
                continue;
            }
            let mut frames = vec![Frame { v: start, edge: 0 }];
            index[start as usize] = next_index;
            lowlink[start as usize] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start as usize] = true;

            while let Some(frame) = frames.last_mut() {
                let v = frame.v as usize;
                if (frame.edge as usize) < edges[v].len() {
                    let w = edges[v][frame.edge as usize];
                    frame.edge += 1;
                    let wu = w as usize;
                    if index[wu] == u32::MAX {
                        index[wu] = next_index;
                        lowlink[wu] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[wu] = true;
                        frames.push(Frame { v: w, edge: 0 });
                    } else if on_stack[wu] {
                        lowlink[v] = lowlink[v].min(index[wu]);
                    }
                } else {
                    // Finished v.
                    if lowlink[v] == index[v] {
                        let mut members = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack");
                            on_stack[w as usize] = false;
                            scc_of[w as usize] = scc_count;
                            members.push(w);
                            if w as usize == v {
                                break;
                            }
                        }
                        scc_members.push(members);
                        scc_count += 1;
                    }
                    let finished = frames.pop().expect("frame");
                    if let Some(parent) = frames.last() {
                        let p = parent.v as usize;
                        lowlink[p] =
                            lowlink[p].min(lowlink[finished.v as usize]);
                    }
                }
            }
        }

        // Closed footprint per SCC, folded in emission order (callees come
        // out of Tarjan before callers).
        let mut scc_closed: Vec<Arc<Footprint>> =
            Vec::with_capacity(scc_count as usize);
        for members in &scc_members {
            let mut fp = Footprint::new();
            for &m in members {
                // Own facts: find the owning library/function.
                let (li, fi) = self.locate(m);
                fp.merge(&self.libs[li].funcs[fi].facts);
                // Cross-SCC edges: already computed (lower SCC ids).
                for &w in &edges[m as usize] {
                    let ws = scc_of[w as usize];
                    if ws != scc_of[m as usize] {
                        debug_assert!(
                            (ws as usize) < scc_closed.len(),
                            "condensation order violated"
                        );
                        fp.merge(&scc_closed[ws as usize]);
                    }
                }
            }
            scc_closed.push(Arc::new(fp));
        }

        self.closed = (0..n)
            .map(|v| Arc::clone(&scc_closed[scc_of[v] as usize]))
            .collect();
    }

    /// Maps a node id back to `(library index, function index)`.
    fn locate(&self, node: Node) -> (usize, usize) {
        let li = match self.node_base.binary_search(&node) {
            Ok(i) => {
                // Several empty libraries can share a base; take the last
                // one whose base equals the node and has functions.
                let mut i = i;
                while i + 1 < self.node_base.len() && self.node_base[i + 1] == node
                {
                    i += 1;
                }
                i
            }
            Err(i) => i - 1,
        };
        (li, (node - self.node_base[li]) as usize)
    }

    /// The closed footprint of a library export: everything reachable from
    /// it across the whole library graph. `None` when unknown.
    pub fn resolve_export(&self, soname: &str, symbol: &str) -> Option<&Footprint> {
        assert!(self.sealed, "seal() the linker first");
        let &li = self.by_soname.get(soname)?;
        let fi = self.libs[li].export(symbol)?;
        Some(&self.closed[(self.node_base[li] + fi as u32) as usize])
    }

    /// The closed footprint of an executable: its entry-reachable own facts
    /// plus the closed footprints of every import it references, resolved
    /// through its `DT_NEEDED` closure.
    ///
    /// The returned footprint's `imports` records every referenced dynamic
    /// symbol (from the executable and the libraries it pulls in).
    pub fn resolve_executable(&self, ba: &BinaryAnalysis) -> Footprint {
        assert!(self.sealed, "seal() the linker first");
        let mut out = ba.entry_facts();
        let closure = self.needed_closure(&ba.needed);
        let imports: Vec<String> = out.imports.iter().cloned().collect();
        for imp in imports {
            if let Some((li, fi)) = self.resolve_symbol(&closure, &imp) {
                let node = (self.node_base[li] + fi as u32) as usize;
                out.merge(&self.closed[node]);
            }
        }
        out
    }

    /// The closed footprint of a whole library: union over all its exports
    /// (used when an interpreter package's footprint stands in for its
    /// scripts, paper §2.3).
    pub fn resolve_whole_library(&self, soname: &str) -> Option<Footprint> {
        assert!(self.sealed, "seal() the linker first");
        let &li = self.by_soname.get(soname)?;
        let lib = &self.libs[li];
        let mut out = Footprint::new();
        for &fi in lib.exports.values() {
            let node = (self.node_base[li] + fi as u32) as usize;
            out.merge(&self.closed[node]);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apistudy_elf::{ElfBuilder, ElfFile};
    use apistudy_x86::{Asm, Reg};

    /// Builds a tiny libc exposing `do_write` (write syscall) and `do_open`
    /// (open syscall) where `do_open` also calls `do_write` internally.
    fn build_libc() -> BinaryAnalysis {
        let mut b = ElfBuilder::shared_library("libc.so.6");
        let w = b.declare_export("do_write");
        let o = b.declare_export("do_open");
        let emit = |base: u64| {
            let mut a = Asm::new(base);
            let w_start = a.here();
            a.mov_imm32(Reg::RAX, 1);
            a.syscall();
            a.ret();
            let w_len = a.here() - w_start;
            a.align(16);
            let o_start = a.here();
            a.mov_imm32(Reg::RAX, 2);
            a.syscall();
            a.call(w_start);
            a.ret();
            let o_len = a.here() - o_start;
            (a.finish(), (w_start, w_len), (o_start, o_len))
        };
        let probe = emit(0).0.len() as u64;
        let layout = b.layout(probe, 0);
        let (code, wspan, ospan) = emit(layout.text_addr);
        b.set_text(code);
        b.bind_export(w, wspan.0 - layout.text_addr, wspan.1);
        b.bind_export(o, ospan.0 - layout.text_addr, ospan.1);
        let bytes = b.build().unwrap();
        let elf = ElfFile::parse(&bytes).unwrap();
        BinaryAnalysis::analyze(&elf).unwrap()
    }

    /// Builds an executable calling `do_open` from the libc above.
    fn build_exec(import: &str) -> BinaryAnalysis {
        let mut b = ElfBuilder::executable();
        b.needed("libc.so.6");
        let imp = b.declare_import(import);
        let emit = |base: u64, plt: u64| {
            let mut a = Asm::new(base);
            a.call(plt);
            a.ret();
            a.finish()
        };
        let probe = emit(0x1000, 0x1000).len() as u64;
        let layout = b.layout(probe, 0);
        let code = emit(layout.text_addr, layout.plt_stub_addr(imp));
        let len = code.len() as u64;
        b.set_text(code);
        b.set_entry(0);
        b.local_symbol("_start", 0, len);
        let bytes = b.build().unwrap();
        let elf = ElfFile::parse(&bytes).unwrap();
        BinaryAnalysis::analyze(&elf).unwrap()
    }

    #[test]
    fn export_footprints_are_closed_over_internal_calls() {
        let mut linker = Linker::new();
        linker.add_library("libc.so.6", build_libc());
        linker.seal();
        let w = linker.resolve_export("libc.so.6", "do_write").unwrap();
        assert_eq!(w.syscalls.iter().copied().collect::<Vec<_>>(), vec![1]);
        let o = linker.resolve_export("libc.so.6", "do_open").unwrap();
        assert_eq!(
            o.syscalls.iter().copied().collect::<Vec<_>>(),
            vec![1, 2],
            "do_open reaches write through the internal call"
        );
    }

    #[test]
    fn executable_resolution_pulls_library_syscalls() {
        let mut linker = Linker::new();
        linker.add_library("libc.so.6", build_libc());
        linker.seal();
        let exe = build_exec("do_open");
        let fp = linker.resolve_executable(&exe);
        assert!(fp.syscalls.contains(&1));
        assert!(fp.syscalls.contains(&2));
        assert!(fp.imports.contains("do_open"));
    }

    #[test]
    fn only_reachable_exports_contribute() {
        let mut linker = Linker::new();
        linker.add_library("libc.so.6", build_libc());
        linker.seal();
        let exe = build_exec("do_write");
        let fp = linker.resolve_executable(&exe);
        assert!(fp.syscalls.contains(&1));
        assert!(
            !fp.syscalls.contains(&2),
            "open is not reachable from do_write"
        );
    }

    #[test]
    fn unknown_import_is_tolerated() {
        let mut linker = Linker::new();
        linker.add_library("libc.so.6", build_libc());
        linker.seal();
        let exe = build_exec("no_such_symbol");
        let fp = linker.resolve_executable(&exe);
        assert!(fp.syscalls.is_empty());
        assert!(fp.imports.contains("no_such_symbol"));
    }

    #[test]
    fn whole_library_union() {
        let mut linker = Linker::new();
        linker.add_library("libc.so.6", build_libc());
        linker.seal();
        let fp = linker.resolve_whole_library("libc.so.6").unwrap();
        assert_eq!(fp.syscalls.iter().copied().collect::<Vec<_>>(), vec![1, 2]);
        assert!(linker.resolve_whole_library("nope.so").is_none());
    }

    #[test]
    fn mutual_recursion_across_functions_terminates() {
        // Library with two mutually recursive exports; SCC handling must
        // union their facts.
        let mut b = ElfBuilder::shared_library("librec.so");
        let f = b.declare_export("f");
        let g = b.declare_export("g");
        let emit = |base: u64, f_at: u64, g_at: u64| {
            let mut a = Asm::new(base);
            // f: syscall 10; call g; ret
            a.mov_imm32(Reg::RAX, 10);
            a.syscall();
            a.call(g_at);
            a.ret();
            a.align(16);
            let g_start = a.here();
            a.mov_imm32(Reg::RAX, 11);
            a.syscall();
            a.call(f_at);
            a.ret();
            (a.finish(), g_start)
        };
        let (probe, g_probe) = emit(0x100, 0x100, 0x100);
        let _ = g_probe;
        let layout = b.layout(probe.len() as u64, 0);
        // Two-pass: g's offset is stable because code size doesn't depend
        // on targets (rel32 always).
        let (_, g_at) = emit(layout.text_addr, layout.text_addr, layout.text_addr);
        let (code, g_at2) = emit(layout.text_addr, layout.text_addr, g_at);
        assert_eq!(g_at, g_at2);
        let glen = code.len() as u64 - (g_at - layout.text_addr);
        b.set_text(code);
        b.bind_export(f, 0, g_at - layout.text_addr);
        b.bind_export(g, g_at - layout.text_addr, glen);
        let bytes = b.build().unwrap();
        let elf = ElfFile::parse(&bytes).unwrap();
        let ba = BinaryAnalysis::analyze(&elf).unwrap();

        let mut linker = Linker::new();
        linker.add_library("librec.so", ba);
        linker.seal();
        let f_fp = linker.resolve_export("librec.so", "f").unwrap();
        let g_fp = linker.resolve_export("librec.so", "g").unwrap();
        assert_eq!(f_fp.syscalls, g_fp.syscalls);
        assert!(f_fp.syscalls.contains(&10) && f_fp.syscalls.contains(&11));
    }
}
