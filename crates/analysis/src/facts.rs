//! Footprint facts: what a piece of code can ask of the kernel.
//!
//! A [`Footprint`] is the analyzer's output unit — the set of system APIs a
//! binary (or function, or package) could invoke, together with the
//! bookkeeping the paper reports (unresolved call sites, §2.4).

use std::collections::BTreeSet;

/// The API footprint of some unit of code.
///
/// System calls are x86-64 numbers; vectored opcodes are raw operand values
/// (mapped to catalog entries downstream); `imports` are referenced dynamic
/// symbols (the libc-API usage signal of paper §3.5); `paths` are
/// hard-coded `/proc`, `/dev`, `/sys` strings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Directly or transitively reachable system call numbers.
    pub syscalls: BTreeSet<u32>,
    /// `ioctl` request codes observed at call sites.
    pub ioctl_codes: BTreeSet<u64>,
    /// `fcntl` command codes observed at call sites.
    pub fcntl_codes: BTreeSet<u64>,
    /// `prctl` option codes observed at call sites.
    pub prctl_codes: BTreeSet<u64>,
    /// Referenced imported symbols (e.g. libc functions).
    pub imports: BTreeSet<String>,
    /// Hard-coded pseudo-file path strings (literal or format patterns).
    pub paths: BTreeSet<String>,
    /// System call sites whose number could not be recovered (the paper's
    /// 4% of sites, §2.4).
    pub unresolved_syscall_sites: u32,
    /// Vectored call sites whose opcode could not be recovered.
    pub unresolved_vectored_sites: u32,
}

impl Footprint {
    /// An empty footprint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Unions `other` into `self` (set union; site counters add).
    pub fn merge(&mut self, other: &Footprint) {
        self.syscalls.extend(other.syscalls.iter().copied());
        self.ioctl_codes.extend(other.ioctl_codes.iter().copied());
        self.fcntl_codes.extend(other.fcntl_codes.iter().copied());
        self.prctl_codes.extend(other.prctl_codes.iter().copied());
        self.imports.extend(other.imports.iter().cloned());
        self.paths.extend(other.paths.iter().cloned());
        self.unresolved_syscall_sites += other.unresolved_syscall_sites;
        self.unresolved_vectored_sites += other.unresolved_vectored_sites;
    }

    /// True when nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.syscalls.is_empty()
            && self.ioctl_codes.is_empty()
            && self.fcntl_codes.is_empty()
            && self.prctl_codes.is_empty()
            && self.imports.is_empty()
            && self.paths.is_empty()
            && self.unresolved_syscall_sites == 0
            && self.unresolved_vectored_sites == 0
    }

    /// True when `self`'s API sets are all subsets of `other`'s (counters
    /// ignored).
    pub fn is_subset_of(&self, other: &Footprint) -> bool {
        self.syscalls.is_subset(&other.syscalls)
            && self.ioctl_codes.is_subset(&other.ioctl_codes)
            && self.fcntl_codes.is_subset(&other.fcntl_codes)
            && self.prctl_codes.is_subset(&other.prctl_codes)
            && self.imports.is_subset(&other.imports)
            && self.paths.is_subset(&other.paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(syscalls: &[u32], imports: &[&str]) -> Footprint {
        Footprint {
            syscalls: syscalls.iter().copied().collect(),
            imports: imports.iter().map(|s| s.to_string()).collect(),
            ..Default::default()
        }
    }

    #[test]
    fn merge_unions_sets_and_adds_counters() {
        let mut a = fp(&[0, 1], &["printf"]);
        a.unresolved_syscall_sites = 2;
        let mut b = fp(&[1, 2], &["read"]);
        b.unresolved_syscall_sites = 3;
        a.merge(&b);
        assert_eq!(a.syscalls.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(a.imports.len(), 2);
        assert_eq!(a.unresolved_syscall_sites, 5);
    }

    #[test]
    fn merge_is_idempotent_on_sets() {
        let mut a = fp(&[5], &["x"]);
        let snapshot = a.clone();
        a.merge(&snapshot.clone());
        assert_eq!(a.syscalls, snapshot.syscalls);
        assert_eq!(a.imports, snapshot.imports);
    }

    #[test]
    fn subset_check() {
        let small = fp(&[1], &[]);
        let big = fp(&[1, 2], &["y"]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(Footprint::new().is_subset_of(&small));
    }

    #[test]
    fn emptiness() {
        assert!(Footprint::new().is_empty());
        assert!(!fp(&[1], &[]).is_empty());
        let mut f = Footprint::new();
        f.unresolved_syscall_sites = 1;
        assert!(!f.is_empty());
    }
}
