//! # apistudy-analysis
//!
//! The study's static-analysis framework (paper §7), from scratch:
//!
//! - [`binary::BinaryAnalysis`] — per-binary pipeline: disassembly,
//!   function discovery, register-constant tracking for system call
//!   numbers and vectored opcodes (`ioctl`/`fcntl`/`prctl`), call-graph
//!   construction (including the paper's function-pointer
//!   over-approximation), PLT resolution, and hard-coded pseudo-file path
//!   extraction;
//! - [`linker::Linker`] — cross-binary resolution over `DT_NEEDED`
//!   closures, replacing the paper's recursive SQL aggregation with an SCC
//!   condensation of the global function graph;
//! - [`facts::Footprint`] — the analysis output unit.
//!
//! Like the paper, the analysis requires no source code and no execution:
//! it recovers footprints purely from instruction bytes and ELF metadata,
//! counting the sites it cannot resolve (§2.4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod facts;
pub mod linker;

pub use binary::{content_hash, AnalysisOptions, BinaryAnalysis, FuncInfo};
pub use facts::Footprint;
pub use linker::Linker;
