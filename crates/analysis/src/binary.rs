//! Per-binary static analysis.
//!
//! Implements the paper's §7 pipeline for one ELF object:
//!
//! 1. disassemble `.text`;
//! 2. split it into functions using the symbol table (falling back to a
//!    single region from the entry point for stripped binaries);
//! 3. per function, track register constants to recover system call
//!    numbers and vectored opcodes at call sites, and collect call-graph
//!    edges — direct calls, tail calls, PLT calls to imports, and
//!    RIP-relative function-pointer formation (the paper's deliberate
//!    over-approximation);
//! 4. resolve RIP-relative data references into `.rodata` strings to find
//!    hard-coded pseudo-file paths (including `sprintf`-style format
//!    patterns).
//!
//! Like the paper, the analysis is intra-procedural for data flow: a system
//! call number must be a constant in the issuing function, otherwise the
//! site is counted as unresolved.

use std::collections::{BTreeSet, HashMap};

use apistudy_elf::{BinaryClass, ElfError, ElfFile, Section};
use apistudy_x86::{Decoder, Insn, Reg};

use crate::facts::Footprint;

/// System call numbers of the vectored calls (x86-64).
const SYS_IOCTL: u64 = 16;
const SYS_FCNTL: u64 = 72;
const SYS_PRCTL: u64 = 157;

/// One analyzed function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncInfo {
    /// Symbol name (synthetic `sub_<addr>` when unnamed).
    pub name: String,
    /// Start virtual address.
    pub addr: u64,
    /// Size in bytes.
    pub size: u64,
    /// Facts observed in this function's own body.
    pub facts: Footprint,
    /// Intra-binary call edges (indices into [`BinaryAnalysis::funcs`]).
    pub calls: BTreeSet<usize>,
}

/// The analysis result for one ELF binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryAnalysis {
    /// Figure 1 classification.
    pub class: BinaryClass,
    /// `DT_SONAME`, when a shared library.
    pub soname: Option<String>,
    /// `DT_NEEDED` dependencies, in order.
    pub needed: Vec<String>,
    /// All discovered functions, sorted by address.
    pub funcs: Vec<FuncInfo>,
    /// Exported (dynamic) function name → index into [`Self::funcs`].
    pub exports: HashMap<String, usize>,
    /// Index of the function containing the entry point.
    pub entry: Option<usize>,
    /// Instructions decoded while scanning this binary.
    pub instructions: u64,
}

struct TextView<'a> {
    bytes: &'a [u8],
    addr: u64,
}

impl TextView<'_> {
    fn contains(&self, a: u64) -> bool {
        a >= self.addr && a < self.addr + self.bytes.len() as u64
    }
}

fn read_cstr_at(data: &[u8], base: u64, addr: u64) -> Option<String> {
    let off = addr.checked_sub(base)? as usize;
    let rest = data.get(off..)?;
    let end = rest.iter().position(|&b| b == 0)?;
    let s = std::str::from_utf8(&rest[..end]).ok()?;
    if s.chars().all(|c| c.is_ascii_graphic() || c == ' ') {
        Some(s.to_owned())
    } else {
        None
    }
}

/// Registers clobbered by a call under the System V AMD64 ABI.
const CALLER_SAVED: [u8; 9] = [0, 1, 2, 6, 7, 8, 9, 10, 11];

/// Stable 64-bit content hash over a binary's bytes — the identity half of
/// the incremental-analysis cache key (the other half is
/// [`AnalysisOptions::fingerprint`]).
///
/// xxhash-style word-at-a-time mixing with a splitmix finalizer: no
/// dependencies, deterministic across processes and platforms (the input
/// is read little-endian), and every single-bit change to the input — the
/// smallest mutation the fault injector performs — avalanches through the
/// final multiply-shift rounds. This is an integrity fingerprint for
/// dedup, not a cryptographic hash: collisions are astronomically unlikely
/// for corpus-sized inputs but an adversary could manufacture one.
pub fn content_hash(bytes: &[u8]) -> u64 {
    const PRIME_1: u64 = 0x9E37_79B1_85EB_CA87;
    const PRIME_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
    const SEED: u64 = 0x27D4_EB2F_1656_67C5;
    let mut h = SEED ^ (bytes.len() as u64).wrapping_mul(PRIME_1);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        h ^= word.wrapping_mul(PRIME_2);
        h = h.rotate_left(31).wrapping_mul(PRIME_1);
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut word = 0u64;
        for (i, &b) in tail.iter().enumerate() {
            word |= u64::from(b) << (8 * i);
        }
        // Mix the tail length in so "3 trailing bytes" and "3 trailing
        // bytes followed by removed zeros" cannot collide trivially.
        h ^= word.wrapping_mul(PRIME_2) ^ (tail.len() as u64);
        h = h.rotate_left(27).wrapping_mul(PRIME_1);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 29;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^ (h >> 32)
}

/// Tunable analysis choices — the knobs behind the paper's §7 design
/// decisions, exposed so their effect can be measured (ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisOptions {
    /// Treat RIP-relative function-pointer formation as a call edge (the
    /// paper's deliberate over-approximation). Without it, code reached
    /// only through function pointers is invisible.
    pub function_pointer_edges: bool,
    /// Treat jumps leaving the current function as call edges (tail
    /// calls). Without it, tail-called helpers are invisible.
    pub tail_call_edges: bool,
    /// Recover `ioctl`/`fcntl`/`prctl` operand constants at call sites.
    pub track_vectored: bool,
    /// Resource guard: maximum number of call-graph nodes (discovered
    /// functions) per binary. A hostile symbol table claiming millions of
    /// functions degrades into a classified
    /// [`ElfError::ResourceLimit`] skip instead of an unbounded scan.
    pub max_functions: u32,
    /// Resource guard: maximum instructions decoded per binary. Bounds the
    /// disassembly work a single pathological `.text` can demand.
    pub decode_budget: u64,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        Self {
            function_pointer_edges: true,
            tail_call_edges: true,
            track_vectored: true,
            // Far above anything the corpus generates (the paper's largest
            // binaries hold a few thousand functions), low enough that a
            // hostile input cannot run away with the worker.
            max_functions: 1 << 16,
            decode_budget: 1 << 24,
        }
    }
}

impl AnalysisOptions {
    /// Stable 64-bit fingerprint of every option that can change an
    /// analysis result — the configuration half of the incremental cache
    /// key. Two option sets with equal fingerprints must produce identical
    /// [`BinaryAnalysis`] values for the same input bytes, so every field
    /// is folded in; adding a field to this struct without extending this
    /// method is a cache-poisoning bug (the `fingerprint_covers_all_fields`
    /// test destructures the struct to force the compile error).
    pub fn fingerprint(&self) -> u64 {
        let Self {
            function_pointer_edges,
            tail_call_edges,
            track_vectored,
            max_functions,
            decode_budget,
        } = *self;
        let mut bytes = [0u8; 16];
        bytes[0] = u8::from(function_pointer_edges);
        bytes[1] = u8::from(tail_call_edges);
        bytes[2] = u8::from(track_vectored);
        bytes[4..8].copy_from_slice(&max_functions.to_le_bytes());
        bytes[8..16].copy_from_slice(&decode_budget.to_le_bytes());
        content_hash(&bytes)
    }
}

impl BinaryAnalysis {
    /// Analyzes a parsed ELF binary with the paper's default choices.
    pub fn analyze(elf: &ElfFile<'_>) -> Result<Self, ElfError> {
        Self::analyze_with(elf, AnalysisOptions::default())
    }

    /// Analyzes a parsed ELF binary with explicit [`AnalysisOptions`].
    pub fn analyze_with(
        elf: &ElfFile<'_>,
        options: AnalysisOptions,
    ) -> Result<Self, ElfError> {
        let class = elf.classify();
        let soname = elf.soname()?;
        let needed = elf.needed_libraries()?;

        let text_sec = elf.section_by_name(".text").cloned();
        let text = match &text_sec {
            Some(s) => TextView { bytes: elf.section_data(s)?, addr: s.addr },
            None => TextView { bytes: &[], addr: 0 },
        };
        let rodata_sec = elf.section_by_name(".rodata").cloned();
        let (ro_bytes, ro_addr) = match &rodata_sec {
            Some(s) => (elf.section_data(s)?, s.addr),
            None => (&[][..], 0),
        };
        let plt_sec: Option<Section> = elf.section_by_name(".plt").cloned();
        let plt_range = plt_sec
            .as_ref()
            .map(|s| (s.addr, s.addr + s.size))
            .unwrap_or((0, 0));
        let plt_by_addr: HashMap<u64, String> =
            elf.plt_map()?.into_iter().collect();

        // ---- Function discovery -------------------------------------
        let mut starts: Vec<(u64, u64, String)> = Vec::new();
        for sym in elf.symtab()? {
            if sym.is_defined_func() && text.contains(sym.value) {
                starts.push((sym.value, sym.size, sym.name));
            }
        }
        if starts.is_empty() && !text.bytes.is_empty() {
            // Stripped binary: one region from the start of .text.
            starts.push((text.addr, text.bytes.len() as u64, "text".to_owned()));
        }
        starts.sort_by_key(|&(a, _, _)| a);
        starts.dedup_by_key(|e| e.0);
        if starts.len() as u64 > u64::from(options.max_functions) {
            return Err(ElfError::ResourceLimit {
                what: "call-graph nodes",
                limit: u64::from(options.max_functions),
                actual: starts.len() as u64,
            });
        }
        // Fix zero/overlapping sizes: clamp each function to the next start.
        let ends: Vec<u64> = starts
            .iter()
            .enumerate()
            .map(|(i, &(a, sz, _))| {
                let next = starts
                    .get(i + 1)
                    .map(|&(n, _, _)| n)
                    .unwrap_or(text.addr + text.bytes.len() as u64);
                if sz == 0 {
                    next
                } else {
                    (a + sz).min(next)
                }
            })
            .collect();

        let index_of_addr: HashMap<u64, usize> = starts
            .iter()
            .enumerate()
            .map(|(i, &(a, _, _))| (a, i))
            .collect();

        // ---- Per-function scan --------------------------------------
        let mut instructions: u64 = 0;
        let mut funcs = Vec::with_capacity(starts.len());
        for (i, &(addr, _, ref name)) in starts.iter().enumerate() {
            let end = ends[i];
            let lo = (addr - text.addr) as usize;
            let hi = ((end - text.addr) as usize).min(text.bytes.len());
            let body = &text.bytes[lo..hi.max(lo)];
            let mut facts = Footprint::new();
            let mut calls = BTreeSet::new();

            // Register constant state within the function.
            let mut regs: HashMap<u8, u64> = HashMap::new();
            let clobber_call = |regs: &mut HashMap<u8, u64>| {
                for r in CALLER_SAVED {
                    regs.remove(&r);
                }
            };

            let record_call_target = |target: u64,
                                          regs: &mut HashMap<u8, u64>,
                                          facts: &mut Footprint,
                                          calls: &mut BTreeSet<usize>| {
                if target >= plt_range.0 && target < plt_range.1 {
                    if let Some(sym) = plt_by_addr.get(&target) {
                        facts.imports.insert(sym.clone());
                        // Vectored libc wrappers: capture the opcode
                        // argument; `syscall(3)` takes the number in rdi.
                        match sym.as_str() {
                            _ if !options.track_vectored => {}
                            "ioctl" => match regs.get(&Reg::RSI.0) {
                                Some(&c) => {
                                    facts.ioctl_codes.insert(c);
                                }
                                None => facts.unresolved_vectored_sites += 1,
                            },
                            "fcntl" => match regs.get(&Reg::RSI.0) {
                                Some(&c) => {
                                    facts.fcntl_codes.insert(c);
                                }
                                None => facts.unresolved_vectored_sites += 1,
                            },
                            "prctl" => match regs.get(&Reg::RDI.0) {
                                Some(&c) => {
                                    facts.prctl_codes.insert(c);
                                }
                                None => facts.unresolved_vectored_sites += 1,
                            },
                            "syscall" => match regs.get(&Reg::RDI.0) {
                                Some(&nr) => {
                                    facts.syscalls.insert(nr as u32);
                                }
                                None => facts.unresolved_syscall_sites += 1,
                            },
                            _ => {}
                        }
                    }
                } else if let Some(&idx) = index_of_addr.get(&target) {
                    calls.insert(idx);
                }
            };

            let mut decoder = Decoder::with_insn_limit(
                body,
                addr,
                options.decode_budget.saturating_sub(instructions),
            );
            for d in decoder.by_ref() {
                match d.insn {
                    Insn::MovImm { reg, imm } => {
                        regs.insert(reg.0, imm);
                    }
                    Insn::XorSelf { reg } => {
                        regs.insert(reg.0, 0);
                    }
                    Insn::Syscall | Insn::Int { vector: 0x80 } | Insn::Sysenter => {
                        match regs.get(&Reg::RAX.0).copied() {
                            Some(nr) => {
                                facts.syscalls.insert(nr as u32);
                                match nr {
                                    _ if !options.track_vectored => {}
                                    SYS_IOCTL => match regs.get(&Reg::RSI.0) {
                                        Some(&c) => {
                                            facts.ioctl_codes.insert(c);
                                        }
                                        None => {
                                            facts.unresolved_vectored_sites += 1
                                        }
                                    },
                                    SYS_FCNTL => match regs.get(&Reg::RSI.0) {
                                        Some(&c) => {
                                            facts.fcntl_codes.insert(c);
                                        }
                                        None => {
                                            facts.unresolved_vectored_sites += 1
                                        }
                                    },
                                    SYS_PRCTL => match regs.get(&Reg::RDI.0) {
                                        Some(&c) => {
                                            facts.prctl_codes.insert(c);
                                        }
                                        None => {
                                            facts.unresolved_vectored_sites += 1
                                        }
                                    },
                                    _ => {}
                                }
                            }
                            None => facts.unresolved_syscall_sites += 1,
                        }
                        // The kernel clobbers rax (return value) and
                        // rcx/r11 (syscall instruction).
                        regs.remove(&0);
                        regs.remove(&1);
                        regs.remove(&11);
                    }
                    Insn::Int { .. } => {}
                    Insn::CallRel { target } => {
                        record_call_target(target, &mut regs, &mut facts, &mut calls);
                        clobber_call(&mut regs);
                    }
                    Insn::JmpRel { target } | Insn::Jcc { target } => {
                        // Tail calls / shared epilogues: a jump that leaves
                        // the current function is treated as a call edge.
                        if options.tail_call_edges
                            && !(addr..end).contains(&target)
                        {
                            record_call_target(
                                target, &mut regs, &mut facts, &mut calls,
                            );
                        }
                    }
                    Insn::LeaRip { reg, target } => {
                        if let Some(&idx) = index_of_addr.get(&target) {
                            // Function-pointer formation: assume it will be
                            // called (paper's over-approximation).
                            if options.function_pointer_edges {
                                calls.insert(idx);
                            }
                            regs.remove(&reg.0);
                        } else if target >= plt_range.0 && target < plt_range.1 {
                            if let Some(sym) = plt_by_addr.get(&target) {
                                facts.imports.insert(sym.clone());
                            }
                            regs.remove(&reg.0);
                        } else if !ro_bytes.is_empty() {
                            if let Some(s) =
                                read_cstr_at(ro_bytes, ro_addr, target)
                            {
                                if s.starts_with('/') {
                                    facts.paths.insert(s);
                                }
                            }
                            regs.remove(&reg.0);
                        } else {
                            regs.remove(&reg.0);
                        }
                    }
                    Insn::CallIndirect => {
                        clobber_call(&mut regs);
                    }
                    Insn::JmpIndirect | Insn::Other => {}
                    Insn::Ret => {
                        regs.clear();
                    }
                    Insn::Unknown => {
                        // Lost instruction-stream sync: drop all knowledge.
                        regs.clear();
                    }
                }
            }
            instructions += decoder.decoded();
            if decoder.hit_limit() {
                return Err(ElfError::ResourceLimit {
                    what: "decoded instructions",
                    limit: options.decode_budget,
                    actual: instructions + 1,
                });
            }

            funcs.push(FuncInfo {
                name: name.clone(),
                addr,
                size: end - addr,
                facts,
                calls,
            });
        }

        // ---- Exports and entry ---------------------------------------
        let mut exports = HashMap::new();
        for sym in elf.dynsym()? {
            if sym.is_defined_func() {
                if let Some(&idx) = index_of_addr.get(&sym.value) {
                    exports.insert(sym.name, idx);
                }
            }
        }
        let entry = if elf.header.entry != 0 {
            funcs
                .iter()
                .position(|f| {
                    elf.header.entry >= f.addr
                        && elf.header.entry < f.addr + f.size
                })
        } else {
            None
        };

        Ok(Self { class, soname, needed, funcs, exports, entry, instructions })
    }

    /// Unions the facts of everything reachable from `roots` through the
    /// intra-binary call graph. Import edges are recorded in the result's
    /// `imports`; resolving them across binaries is the linker's job.
    pub fn reachable_facts(&self, roots: impl IntoIterator<Item = usize>) -> Footprint {
        let mut seen = vec![false; self.funcs.len()];
        let mut stack: Vec<usize> = roots.into_iter().collect();
        let mut out = Footprint::new();
        while let Some(i) = stack.pop() {
            let Some(flag) = seen.get_mut(i) else { continue };
            if *flag {
                continue;
            }
            *flag = true;
            let f = &self.funcs[i];
            out.merge(&f.facts);
            stack.extend(f.calls.iter().copied());
        }
        out
    }

    /// Facts reachable from the entry point (empty for libraries).
    pub fn entry_facts(&self) -> Footprint {
        match self.entry {
            Some(e) => self.reachable_facts([e]),
            None => Footprint::new(),
        }
    }

    /// System call numbers issued directly by this binary's own code
    /// (no cross-binary resolution) — the paper's library-attribution
    /// signal (Tables 1 and 5).
    pub fn direct_syscalls(&self) -> BTreeSet<u32> {
        let mut out = BTreeSet::new();
        for f in &self.funcs {
            out.extend(f.facts.syscalls.iter().copied());
        }
        out
    }

    /// Function index for an exported name.
    pub fn export(&self, name: &str) -> Option<usize> {
        self.exports.get(name).copied()
    }

    /// Renders the intra-binary call graph in Graphviz DOT form, with the
    /// per-function system calls as labels — the analyzer as a standalone
    /// inspection tool.
    pub fn call_graph_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph callgraph {\n");
        let _ = writeln!(out, "  rankdir=LR; node [shape=box];");
        for (i, f) in self.funcs.iter().enumerate() {
            let syscalls: Vec<String> =
                f.facts.syscalls.iter().map(|n| n.to_string()).collect();
            let label = if syscalls.is_empty() {
                f.name.clone()
            } else {
                format!("{}\\nsyscalls: {}", f.name, syscalls.join(","))
            };
            let _ = writeln!(out, "  f{i} [label=\"{label}\"];");
            for imp in &f.facts.imports {
                let _ = writeln!(
                    out,
                    "  f{i} -> \"{imp}@plt\" [style=dashed];"
                );
            }
        }
        for (i, f) in self.funcs.iter().enumerate() {
            for &callee in &f.calls {
                let _ = writeln!(out, "  f{i} -> f{callee};");
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apistudy_elf::ElfBuilder;
    use apistudy_x86::Asm;

    /// Builds an executable with:
    /// - `main` (entry): calls `helper` directly, references `/proc/cpuinfo`,
    ///   issues `write` (1) via inline syscall, calls imported `printf`;
    /// - `helper`: `ioctl` syscall with `TCGETS` in rsi;
    /// - `cold`: unreachable; issues `reboot` (169).
    fn build_sample() -> Vec<u8> {
        let mut b = ElfBuilder::executable();
        b.needed("libc.so.6");
        let printf = b.declare_import("printf");
        let main_id = b.declare_export("main");

        // Two-pass assembly: generate once with a dummy layout to learn
        // sizes, then with the real layout.
        let emit = |layout: apistudy_elf::Layout| -> (Vec<u8>, Vec<(u64, u64)>) {
            let mut a = Asm::new(layout.text_addr);
            let mut spans = Vec::new();
            // main
            let main_start = a.here();
            a.push_rbp();
            a.lea_rip(Reg::RDI, layout.rodata_addr); // "/proc/cpuinfo"
            a.mov_imm32(Reg::RAX, 1); // write
            a.syscall();
            a.call(layout.plt_stub_addr(printf));
            // call helper: placed right after main; we patch with a second
            // pass, so compute target from known sizes below. For the
            // sample we instead emit the call with a forward target that
            // both passes agree on: helper starts at a fixed offset.
            let helper_target = layout.text_addr + 0x40;
            a.call(helper_target);
            a.pop_rbp();
            a.ret();
            let main_end = a.here();
            spans.push((main_start, main_end - main_start));
            // helper at fixed offset 0x40.
            while a.here() < helper_target {
                a.int3_pad(1);
            }
            let helper_start = a.here();
            a.mov_imm32(Reg::RSI, 0x5401); // TCGETS
            a.mov_imm32(Reg::RAX, 16); // ioctl
            a.syscall();
            a.ret();
            spans.push((helper_start, a.here() - helper_start));
            // cold at next 16-byte boundary.
            a.align(16);
            let cold_start = a.here();
            a.mov_imm32(Reg::RAX, 169); // reboot
            a.syscall();
            a.ret();
            spans.push((cold_start, a.here() - cold_start));
            (a.finish(), spans)
        };

        // Pass 1: find text size with a throwaway layout.
        let probe = {
            let mut b2 = b.clone();
            let l = b2.layout(0x200, 32);
            emit(l).0.len() as u64
        };
        let rodata = b"/proc/cpuinfo\0".to_vec();
        let layout = b.layout(probe, rodata.len() as u64);
        let (text, spans) = emit(layout);
        assert_eq!(text.len() as u64, probe, "two-pass emission stable");
        b.set_text(text);
        b.set_rodata(rodata);
        b.bind_export(main_id, spans[0].0 - layout.text_addr, spans[0].1);
        b.local_symbol(
            "helper",
            spans[1].0 - layout.text_addr,
            spans[1].1,
        );
        b.local_symbol("cold", spans[2].0 - layout.text_addr, spans[2].1);
        b.set_entry(spans[0].0 - layout.text_addr);
        b.build().expect("build")
    }

    #[test]
    fn recovers_reachable_footprint() {
        let bytes = build_sample();
        let elf = ElfFile::parse(&bytes).unwrap();
        let ba = BinaryAnalysis::analyze(&elf).unwrap();

        assert_eq!(ba.funcs.len(), 3);
        let entry = ba.entry.expect("entry resolves to main");
        assert_eq!(ba.funcs[entry].name, "main");

        let fp = ba.entry_facts();
        // write (1) from main, ioctl (16) from helper; NOT reboot (169).
        assert!(fp.syscalls.contains(&1));
        assert!(fp.syscalls.contains(&16));
        assert!(!fp.syscalls.contains(&169));
        assert!(fp.ioctl_codes.contains(&0x5401));
        assert!(fp.imports.contains("printf"));
        assert!(fp.paths.contains("/proc/cpuinfo"));
        assert_eq!(fp.unresolved_syscall_sites, 0);
    }

    #[test]
    fn direct_syscalls_include_unreachable_code() {
        let bytes = build_sample();
        let elf = ElfFile::parse(&bytes).unwrap();
        let ba = BinaryAnalysis::analyze(&elf).unwrap();
        let all = ba.direct_syscalls();
        assert!(all.contains(&169), "attribution sees the whole binary");
    }

    #[test]
    fn unresolved_syscall_number_is_counted() {
        // A function that issues `syscall` without a constant rax.
        let mut b = ElfBuilder::static_executable();
        let mut a = Asm::new(0);
        a.syscall();
        a.ret();
        let code = a.finish();
        let layout = b.layout(code.len() as u64, 0);
        let mut a = Asm::new(layout.text_addr);
        a.syscall();
        a.ret();
        b.set_text(a.finish());
        b.set_entry(0);
        b.local_symbol("f", 0, code.len() as u64);
        let bytes = b.build().unwrap();
        let elf = ElfFile::parse(&bytes).unwrap();
        let ba = BinaryAnalysis::analyze(&elf).unwrap();
        let fp = ba.entry_facts();
        assert!(fp.syscalls.is_empty());
        assert_eq!(fp.unresolved_syscall_sites, 1);
    }

    #[test]
    fn call_clobbers_tracked_registers() {
        // mov eax, 1; call f; syscall  → rax unknown at the syscall.
        let mut b = ElfBuilder::static_executable();
        let emit = |base: u64, len_hint: u64| {
            let mut a = Asm::new(base);
            a.mov_imm32(Reg::RAX, 1);
            a.call(base + len_hint); // call the trailing ret
            a.syscall();
            a.ret();
            let f_off = a.here() - base;
            a.ret(); // callee
            (a.finish(), f_off)
        };
        let (probe, _) = emit(0, 0);
        let probe_f = {
            let mut a = Asm::new(0);
            a.mov_imm32(Reg::RAX, 1);
            a.call(0);
            a.syscall();
            a.ret();
            a.here()
        };
        let layout = b.layout(probe.len() as u64, 0);
        let (code, f_off) = emit(layout.text_addr, probe_f);
        b.set_text(code.clone());
        b.set_entry(0);
        b.local_symbol("main", 0, f_off);
        b.local_symbol("callee", f_off, code.len() as u64 - f_off);
        let bytes = b.build().unwrap();
        let elf = ElfFile::parse(&bytes).unwrap();
        let ba = BinaryAnalysis::analyze(&elf).unwrap();
        let fp = ba.entry_facts();
        assert!(fp.syscalls.is_empty(), "constant must not survive the call");
        assert_eq!(fp.unresolved_syscall_sites, 1);
    }

    #[test]
    fn stripped_binary_falls_back_to_single_region() {
        // No .symtab function symbols: the analyzer scans one region from
        // the start of .text (paper §7 handles stripped binaries too).
        let mut b = apistudy_elf::ElfBuilder::static_executable();
        let emit = |base: u64| {
            let mut a = Asm::new(base);
            a.mov_imm32(Reg::RAX, 39); // getpid
            a.syscall();
            a.mov_imm32(Reg::RAX, 60); // exit
            a.syscall();
            a.ret();
            a.finish()
        };
        let probe = emit(0);
        let layout = b.layout(probe.len() as u64, 0);
        b.set_text(emit(layout.text_addr));
        b.set_entry(0);
        // Deliberately no local_symbol calls.
        let bytes = b.build().unwrap();
        let elf = ElfFile::parse(&bytes).unwrap();
        let ba = BinaryAnalysis::analyze(&elf).unwrap();
        assert_eq!(ba.funcs.len(), 1, "single fallback region");
        assert_eq!(ba.funcs[0].name, "text");
        let fp = ba.entry_facts();
        assert!(fp.syscalls.contains(&39));
        assert!(fp.syscalls.contains(&60));
    }

    #[test]
    fn ablation_disabling_function_pointers_loses_coverage() {
        // Same binary as `function_pointer_over_approximation`, analyzed
        // without the over-approximation: the lea-only target vanishes.
        let mut b = apistudy_elf::ElfBuilder::static_executable();
        let emit = |base: u64, tgt: u64| {
            let mut a = Asm::new(base);
            a.lea_rip(Reg::RAX, tgt);
            a.ret();
            let off = a.here() - base;
            a.mov_imm32(Reg::RAX, 60);
            a.syscall();
            a.ret();
            (a.finish(), off)
        };
        let (probe, probe_off) = emit(0, 0);
        let layout = b.layout(probe.len() as u64, 0);
        let (code, off) = emit(layout.text_addr, layout.text_addr + probe_off);
        b.set_text(code.clone());
        b.set_entry(0);
        b.local_symbol("main", 0, off);
        b.local_symbol("target_fn", off, code.len() as u64 - off);
        let bytes = b.build().unwrap();
        let elf = ElfFile::parse(&bytes).unwrap();
        let opts = AnalysisOptions {
            function_pointer_edges: false,
            ..AnalysisOptions::default()
        };
        let ba = BinaryAnalysis::analyze_with(&elf, opts).unwrap();
        let fp = ba.entry_facts();
        assert!(
            !fp.syscalls.contains(&60),
            "without pointer edges the target is unreachable"
        );
    }

    #[test]
    fn ablation_vectored_tracking_off_drops_codes() {
        let mut b = apistudy_elf::ElfBuilder::static_executable();
        let emit = |base: u64| {
            let mut a = Asm::new(base);
            a.mov_imm32(Reg::RSI, 0x5401);
            a.mov_imm32(Reg::RAX, 16);
            a.syscall();
            a.ret();
            a.finish()
        };
        let probe = emit(0);
        let layout = b.layout(probe.len() as u64, 0);
        let code = emit(layout.text_addr);
        let len = code.len() as u64;
        b.set_text(code);
        b.set_entry(0);
        b.local_symbol("main", 0, len);
        let bytes = b.build().unwrap();
        let elf = ElfFile::parse(&bytes).unwrap();
        let opts = AnalysisOptions {
            track_vectored: false,
            ..AnalysisOptions::default()
        };
        let ba = BinaryAnalysis::analyze_with(&elf, opts).unwrap();
        let fp = ba.entry_facts();
        assert!(fp.syscalls.contains(&16), "the syscall itself is kept");
        assert!(fp.ioctl_codes.is_empty(), "opcodes are not recovered");
        // Default options recover the opcode.
        let ba = BinaryAnalysis::analyze(&elf).unwrap();
        assert!(ba.entry_facts().ioctl_codes.contains(&0x5401));
    }

    #[test]
    fn resource_guards_classify_pathological_binaries() {
        let bytes = build_sample();
        let elf = ElfFile::parse(&bytes).unwrap();

        // The sample has 3 functions; a 2-node cap trips the guard.
        let opts = AnalysisOptions {
            max_functions: 2,
            ..AnalysisOptions::default()
        };
        let err = BinaryAnalysis::analyze_with(&elf, opts).unwrap_err();
        assert_eq!(err.kind(), apistudy_elf::ErrorKind::ResourceLimit);
        assert!(matches!(
            err,
            ElfError::ResourceLimit { what: "call-graph nodes", .. }
        ));

        // A tiny decode budget trips the instruction guard.
        let opts = AnalysisOptions {
            decode_budget: 3,
            ..AnalysisOptions::default()
        };
        let err = BinaryAnalysis::analyze_with(&elf, opts).unwrap_err();
        assert!(matches!(
            err,
            ElfError::ResourceLimit { what: "decoded instructions", limit: 3, .. }
        ));

        // Default budgets analyze the same binary untouched.
        let ba = BinaryAnalysis::analyze(&elf).unwrap();
        assert_eq!(ba.funcs.len(), 3);
    }

    #[test]
    fn function_pointer_over_approximation() {
        // main lea's the address of `target_fn` but never calls it; the
        // analyzer still adds the edge (paper §7).
        let mut b = ElfBuilder::static_executable();
        let emit = |base: u64, tgt: u64| {
            let mut a = Asm::new(base);
            a.lea_rip(Reg::RAX, tgt);
            a.ret();
            let off = a.here() - base;
            a.mov_imm32(Reg::RAX, 60);
            a.syscall();
            a.ret();
            (a.finish(), off)
        };
        let (probe, probe_off) = emit(0, 0);
        let layout = b.layout(probe.len() as u64, 0);
        let (code, off) = emit(layout.text_addr, layout.text_addr + probe_off);
        b.set_text(code.clone());
        b.set_entry(0);
        b.local_symbol("main", 0, off);
        b.local_symbol("target_fn", off, code.len() as u64 - off);
        let bytes = b.build().unwrap();
        let elf = ElfFile::parse(&bytes).unwrap();
        let ba = BinaryAnalysis::analyze(&elf).unwrap();
        let fp = ba.entry_facts();
        assert!(fp.syscalls.contains(&60), "lea-formed pointer counts as a call");
    }
}
