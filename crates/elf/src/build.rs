//! ELF64 writer.
//!
//! Produces real, parseable x86-64 ELF objects: executables (static or
//! dynamic) and shared libraries with `.text`, `.rodata`, `.plt`,
//! `.dynsym`/`.dynstr`, `.rela.plt`, `.dynamic`, and full symbol tables.
//! The corpus generator uses this to emit every binary in the synthetic
//! repository, so the analyzer exercises the same code paths it would on
//! distribution binaries.
//!
//! ## Build protocol
//!
//! Addresses of `.text`, `.rodata`, and PLT stubs depend on the dynamic
//! tables, whose sizes depend only on declared names. The protocol is
//! therefore two-phase:
//!
//! 1. declare structure: [`ElfBuilder::needed`], [`ElfBuilder::declare_import`],
//!    [`ElfBuilder::declare_export`], and the `.text`/`.rodata` sizes via
//!    [`ElfBuilder::layout`];
//! 2. generate code against the returned [`Layout`], then bind it:
//!    [`ElfBuilder::set_text`], [`ElfBuilder::set_rodata`],
//!    [`ElfBuilder::bind_export`], [`ElfBuilder::set_entry`], and finally
//!    [`ElfBuilder::build`].
//!
//! ## PLT convention
//!
//! Imported functions get one [`PLT_STUB_SIZE`]-byte stub each, in
//! declaration order; `.rela.plt` entry *i* (a `R_X86_64_JUMP_SLOT` against
//! the import's `.dynsym` entry) corresponds to stub *i*. This matches how
//! the parser's [`crate::parse::ElfFile::plt_map`] resolves call targets.

use crate::{
    error::{ElfError, Result},
    types::{
        dt, pf, pt, shf, ElfType, SymBinding, SymType, DYN_SIZE, EHDR_SIZE,
        ELF_MAGIC, EM_X86_64, PHDR_SIZE, RELA_SIZE, R_X86_64_JUMP_SLOT,
        SHDR_SIZE, SHN_UNDEF, SYM_SIZE,
    },
};

/// Size of one PLT stub emitted by the builder.
pub const PLT_STUB_SIZE: usize = 16;

/// Base virtual address for executables.
pub const EXEC_BASE: u64 = 0x40_0000;

/// Default ELF interpreter recorded for dynamic executables.
pub const DEFAULT_INTERP: &str = "/lib64/ld-linux-x86-64.so.2";

/// Resolved addresses for code generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Virtual address of `.text`.
    pub text_addr: u64,
    /// Virtual address of `.rodata`.
    pub rodata_addr: u64,
    /// Virtual address of `.plt` (0 when there are no imports).
    pub plt_addr: u64,
    /// Number of PLT stubs.
    pub plt_count: u32,
}

impl Layout {
    /// Virtual address of PLT stub `i` (the call target for import `i`).
    pub fn plt_stub_addr(&self, i: u32) -> u64 {
        debug_assert!(i < self.plt_count, "import index out of range");
        self.plt_addr + u64::from(i) * PLT_STUB_SIZE as u64
    }
}

#[derive(Debug, Clone)]
struct Export {
    name: String,
    text_off: u64,
    size: u64,
    bound: bool,
}

#[derive(Debug, Clone)]
struct LocalSym {
    name: String,
    text_off: u64,
    size: u64,
}

/// Builder for a synthetic x86-64 ELF object.
#[derive(Debug, Clone)]
pub struct ElfBuilder {
    etype: ElfType,
    interp: Option<String>,
    soname: Option<String>,
    needed: Vec<String>,
    imports: Vec<String>,
    exports: Vec<Export>,
    locals: Vec<LocalSym>,
    text: Vec<u8>,
    rodata: Vec<u8>,
    text_size_hint: u64,
    entry_off: Option<u64>,
}

impl ElfBuilder {
    /// A dynamically linked executable (has `PT_INTERP`).
    pub fn executable() -> Self {
        Self::new(ElfType::Exec, Some(DEFAULT_INTERP.to_owned()), None)
    }

    /// A statically linked executable (no interpreter, no dynamic tables).
    pub fn static_executable() -> Self {
        Self::new(ElfType::Exec, None, None)
    }

    /// A shared library with the given `DT_SONAME`.
    pub fn shared_library(soname: &str) -> Self {
        Self::new(ElfType::Dyn, None, Some(soname.to_owned()))
    }

    fn new(etype: ElfType, interp: Option<String>, soname: Option<String>) -> Self {
        Self {
            etype,
            interp,
            soname,
            needed: Vec::new(),
            imports: Vec::new(),
            exports: Vec::new(),
            locals: Vec::new(),
            text: Vec::new(),
            rodata: Vec::new(),
            text_size_hint: 0,
            entry_off: None,
        }
    }

    /// Records a `DT_NEEDED` dependency on a shared library.
    pub fn needed(&mut self, lib: &str) -> &mut Self {
        self.needed.push(lib.to_owned());
        self
    }

    /// Declares an imported function; returns its import index (= PLT slot).
    ///
    /// Duplicate declarations return the existing index.
    pub fn declare_import(&mut self, sym: &str) -> u32 {
        if let Some(i) = self.imports.iter().position(|s| s == sym) {
            return i as u32;
        }
        self.imports.push(sym.to_owned());
        (self.imports.len() - 1) as u32
    }

    /// Declares an exported function; its `.text` offset is bound later with
    /// [`Self::bind_export`]. Returns the export id.
    pub fn declare_export(&mut self, name: &str) -> u32 {
        self.exports.push(Export {
            name: name.to_owned(),
            text_off: 0,
            size: 0,
            bound: false,
        });
        (self.exports.len() - 1) as u32
    }

    /// Binds a declared export to its generated code.
    pub fn bind_export(&mut self, id: u32, text_off: u64, size: u64) {
        let e = &mut self.exports[id as usize];
        e.text_off = text_off;
        e.size = size;
        e.bound = true;
    }

    /// Adds a local (non-exported) function symbol to `.symtab`.
    pub fn local_symbol(&mut self, name: &str, text_off: u64, size: u64) {
        self.locals.push(LocalSym { name: name.to_owned(), text_off, size });
    }

    /// Sets the generated machine code.
    pub fn set_text(&mut self, bytes: Vec<u8>) {
        self.text = bytes;
    }

    /// Sets the read-only data (string constants, tables).
    pub fn set_rodata(&mut self, bytes: Vec<u8>) {
        self.rodata = bytes;
    }

    /// Sets the entry point as an offset into `.text`.
    pub fn set_entry(&mut self, text_off: u64) {
        self.entry_off = Some(text_off);
    }

    fn is_dynamic(&self) -> bool {
        self.etype == ElfType::Dyn
            || !self.needed.is_empty()
            || !self.imports.is_empty()
            || self.soname.is_some()
    }

    fn base(&self) -> u64 {
        match self.etype {
            ElfType::Exec => EXEC_BASE,
            _ => 0,
        }
    }

    /// Builds the `.dynstr` contents and returns `(bytes, offset_of)` where
    /// `offset_of(name)` is the string's offset.
    fn dynstr(&self) -> (Vec<u8>, impl Fn(&str) -> u32 + '_) {
        let mut bytes = vec![0u8];
        let mut offsets: Vec<(String, u32)> = Vec::new();
        {
            let mut add = |s: &str| {
                if offsets.iter().any(|(n, _)| n == s) {
                    return;
                }
                offsets.push((s.to_owned(), bytes.len() as u32));
                bytes.extend_from_slice(s.as_bytes());
                bytes.push(0);
            };
            for s in &self.imports {
                add(s);
            }
            for e in &self.exports {
                add(&e.name);
            }
            for s in &self.needed {
                add(s);
            }
            if let Some(s) = &self.soname {
                add(s);
            }
        }
        let lookup = move |name: &str| -> u32 {
            offsets
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, o)| o)
                .unwrap_or(0)
        };
        (bytes, lookup)
    }

    /// Internal layout: file offsets (== vaddr - base for allocated pieces).
    fn offsets(&self, text_len: u64, rodata_len: u64) -> Offsets {
        let phnum = {
            let mut n = 1; // PT_LOAD
            if self.interp.is_some() {
                n += 1;
            }
            if self.is_dynamic() {
                n += 1;
            }
            n
        };
        let mut off = (EHDR_SIZE + phnum * PHDR_SIZE) as u64;
        let align8 = |v: u64| (v + 7) & !7;
        let align16 = |v: u64| (v + 15) & !15;

        let interp_off = off;
        let interp_len = self.interp.as_ref().map_or(0, |s| s.len() as u64 + 1);
        off = align8(off + interp_len);

        let (dynstr_bytes, _) = self.dynstr();
        let dynstr_off = off;
        let dynstr_len = if self.is_dynamic() { dynstr_bytes.len() as u64 } else { 0 };
        off = align8(off + dynstr_len);

        let dynsym_off = off;
        let dynsym_count =
            if self.is_dynamic() { 1 + self.imports.len() + self.exports.len() } else { 0 };
        off = align8(off + (dynsym_count * SYM_SIZE) as u64);

        let rela_off = off;
        let rela_len = if self.is_dynamic() {
            (self.imports.len() * RELA_SIZE) as u64
        } else {
            0
        };
        off = align8(off + rela_len);

        let dynamic_off = off;
        let dynamic_count = if self.is_dynamic() {
            self.needed.len() + usize::from(self.soname.is_some()) + 1
        } else {
            0
        };
        off = align16(off + (dynamic_count * DYN_SIZE) as u64);

        let plt_off = off;
        let plt_len = (self.imports.len() * PLT_STUB_SIZE) as u64;
        off = align16(off + plt_len);

        let text_off = off;
        off = align16(off + text_len);

        let rodata_off = off;
        off = align8(off + rodata_len);

        Offsets {
            phnum,
            interp_off,
            interp_len,
            dynstr_off,
            dynsym_off,
            dynsym_count,
            rela_off,
            dynamic_off,
            dynamic_count,
            plt_off,
            plt_len,
            text_off,
            rodata_off,
            alloc_end: off,
        }
    }

    /// Computes addresses for code generation, given the expected sizes of
    /// `.text` and `.rodata` (only their *relative* layout matters: `.text`
    /// comes first, so its own length does not shift its base, and `.rodata`
    /// follows at `text_size` rounded up).
    ///
    /// All names (imports, exports, needed libraries) must be declared
    /// before calling this.
    pub fn layout(&mut self, text_size: u64, rodata_size: u64) -> Layout {
        self.text_size_hint = text_size;
        let off = self.offsets(text_size, rodata_size);
        let base = self.base();
        Layout {
            text_addr: base + off.text_off,
            rodata_addr: base + off.rodata_off,
            plt_addr: if self.imports.is_empty() { 0 } else { base + off.plt_off },
            plt_count: self.imports.len() as u32,
        }
    }

    /// Serializes the object. Fails when exports are unbound or when the
    /// bound `.text` disagrees with the size given to [`Self::layout`].
    pub fn build(&self) -> Result<Vec<u8>> {
        if let Some(e) = self.exports.iter().find(|e| !e.bound) {
            let _ = e;
            return Err(ElfError::Malformed("unbound export"));
        }
        if self.text.len() as u64 != self.text_size_hint && self.text_size_hint != 0 {
            return Err(ElfError::Malformed("text size differs from layout hint"));
        }
        let off = self.offsets(self.text.len() as u64, self.rodata.len() as u64);
        let base = self.base();
        let dynamic = self.is_dynamic();
        let (dynstr_bytes, str_off) = self.dynstr();

        // ---- Section bookkeeping -------------------------------------
        // Section indices (0 = null). Built in file order.
        struct SecDesc {
            name: &'static str,
            stype: u32,
            flags: u64,
            addr: u64,
            offset: u64,
            size: u64,
            link: u32,
            entsize: u64,
        }
        let mut secs: Vec<SecDesc> = vec![SecDesc {
            name: "",
            stype: 0,
            flags: 0,
            addr: 0,
            offset: 0,
            size: 0,
            link: 0,
            entsize: 0,
        }];

        if self.interp.is_some() {
            secs.push(SecDesc {
                name: ".interp",
                stype: 1,
                flags: shf::ALLOC,
                addr: base + off.interp_off,
                offset: off.interp_off,
                size: off.interp_len,
                link: 0,
                entsize: 0,
            });
        }
        if dynamic {
            let dynstr_idx = secs.len() as u32;
            secs.push(SecDesc {
                name: ".dynstr",
                stype: 3,
                flags: shf::ALLOC,
                addr: base + off.dynstr_off,
                offset: off.dynstr_off,
                size: dynstr_bytes.len() as u64,
                link: 0,
                entsize: 0,
            });
            let dynsym_idx = secs.len() as u32;
            secs.push(SecDesc {
                name: ".dynsym",
                stype: 11,
                flags: shf::ALLOC,
                addr: base + off.dynsym_off,
                offset: off.dynsym_off,
                size: (off.dynsym_count * SYM_SIZE) as u64,
                link: dynstr_idx,
                entsize: SYM_SIZE as u64,
            });
            secs.push(SecDesc {
                name: ".rela.plt",
                stype: 4,
                flags: shf::ALLOC,
                addr: base + off.rela_off,
                offset: off.rela_off,
                size: (self.imports.len() * RELA_SIZE) as u64,
                link: dynsym_idx,
                entsize: RELA_SIZE as u64,
            });
            secs.push(SecDesc {
                name: ".dynamic",
                stype: 6,
                flags: shf::ALLOC | shf::WRITE,
                addr: base + off.dynamic_off,
                offset: off.dynamic_off,
                size: (off.dynamic_count * DYN_SIZE) as u64,
                link: dynstr_idx,
                entsize: DYN_SIZE as u64,
            });
            if !self.imports.is_empty() {
                secs.push(SecDesc {
                    name: ".plt",
                    stype: 1,
                    flags: shf::ALLOC | shf::EXECINSTR,
                    addr: base + off.plt_off,
                    offset: off.plt_off,
                    size: off.plt_len,
                    link: 0,
                    entsize: PLT_STUB_SIZE as u64,
                });
            }
        }
        let text_idx = secs.len() as u32;
        secs.push(SecDesc {
            name: ".text",
            stype: 1,
            flags: shf::ALLOC | shf::EXECINSTR,
            addr: base + off.text_off,
            offset: off.text_off,
            size: self.text.len() as u64,
            link: 0,
            entsize: 0,
        });
        secs.push(SecDesc {
            name: ".rodata",
            stype: 1,
            flags: shf::ALLOC,
            addr: base + off.rodata_off,
            offset: off.rodata_off,
            size: self.rodata.len() as u64,
            link: 0,
            entsize: 0,
        });

        // ---- Non-alloc tail: .symtab/.strtab --------------------------
        // Build the static symbol table: null + locals + exports.
        let mut strtab = vec![0u8];
        let mut symtab = vec![0u8; SYM_SIZE]; // null symbol
        let push_sym = |strtab: &mut Vec<u8>,
                            symtab: &mut Vec<u8>,
                            name: &str,
                            binding: SymBinding,
                            value: u64,
                            size: u64,
                            shndx: u16| {
            let name_off = strtab.len() as u32;
            strtab.extend_from_slice(name.as_bytes());
            strtab.push(0);
            let mut e = [0u8; SYM_SIZE];
            e[0..4].copy_from_slice(&name_off.to_le_bytes());
            e[4] = (binding.to_nibble() << 4) | SymType::Func.to_nibble();
            e[6..8].copy_from_slice(&shndx.to_le_bytes());
            e[8..16].copy_from_slice(&value.to_le_bytes());
            e[16..24].copy_from_slice(&size.to_le_bytes());
            symtab.extend_from_slice(&e);
        };
        let text_shndx = text_idx as u16;
        for l in &self.locals {
            push_sym(
                &mut strtab,
                &mut symtab,
                &l.name,
                SymBinding::Local,
                base + off.text_off + l.text_off,
                l.size,
                text_shndx,
            );
        }
        for e in &self.exports {
            push_sym(
                &mut strtab,
                &mut symtab,
                &e.name,
                SymBinding::Global,
                base + off.text_off + e.text_off,
                e.size,
                text_shndx,
            );
        }

        let mut tail_off = off.alloc_end;
        let align8 = |v: u64| (v + 7) & !7;
        tail_off = align8(tail_off);
        let symtab_off = tail_off;
        let strtab_off = symtab_off + symtab.len() as u64;

        let symtab_idx = secs.len() as u32;
        secs.push(SecDesc {
            name: ".symtab",
            stype: 2,
            flags: 0,
            addr: 0,
            offset: symtab_off,
            size: symtab.len() as u64,
            link: symtab_idx + 1, // .strtab follows
            entsize: SYM_SIZE as u64,
        });
        secs.push(SecDesc {
            name: ".strtab",
            stype: 3,
            flags: 0,
            addr: 0,
            offset: strtab_off,
            size: strtab.len() as u64,
            link: 0,
            entsize: 0,
        });

        // .shstrtab last.
        let mut shstrtab = vec![0u8];
        let mut name_offsets = Vec::with_capacity(secs.len() + 1);
        for s in &secs {
            if s.name.is_empty() {
                name_offsets.push(0u32);
            } else {
                name_offsets.push(shstrtab.len() as u32);
                shstrtab.extend_from_slice(s.name.as_bytes());
                shstrtab.push(0);
            }
        }
        let shstr_name_off = shstrtab.len() as u32;
        shstrtab.extend_from_slice(b".shstrtab\0");
        let shstrtab_off = strtab_off + strtab.len() as u64;
        let shstrndx = secs.len() as u16;
        secs.push(SecDesc {
            name: ".shstrtab",
            stype: 3,
            flags: 0,
            addr: 0,
            offset: shstrtab_off,
            size: shstrtab.len() as u64,
            link: 0,
            entsize: 0,
        });
        name_offsets.push(shstr_name_off);

        let shoff = align8(shstrtab_off + shstrtab.len() as u64);
        let total = shoff as usize + secs.len() * SHDR_SIZE;
        let mut out = vec![0u8; total];

        // ---- ELF header ------------------------------------------------
        out[0..4].copy_from_slice(&ELF_MAGIC);
        out[4] = 2; // ELFCLASS64
        out[5] = 1; // ELFDATA2LSB
        out[6] = 1; // EV_CURRENT
        out[16..18].copy_from_slice(&self.etype.to_u16().to_le_bytes());
        out[18..20].copy_from_slice(&EM_X86_64.to_le_bytes());
        out[20..24].copy_from_slice(&1u32.to_le_bytes());
        let entry = match self.entry_off {
            Some(e) if self.etype != ElfType::Dyn || self.interp.is_some() => {
                base + off.text_off + e
            }
            Some(e) => base + off.text_off + e,
            None => 0,
        };
        out[24..32].copy_from_slice(&entry.to_le_bytes());
        out[32..40].copy_from_slice(&(EHDR_SIZE as u64).to_le_bytes());
        out[40..48].copy_from_slice(&shoff.to_le_bytes());
        out[52..54].copy_from_slice(&(EHDR_SIZE as u16).to_le_bytes());
        out[54..56].copy_from_slice(&(PHDR_SIZE as u16).to_le_bytes());
        out[56..58].copy_from_slice(&(off.phnum as u16).to_le_bytes());
        out[58..60].copy_from_slice(&(SHDR_SIZE as u16).to_le_bytes());
        out[60..62].copy_from_slice(&(secs.len() as u16).to_le_bytes());
        out[62..64].copy_from_slice(&shstrndx.to_le_bytes());

        // ---- Program headers -------------------------------------------
        let mut ph = EHDR_SIZE;
        let write_phdr = |out: &mut Vec<u8>,
                              ph: &mut usize,
                              ptype: u32,
                              flags: u32,
                              offset: u64,
                              vaddr: u64,
                              filesz: u64,
                              memsz: u64,
                              align: u64| {
            let p = &mut out[*ph..*ph + PHDR_SIZE];
            p[0..4].copy_from_slice(&ptype.to_le_bytes());
            p[4..8].copy_from_slice(&flags.to_le_bytes());
            p[8..16].copy_from_slice(&offset.to_le_bytes());
            p[16..24].copy_from_slice(&vaddr.to_le_bytes());
            p[24..32].copy_from_slice(&vaddr.to_le_bytes());
            p[32..40].copy_from_slice(&filesz.to_le_bytes());
            p[40..48].copy_from_slice(&memsz.to_le_bytes());
            p[48..56].copy_from_slice(&align.to_le_bytes());
            *ph += PHDR_SIZE;
        };
        write_phdr(
            &mut out,
            &mut ph,
            pt::LOAD,
            pf::R | pf::W | pf::X,
            0,
            base,
            off.alloc_end,
            off.alloc_end,
            0x1000,
        );
        if self.interp.is_some() {
            write_phdr(
                &mut out,
                &mut ph,
                pt::INTERP,
                pf::R,
                off.interp_off,
                base + off.interp_off,
                off.interp_len,
                off.interp_len,
                1,
            );
        }
        if dynamic {
            write_phdr(
                &mut out,
                &mut ph,
                pt::DYNAMIC,
                pf::R | pf::W,
                off.dynamic_off,
                base + off.dynamic_off,
                (off.dynamic_count * DYN_SIZE) as u64,
                (off.dynamic_count * DYN_SIZE) as u64,
                8,
            );
        }

        // ---- Allocated contents ----------------------------------------
        if let Some(interp) = &self.interp {
            let o = off.interp_off as usize;
            out[o..o + interp.len()].copy_from_slice(interp.as_bytes());
            // NUL already zero.
        }
        if dynamic {
            let o = off.dynstr_off as usize;
            out[o..o + dynstr_bytes.len()].copy_from_slice(&dynstr_bytes);

            // .dynsym: null + imports (UND) + exports.
            let mut o = off.dynsym_off as usize + SYM_SIZE;
            for name in &self.imports {
                let e = &mut out[o..o + SYM_SIZE];
                e[0..4].copy_from_slice(&str_off(name).to_le_bytes());
                e[4] = (SymBinding::Global.to_nibble() << 4)
                    | SymType::Func.to_nibble();
                e[6..8].copy_from_slice(&SHN_UNDEF.to_le_bytes());
                o += SYM_SIZE;
            }
            for exp in &self.exports {
                let e = &mut out[o..o + SYM_SIZE];
                e[0..4].copy_from_slice(&str_off(&exp.name).to_le_bytes());
                e[4] = (SymBinding::Global.to_nibble() << 4)
                    | SymType::Func.to_nibble();
                e[6..8].copy_from_slice(&(text_idx as u16).to_le_bytes());
                let addr = base + off.text_off + exp.text_off;
                e[8..16].copy_from_slice(&addr.to_le_bytes());
                e[16..24].copy_from_slice(&exp.size.to_le_bytes());
                o += SYM_SIZE;
            }

            // .rela.plt: one JUMP_SLOT per import, in order.
            let mut o = off.rela_off as usize;
            for (i, _) in self.imports.iter().enumerate() {
                let stub_addr =
                    base + off.plt_off + (i * PLT_STUB_SIZE) as u64;
                let e = &mut out[o..o + RELA_SIZE];
                e[0..8].copy_from_slice(&stub_addr.to_le_bytes());
                let info =
                    ((i as u64 + 1) << 32) | u64::from(R_X86_64_JUMP_SLOT);
                e[8..16].copy_from_slice(&info.to_le_bytes());
                o += RELA_SIZE;
            }

            // .dynamic.
            let mut o = off.dynamic_off as usize;
            let push_dyn = |out: &mut Vec<u8>, o: &mut usize, tag: i64, val: u64| {
                out[*o..*o + 8].copy_from_slice(&(tag as u64).to_le_bytes());
                out[*o + 8..*o + 16].copy_from_slice(&val.to_le_bytes());
                *o += DYN_SIZE;
            };
            for lib in &self.needed {
                push_dyn(&mut out, &mut o, dt::NEEDED, u64::from(str_off(lib)));
            }
            if let Some(soname) = &self.soname {
                push_dyn(&mut out, &mut o, dt::SONAME, u64::from(str_off(soname)));
            }
            push_dyn(&mut out, &mut o, dt::NULL, 0);

            // .plt stubs: `jmp [rip+0]; int3 ...` placeholders.
            let mut o = off.plt_off as usize;
            for _ in &self.imports {
                let stub = &mut out[o..o + PLT_STUB_SIZE];
                stub[0] = 0xff;
                stub[1] = 0x25;
                // disp32 zero; rest int3.
                for b in stub.iter_mut().skip(6) {
                    *b = 0xcc;
                }
                o += PLT_STUB_SIZE;
            }
        }

        let o = off.text_off as usize;
        out[o..o + self.text.len()].copy_from_slice(&self.text);
        let o = off.rodata_off as usize;
        out[o..o + self.rodata.len()].copy_from_slice(&self.rodata);

        // ---- Non-alloc tail ---------------------------------------------
        let o = symtab_off as usize;
        out[o..o + symtab.len()].copy_from_slice(&symtab);
        let o = strtab_off as usize;
        out[o..o + strtab.len()].copy_from_slice(&strtab);
        let o = shstrtab_off as usize;
        out[o..o + shstrtab.len()].copy_from_slice(&shstrtab);

        // ---- Section header table ----------------------------------------
        for (i, s) in secs.iter().enumerate() {
            let o = shoff as usize + i * SHDR_SIZE;
            let e = &mut out[o..o + SHDR_SIZE];
            e[0..4].copy_from_slice(&name_offsets[i].to_le_bytes());
            e[4..8].copy_from_slice(&s.stype.to_le_bytes());
            e[8..16].copy_from_slice(&s.flags.to_le_bytes());
            e[16..24].copy_from_slice(&s.addr.to_le_bytes());
            e[24..32].copy_from_slice(&s.offset.to_le_bytes());
            e[32..40].copy_from_slice(&s.size.to_le_bytes());
            e[40..44].copy_from_slice(&s.link.to_le_bytes());
            e[56..64].copy_from_slice(&s.entsize.to_le_bytes());
        }

        Ok(out)
    }
}

#[derive(Debug, Clone, Copy)]
struct Offsets {
    phnum: usize,
    interp_off: u64,
    interp_len: u64,
    dynstr_off: u64,
    dynsym_off: u64,
    dynsym_count: usize,
    rela_off: u64,
    dynamic_off: u64,
    dynamic_count: usize,
    plt_off: u64,
    plt_len: u64,
    text_off: u64,
    rodata_off: u64,
    alloc_end: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{BinaryClass, ElfFile};

    /// Builds a small dynamic executable: imports printf/exit from libc,
    /// defines `main` and a local helper, stores a path string in rodata.
    fn sample_exec() -> Vec<u8> {
        let mut b = ElfBuilder::executable();
        b.needed("libc.so.6");
        let printf = b.declare_import("printf");
        let exit = b.declare_import("exit");
        let main_id = b.declare_export("main");
        let text = vec![0x90u8; 64]; // NOPs; codegen is tested elsewhere.
        let rodata = b"/proc/cpuinfo\0".to_vec();
        let layout = b.layout(text.len() as u64, rodata.len() as u64);
        assert_eq!(layout.plt_count, 2);
        assert!(layout.plt_stub_addr(exit) > layout.plt_stub_addr(printf));
        b.set_text(text);
        b.set_rodata(rodata);
        b.bind_export(main_id, 0, 32);
        b.local_symbol("helper", 32, 32);
        b.set_entry(0);
        b.build().expect("build")
    }

    #[test]
    fn build_then_parse_roundtrip() {
        let bytes = sample_exec();
        let elf = ElfFile::parse(&bytes).expect("parse");
        assert_eq!(elf.header.etype, ElfType::Exec);
        assert_eq!(elf.classify(), BinaryClass::DynExec);
        assert_eq!(elf.needed_libraries().unwrap(), vec!["libc.so.6"]);

        let text = elf.section_by_name(".text").expect(".text");
        assert_eq!(text.size, 64);
        assert_eq!(elf.section_data(text).unwrap(), &[0x90u8; 64][..]);

        let plt = elf.plt_map().unwrap();
        assert_eq!(plt.len(), 2);
        assert_eq!(plt[0].1, "printf");
        assert_eq!(plt[1].1, "exit");

        let syms = elf.symtab().unwrap();
        let main = syms.iter().find(|s| s.name == "main").expect("main");
        assert_eq!(main.value, text.addr);
        assert!(syms.iter().any(|s| s.name == "helper"));
    }

    #[test]
    fn layout_addresses_match_built_file() {
        let mut b = ElfBuilder::executable();
        b.needed("libc.so.6");
        b.declare_import("write");
        let f = b.declare_export("f");
        let layout = b.layout(16, 8);
        b.set_text(vec![0xc3; 16]);
        b.set_rodata(vec![0; 8]);
        b.bind_export(f, 0, 16);
        b.set_entry(0);
        let bytes = b.build().unwrap();
        let elf = ElfFile::parse(&bytes).unwrap();
        assert_eq!(
            elf.section_by_name(".text").unwrap().addr,
            layout.text_addr
        );
        assert_eq!(
            elf.section_by_name(".rodata").unwrap().addr,
            layout.rodata_addr
        );
        assert_eq!(elf.section_by_name(".plt").unwrap().addr, layout.plt_addr);
        assert_eq!(elf.header.entry, layout.text_addr);
    }

    #[test]
    fn shared_library_layout() {
        let mut b = ElfBuilder::shared_library("libfoo.so.1");
        let f = b.declare_export("foo_fn");
        let _ = b.layout(4, 0);
        b.set_text(vec![0xc3; 4]);
        b.bind_export(f, 0, 4);
        let bytes = b.build().unwrap();
        let elf = ElfFile::parse(&bytes).unwrap();
        assert_eq!(elf.classify(), BinaryClass::SharedLib);
        assert_eq!(elf.soname().unwrap().as_deref(), Some("libfoo.so.1"));
        let dynsyms = elf.dynsym().unwrap();
        let foo = dynsyms.iter().find(|s| s.name == "foo_fn").expect("foo_fn");
        assert!(foo.is_defined_func());
        assert_eq!(foo.value, elf.section_by_name(".text").unwrap().addr);
    }

    #[test]
    fn static_executable_has_no_dynamic_sections() {
        let mut b = ElfBuilder::static_executable();
        let _ = b.layout(4, 0);
        b.set_text(vec![0xc3; 4]);
        b.set_entry(0);
        let bytes = b.build().unwrap();
        let elf = ElfFile::parse(&bytes).unwrap();
        assert_eq!(elf.classify(), BinaryClass::StaticExec);
        assert!(elf.section_by_name(".dynamic").is_none());
        assert!(elf.needed_libraries().unwrap().is_empty());
        assert!(elf.plt_map().unwrap().is_empty());
    }

    #[test]
    fn unbound_export_is_rejected() {
        let mut b = ElfBuilder::shared_library("x.so");
        b.declare_export("f");
        let _ = b.layout(4, 0);
        b.set_text(vec![0xc3; 4]);
        assert!(b.build().is_err());
    }

    #[test]
    fn duplicate_imports_share_a_slot() {
        let mut b = ElfBuilder::executable();
        let a = b.declare_import("write");
        let c = b.declare_import("write");
        assert_eq!(a, c);
        assert_eq!(b.declare_import("read"), 1);
    }

    #[test]
    fn rodata_strings_are_extractable() {
        let bytes = sample_exec();
        let elf = ElfFile::parse(&bytes).unwrap();
        let ro = elf.section_by_name(".rodata").unwrap().clone();
        let strings = elf.strings_in(&ro, 4).unwrap();
        assert_eq!(strings, vec!["/proc/cpuinfo".to_owned()]);
    }
}
