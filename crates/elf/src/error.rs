//! Error type for ELF parsing.

use std::fmt;

/// An error encountered while parsing an ELF object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElfError {
    /// The buffer is too small to contain the referenced structure.
    Truncated {
        /// What was being read.
        what: &'static str,
        /// Offset at which the read was attempted.
        offset: usize,
        /// Bytes needed.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// The file does not start with the ELF magic.
    BadMagic,
    /// The file is not 64-bit little-endian.
    UnsupportedClass,
    /// The file is not an x86-64 object.
    UnsupportedMachine(u16),
    /// A string-table reference points outside the table or is unterminated.
    BadString {
        /// Offset into the string table.
        offset: usize,
    },
    /// A section header index is out of range.
    BadSectionIndex(usize),
    /// A structural invariant is violated (described by the message).
    Malformed(&'static str),
}

impl fmt::Display for ElfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElfError::Truncated { what, offset, need, have } => write!(
                f,
                "truncated {what} at offset {offset}: need {need} bytes, have {have}"
            ),
            ElfError::BadMagic => write!(f, "not an ELF file (bad magic)"),
            ElfError::UnsupportedClass => {
                write!(f, "not a 64-bit little-endian ELF file")
            }
            ElfError::UnsupportedMachine(m) => {
                write!(f, "unsupported machine type {m} (want x86-64)")
            }
            ElfError::BadString { offset } => {
                write!(f, "bad string-table reference at offset {offset}")
            }
            ElfError::BadSectionIndex(i) => {
                write!(f, "section index {i} out of range")
            }
            ElfError::Malformed(msg) => write!(f, "malformed ELF: {msg}"),
        }
    }
}

impl std::error::Error for ElfError {}

/// Result alias for ELF operations.
pub type Result<T> = std::result::Result<T, ElfError>;
