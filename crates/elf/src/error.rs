//! Error type for ELF parsing.

use std::fmt;

/// An error encountered while parsing an ELF object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElfError {
    /// The buffer is too small to contain the referenced structure.
    Truncated {
        /// What was being read.
        what: &'static str,
        /// Offset at which the read was attempted.
        offset: usize,
        /// Bytes needed.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// The file does not start with the ELF magic.
    BadMagic,
    /// The file is not 64-bit little-endian.
    UnsupportedClass,
    /// The file is not an x86-64 object.
    UnsupportedMachine(u16),
    /// A string-table reference points outside the table or is unterminated.
    BadString {
        /// Offset into the string table.
        offset: usize,
    },
    /// A section header index is out of range.
    BadSectionIndex(usize),
    /// A structural invariant is violated (described by the message).
    Malformed(&'static str),
    /// A resource guard tripped: the object is structurally valid but asks
    /// for more work than the analysis budget allows (pathological inputs
    /// must degrade into a classified skip, not an unbounded computation).
    ResourceLimit {
        /// Which budget was exceeded.
        what: &'static str,
        /// The configured limit.
        limit: u64,
        /// The observed demand.
        actual: u64,
    },
}

/// Coarse classification of [`ElfError`] values — the quarantine taxonomy
/// the pipeline aggregates over (every skipped binary is counted under
/// exactly one kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ErrorKind {
    /// A read ran past the end of the buffer ([`ElfError::Truncated`]).
    Truncated,
    /// Not an ELF file at all ([`ElfError::BadMagic`]).
    BadMagic,
    /// ELF, but not 64-bit little-endian x86-64
    /// ([`ElfError::UnsupportedClass`] / [`ElfError::UnsupportedMachine`]).
    Unsupported,
    /// A string-table reference is out of range or unterminated
    /// ([`ElfError::BadString`]).
    BadString,
    /// A section header index is out of range
    /// ([`ElfError::BadSectionIndex`]).
    BadSectionIndex,
    /// Some other structural invariant is violated
    /// ([`ElfError::Malformed`]).
    Malformed,
    /// An analysis resource budget was exceeded
    /// ([`ElfError::ResourceLimit`]).
    ResourceLimit,
}

impl ErrorKind {
    /// Every kind, in display order (for stable aggregation tables).
    pub const ALL: [ErrorKind; 7] = [
        ErrorKind::Truncated,
        ErrorKind::BadMagic,
        ErrorKind::Unsupported,
        ErrorKind::BadString,
        ErrorKind::BadSectionIndex,
        ErrorKind::Malformed,
        ErrorKind::ResourceLimit,
    ];

    /// A short stable label (used as a table/CSV column key).
    pub fn label(self) -> &'static str {
        match self {
            ErrorKind::Truncated => "truncated",
            ErrorKind::BadMagic => "bad-magic",
            ErrorKind::Unsupported => "unsupported",
            ErrorKind::BadString => "bad-string",
            ErrorKind::BadSectionIndex => "bad-section-index",
            ErrorKind::Malformed => "malformed",
            ErrorKind::ResourceLimit => "resource-limit",
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl ElfError {
    /// The coarse [`ErrorKind`] this error falls under.
    pub fn kind(&self) -> ErrorKind {
        match self {
            ElfError::Truncated { .. } => ErrorKind::Truncated,
            ElfError::BadMagic => ErrorKind::BadMagic,
            ElfError::UnsupportedClass | ElfError::UnsupportedMachine(_) => {
                ErrorKind::Unsupported
            }
            ElfError::BadString { .. } => ErrorKind::BadString,
            ElfError::BadSectionIndex(_) => ErrorKind::BadSectionIndex,
            ElfError::Malformed(_) => ErrorKind::Malformed,
            ElfError::ResourceLimit { .. } => ErrorKind::ResourceLimit,
        }
    }
}

impl fmt::Display for ElfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElfError::Truncated { what, offset, need, have } => write!(
                f,
                "truncated {what} at offset {offset}: need {need} bytes, have {have}"
            ),
            ElfError::BadMagic => write!(f, "not an ELF file (bad magic)"),
            ElfError::UnsupportedClass => {
                write!(f, "not a 64-bit little-endian ELF file")
            }
            ElfError::UnsupportedMachine(m) => {
                write!(f, "unsupported machine type {m} (want x86-64)")
            }
            ElfError::BadString { offset } => {
                write!(f, "bad string-table reference at offset {offset}")
            }
            ElfError::BadSectionIndex(i) => {
                write!(f, "section index {i} out of range")
            }
            ElfError::Malformed(msg) => write!(f, "malformed ELF: {msg}"),
            ElfError::ResourceLimit { what, limit, actual } => write!(
                f,
                "resource limit exceeded: {what} {actual} over budget {limit}"
            ),
        }
    }
}

impl std::error::Error for ElfError {}

/// Result alias for ELF operations.
pub type Result<T> = std::result::Result<T, ElfError>;
