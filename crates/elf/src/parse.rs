//! ELF64 parser.
//!
//! A bounds-checked reader for x86-64 little-endian ELF objects, covering
//! the structures the study's analyzer needs: headers, sections, program
//! headers, symbol tables, string tables, `.dynamic`, and `.rela.plt`.

use crate::{
    error::{ElfError, Result},
    types::{
        dt, pt, ElfType, SectionType, SymBinding, SymType, DYN_SIZE, EHDR_SIZE,
        ELF_MAGIC, EM_X86_64, PHDR_SIZE, RELA_SIZE, SHDR_SIZE, SYM_SIZE,
    },
};

/// Parsed ELF file header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Object type.
    pub etype: ElfType,
    /// Machine (always x86-64 after a successful parse).
    pub machine: u16,
    /// Entry-point virtual address (0 when none).
    pub entry: u64,
    /// Program header table offset.
    pub phoff: u64,
    /// Number of program headers.
    pub phnum: u16,
    /// Section header table offset.
    pub shoff: u64,
    /// Number of section headers.
    pub shnum: u16,
    /// Index of the section-name string table.
    pub shstrndx: u16,
}

/// Parsed section header, with its name resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section name (from `.shstrtab`).
    pub name: String,
    /// Section type.
    pub stype: SectionType,
    /// `sh_flags`.
    pub flags: u64,
    /// Virtual address.
    pub addr: u64,
    /// File offset of the section contents.
    pub offset: u64,
    /// Size in bytes.
    pub size: u64,
    /// `sh_link` (e.g. the string table of a symbol table).
    pub link: u32,
    /// Entry size for table sections.
    pub entsize: u64,
}

/// Parsed program header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramHeader {
    /// Segment type (`p_type`).
    pub ptype: u32,
    /// Segment flags.
    pub flags: u32,
    /// File offset.
    pub offset: u64,
    /// Virtual address.
    pub vaddr: u64,
    /// Size in the file.
    pub filesz: u64,
    /// Size in memory.
    pub memsz: u64,
}

/// Parsed symbol-table entry with its name resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name (may be empty).
    pub name: String,
    /// Value (virtual address for defined function symbols).
    pub value: u64,
    /// Size in bytes.
    pub size: u64,
    /// Binding (local/global/weak).
    pub binding: SymBinding,
    /// Type (func/object/...).
    pub stype: SymType,
    /// Defining section index (`SHN_UNDEF` for imports).
    pub shndx: u16,
}

impl Symbol {
    /// True when the symbol is an import (undefined reference).
    pub fn is_undefined(&self) -> bool {
        self.shndx == crate::types::SHN_UNDEF
    }

    /// True when the symbol is a defined function.
    pub fn is_defined_func(&self) -> bool {
        !self.is_undefined() && self.stype == SymType::Func
    }
}

/// One RELA relocation entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rela {
    /// Relocated location.
    pub offset: u64,
    /// Symbol-table index.
    pub sym: u32,
    /// Relocation type.
    pub rtype: u32,
    /// Addend.
    pub addend: i64,
}

/// How a binary participates in the system, per the study's Figure 1
/// classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryClass {
    /// Statically linked executable.
    StaticExec,
    /// Dynamically linked executable (fixed-address or PIE).
    DynExec,
    /// Linkable shared library.
    SharedLib,
    /// Relocatable object or anything else.
    Other,
}

/// A parsed ELF object borrowing its input buffer.
#[derive(Debug)]
pub struct ElfFile<'a> {
    data: &'a [u8],
    /// The parsed file header.
    pub header: Header,
    /// All section headers, with names resolved.
    pub sections: Vec<Section>,
    /// All program headers.
    pub program_headers: Vec<ProgramHeader>,
}

fn get<'d>(data: &'d [u8], offset: usize, need: usize, what: &'static str) -> Result<&'d [u8]> {
    data.get(offset..offset + need).ok_or(ElfError::Truncated {
        what,
        offset,
        need,
        have: data.len().saturating_sub(offset),
    })
}

fn u16le(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}
fn u32le(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}
fn u64le(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

fn read_cstr(table: &[u8], offset: usize) -> Result<String> {
    let rest = table.get(offset..).ok_or(ElfError::BadString { offset })?;
    let end = rest
        .iter()
        .position(|&b| b == 0)
        .ok_or(ElfError::BadString { offset })?;
    Ok(String::from_utf8_lossy(&rest[..end]).into_owned())
}

impl<'a> ElfFile<'a> {
    /// Parses an x86-64 ELF64 object from `data`.
    pub fn parse(data: &'a [u8]) -> Result<Self> {
        let ehdr = get(data, 0, EHDR_SIZE, "ELF header")?;
        if ehdr[0..4] != ELF_MAGIC {
            return Err(ElfError::BadMagic);
        }
        // EI_CLASS == ELFCLASS64, EI_DATA == ELFDATA2LSB.
        if ehdr[4] != 2 || ehdr[5] != 1 {
            return Err(ElfError::UnsupportedClass);
        }
        let machine = u16le(&ehdr[18..20]);
        if machine != EM_X86_64 {
            return Err(ElfError::UnsupportedMachine(machine));
        }
        let header = Header {
            etype: ElfType::from_u16(u16le(&ehdr[16..18])),
            machine,
            entry: u64le(&ehdr[24..32]),
            phoff: u64le(&ehdr[32..40]),
            shoff: u64le(&ehdr[40..48]),
            phnum: u16le(&ehdr[56..58]),
            shnum: u16le(&ehdr[60..62]),
            shstrndx: u16le(&ehdr[62..64]),
        };

        let mut program_headers = Vec::with_capacity(header.phnum as usize);
        for i in 0..header.phnum as usize {
            let off = header.phoff as usize + i * PHDR_SIZE;
            let p = get(data, off, PHDR_SIZE, "program header")?;
            program_headers.push(ProgramHeader {
                ptype: u32le(&p[0..4]),
                flags: u32le(&p[4..8]),
                offset: u64le(&p[8..16]),
                vaddr: u64le(&p[16..24]),
                filesz: u64le(&p[32..40]),
                memsz: u64le(&p[40..48]),
            });
        }

        // Raw section headers first (names need .shstrtab).
        struct RawShdr {
            name_off: u32,
            stype: u32,
            flags: u64,
            addr: u64,
            offset: u64,
            size: u64,
            link: u32,
            entsize: u64,
        }
        let mut raw = Vec::with_capacity(header.shnum as usize);
        for i in 0..header.shnum as usize {
            let off = header.shoff as usize + i * SHDR_SIZE;
            let s = get(data, off, SHDR_SIZE, "section header")?;
            raw.push(RawShdr {
                name_off: u32le(&s[0..4]),
                stype: u32le(&s[4..8]),
                flags: u64le(&s[8..16]),
                addr: u64le(&s[16..24]),
                offset: u64le(&s[24..32]),
                size: u64le(&s[32..40]),
                link: u32le(&s[40..44]),
                entsize: u64le(&s[56..64]),
            });
        }

        let shstr = if header.shnum == 0 {
            &[][..]
        } else {
            let idx = header.shstrndx as usize;
            let sh = raw.get(idx).ok_or(ElfError::BadSectionIndex(idx))?;
            get(data, sh.offset as usize, sh.size as usize, "shstrtab")?
        };

        let mut sections = Vec::with_capacity(raw.len());
        for sh in &raw {
            let name = if shstr.is_empty() {
                String::new()
            } else {
                read_cstr(shstr, sh.name_off as usize)?
            };
            sections.push(Section {
                name,
                stype: SectionType::from_u32(sh.stype),
                flags: sh.flags,
                addr: sh.addr,
                offset: sh.offset,
                size: sh.size,
                link: sh.link,
                entsize: sh.entsize,
            });
        }

        Ok(Self { data, header, sections, program_headers })
    }

    /// Finds a section by exact name.
    pub fn section_by_name(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Returns a section's file contents.
    pub fn section_data(&self, section: &Section) -> Result<&'a [u8]> {
        if section.stype == SectionType::Nobits {
            return Ok(&[]);
        }
        get(self.data, section.offset as usize, section.size as usize, "section data")
    }

    /// Parses a symbol table section (`.symtab` or `.dynsym`), resolving
    /// names through its linked string table.
    pub fn symbols(&self, section: &Section) -> Result<Vec<Symbol>> {
        if !matches!(section.stype, SectionType::Symtab | SectionType::Dynsym) {
            return Err(ElfError::Malformed("not a symbol table section"));
        }
        let strtab_idx = section.link as usize;
        let strtab_sec = self
            .sections
            .get(strtab_idx)
            .ok_or(ElfError::BadSectionIndex(strtab_idx))?;
        let strtab = self.section_data(strtab_sec)?;
        let bytes = self.section_data(section)?;
        if section.entsize as usize != SYM_SIZE && section.entsize != 0 {
            return Err(ElfError::Malformed("unexpected symbol entry size"));
        }
        let count = bytes.len() / SYM_SIZE;
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let e = &bytes[i * SYM_SIZE..(i + 1) * SYM_SIZE];
            let name_off = u32le(&e[0..4]) as usize;
            let info = e[4];
            out.push(Symbol {
                name: read_cstr(strtab, name_off)?,
                binding: SymBinding::from_nibble(info >> 4),
                stype: SymType::from_nibble(info & 0xf),
                shndx: u16le(&e[6..8]),
                value: u64le(&e[8..16]),
                size: u64le(&e[16..24]),
            });
        }
        Ok(out)
    }

    /// All symbols from `.symtab` (empty when stripped).
    pub fn symtab(&self) -> Result<Vec<Symbol>> {
        match self.section_by_name(".symtab") {
            Some(s) => self.symbols(&s.clone()),
            None => Ok(Vec::new()),
        }
    }

    /// All symbols from `.dynsym` (empty when not dynamic).
    pub fn dynsym(&self) -> Result<Vec<Symbol>> {
        match self.section_by_name(".dynsym") {
            Some(s) => self.symbols(&s.clone()),
            None => Ok(Vec::new()),
        }
    }

    /// Raw `.dynamic` entries as `(tag, value)` pairs, stopping at `DT_NULL`.
    pub fn dynamic_entries(&self) -> Result<Vec<(i64, u64)>> {
        let Some(sec) = self.section_by_name(".dynamic") else {
            return Ok(Vec::new());
        };
        let bytes = self.section_data(&sec.clone())?;
        let mut out = Vec::new();
        for chunk in bytes.chunks_exact(DYN_SIZE) {
            let tag = u64le(&chunk[0..8]) as i64;
            let val = u64le(&chunk[8..16]);
            if tag == dt::NULL {
                break;
            }
            out.push((tag, val));
        }
        Ok(out)
    }

    /// Names of shared libraries this object depends on (`DT_NEEDED`).
    pub fn needed_libraries(&self) -> Result<Vec<String>> {
        let entries = self.dynamic_entries()?;
        if entries.is_empty() {
            return Ok(Vec::new());
        }
        let strtab_sec = self
            .section_by_name(".dynstr")
            .ok_or(ElfError::Malformed("dynamic object without .dynstr"))?
            .clone();
        let strtab = self.section_data(&strtab_sec)?;
        entries
            .iter()
            .filter(|&&(tag, _)| tag == dt::NEEDED)
            .map(|&(_, off)| read_cstr(strtab, off as usize))
            .collect()
    }

    /// The shared-object name (`DT_SONAME`), if present.
    pub fn soname(&self) -> Result<Option<String>> {
        let entries = self.dynamic_entries()?;
        let Some(&(_, off)) = entries.iter().find(|&&(tag, _)| tag == dt::SONAME)
        else {
            return Ok(None);
        };
        let strtab_sec = self
            .section_by_name(".dynstr")
            .ok_or(ElfError::Malformed("dynamic object without .dynstr"))?
            .clone();
        let strtab = self.section_data(&strtab_sec)?;
        read_cstr(strtab, off as usize).map(Some)
    }

    /// Parses a RELA section.
    pub fn relas(&self, section: &Section) -> Result<Vec<Rela>> {
        if section.stype != SectionType::Rela {
            return Err(ElfError::Malformed("not a RELA section"));
        }
        let bytes = self.section_data(section)?;
        Ok(bytes
            .chunks_exact(RELA_SIZE)
            .map(|c| {
                let info = u64le(&c[8..16]);
                Rela {
                    offset: u64le(&c[0..8]),
                    sym: (info >> 32) as u32,
                    rtype: info as u32,
                    addend: u64le(&c[16..24]) as i64,
                }
            })
            .collect())
    }

    /// Maps PLT stub virtual addresses to imported symbol names.
    ///
    /// Convention (shared with the builder, and matching the usual x86-64
    /// toolchain layout): stub *i* of `.plt` corresponds to entry *i* of
    /// `.rela.plt`, whose symbol index points into `.dynsym`. Stubs are
    /// [`crate::build::PLT_STUB_SIZE`] bytes each.
    pub fn plt_map(&self) -> Result<Vec<(u64, String)>> {
        let Some(plt) = self.section_by_name(".plt").cloned() else {
            return Ok(Vec::new());
        };
        let Some(rela_sec) = self.section_by_name(".rela.plt").cloned() else {
            return Ok(Vec::new());
        };
        let relas = self.relas(&rela_sec)?;
        let dynsyms = self.dynsym()?;
        let stub = crate::build::PLT_STUB_SIZE as u64;
        let mut out = Vec::with_capacity(relas.len());
        for (i, rela) in relas.iter().enumerate() {
            let addr = plt.addr + stub * i as u64;
            if addr + stub > plt.addr + plt.size {
                return Err(ElfError::Malformed("more PLT relocations than stubs"));
            }
            let name = dynsyms
                .get(rela.sym as usize)
                .map(|s| s.name.clone())
                .ok_or(ElfError::Malformed("PLT relocation with bad symbol index"))?;
            out.push((addr, name));
        }
        Ok(out)
    }

    /// Extracts printable NUL-terminated strings of at least `min_len` bytes
    /// from a section (the analyzer runs this over `.rodata`).
    pub fn strings_in(&self, section: &Section, min_len: usize) -> Result<Vec<String>> {
        let bytes = self.section_data(section)?;
        let mut out = Vec::new();
        let mut start = 0usize;
        for (i, &b) in bytes.iter().enumerate() {
            if b == 0 {
                if i - start >= min_len {
                    if let Ok(s) = std::str::from_utf8(&bytes[start..i]) {
                        if s.chars().all(|c| c.is_ascii_graphic() || c == ' ') {
                            out.push(s.to_owned());
                        }
                    }
                }
                start = i + 1;
            } else if !(0x20..0x7f).contains(&b) {
                // Non-printable byte: reset the run.
                start = i + 1;
            }
        }
        Ok(out)
    }

    /// Classifies the binary per the study's Figure 1 taxonomy.
    pub fn classify(&self) -> BinaryClass {
        let has_interp = self
            .program_headers
            .iter()
            .any(|p| p.ptype == pt::INTERP);
        let has_needed = self
            .dynamic_entries()
            .map(|d| d.iter().any(|&(tag, _)| tag == dt::NEEDED))
            .unwrap_or(false);
        match self.header.etype {
            ElfType::Exec => {
                if has_interp || has_needed {
                    BinaryClass::DynExec
                } else {
                    BinaryClass::StaticExec
                }
            }
            ElfType::Dyn => {
                if has_interp {
                    BinaryClass::DynExec
                } else {
                    BinaryClass::SharedLib
                }
            }
            _ => BinaryClass::Other,
        }
    }

    /// The underlying file bytes.
    pub fn bytes(&self) -> &'a [u8] {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_magic() {
        let err = ElfFile::parse(b"not an elf but long enough to hold a header plus padding padding padding")
            .expect_err("must fail");
        assert_eq!(err, ElfError::BadMagic);
    }

    #[test]
    fn rejects_short_input() {
        let err = ElfFile::parse(&[0x7f, b'E', b'L', b'F']).expect_err("must fail");
        assert!(matches!(err, ElfError::Truncated { .. }));
    }

    #[test]
    fn rejects_wrong_class() {
        let mut bytes = vec![0u8; 64];
        bytes[0..4].copy_from_slice(&ELF_MAGIC);
        bytes[4] = 1; // 32-bit
        bytes[5] = 1;
        let err = ElfFile::parse(&bytes).expect_err("must fail");
        assert_eq!(err, ElfError::UnsupportedClass);
    }

    #[test]
    fn rejects_wrong_machine() {
        let mut bytes = vec![0u8; 64];
        bytes[0..4].copy_from_slice(&ELF_MAGIC);
        bytes[4] = 2;
        bytes[5] = 1;
        bytes[18] = 3; // EM_386
        let err = ElfFile::parse(&bytes).expect_err("must fail");
        assert_eq!(err, ElfError::UnsupportedMachine(3));
    }
}
