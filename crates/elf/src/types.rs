//! ELF64 on-disk structures and constants.
//!
//! Only the subset needed by the study is modelled: x86-64 little-endian
//! ELF64 objects with section headers, program headers, symbol tables,
//! string tables, `.dynamic`, and RELA relocations.

/// ELF magic bytes.
pub const ELF_MAGIC: [u8; 4] = [0x7f, b'E', b'L', b'F'];

/// Size of the ELF64 file header.
pub const EHDR_SIZE: usize = 64;
/// Size of one ELF64 program header.
pub const PHDR_SIZE: usize = 56;
/// Size of one ELF64 section header.
pub const SHDR_SIZE: usize = 64;
/// Size of one ELF64 symbol-table entry.
pub const SYM_SIZE: usize = 24;
/// Size of one ELF64 RELA relocation entry.
pub const RELA_SIZE: usize = 24;
/// Size of one `.dynamic` entry.
pub const DYN_SIZE: usize = 16;

/// Object file type (`e_type`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElfType {
    /// Relocatable object.
    Rel,
    /// Executable with fixed load addresses (statically linked or non-PIE).
    Exec,
    /// Shared object: either a library or a PIE executable.
    Dyn,
    /// Core dump.
    Core,
    /// Anything else.
    Other(u16),
}

impl ElfType {
    /// Decodes `e_type`.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => ElfType::Rel,
            2 => ElfType::Exec,
            3 => ElfType::Dyn,
            4 => ElfType::Core,
            other => ElfType::Other(other),
        }
    }

    /// Encodes to `e_type`.
    pub fn to_u16(self) -> u16 {
        match self {
            ElfType::Rel => 1,
            ElfType::Exec => 2,
            ElfType::Dyn => 3,
            ElfType::Core => 4,
            ElfType::Other(v) => v,
        }
    }
}

/// `e_machine` value for x86-64.
pub const EM_X86_64: u16 = 62;

/// Section header types (`sh_type`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum SectionType {
    Null,
    Progbits,
    Symtab,
    Strtab,
    Rela,
    Hash,
    Dynamic,
    Note,
    Nobits,
    Dynsym,
    Other(u32),
}

impl SectionType {
    /// Decodes `sh_type`.
    pub fn from_u32(v: u32) -> Self {
        match v {
            0 => SectionType::Null,
            1 => SectionType::Progbits,
            2 => SectionType::Symtab,
            3 => SectionType::Strtab,
            4 => SectionType::Rela,
            5 => SectionType::Hash,
            6 => SectionType::Dynamic,
            7 => SectionType::Note,
            8 => SectionType::Nobits,
            11 => SectionType::Dynsym,
            other => SectionType::Other(other),
        }
    }

    /// Encodes to `sh_type`.
    pub fn to_u32(self) -> u32 {
        match self {
            SectionType::Null => 0,
            SectionType::Progbits => 1,
            SectionType::Symtab => 2,
            SectionType::Strtab => 3,
            SectionType::Rela => 4,
            SectionType::Hash => 5,
            SectionType::Dynamic => 6,
            SectionType::Note => 7,
            SectionType::Nobits => 8,
            SectionType::Dynsym => 11,
            SectionType::Other(v) => v,
        }
    }
}

/// Section flags.
pub mod shf {
    /// Writable at runtime.
    pub const WRITE: u64 = 0x1;
    /// Occupies memory at runtime.
    pub const ALLOC: u64 = 0x2;
    /// Contains executable instructions.
    pub const EXECINSTR: u64 = 0x4;
}

/// Program header types (`p_type`).
pub mod pt {
    /// Loadable segment.
    pub const LOAD: u32 = 1;
    /// Dynamic linking info.
    pub const DYNAMIC: u32 = 2;
    /// Interpreter path.
    pub const INTERP: u32 = 3;
}

/// Program header flags.
pub mod pf {
    /// Executable.
    pub const X: u32 = 1;
    /// Writable.
    pub const W: u32 = 2;
    /// Readable.
    pub const R: u32 = 4;
}

/// Dynamic tags (`d_tag`).
pub mod dt {
    /// End of dynamic array.
    pub const NULL: i64 = 0;
    /// Needed shared library (value is a `.dynstr` offset).
    pub const NEEDED: i64 = 1;
    /// Shared object name.
    pub const SONAME: i64 = 14;
}

/// Symbol binding (upper nibble of `st_info`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymBinding {
    /// Local symbol.
    Local,
    /// Global symbol.
    Global,
    /// Weak symbol.
    Weak,
    /// Anything else.
    Other(u8),
}

impl SymBinding {
    /// Decodes the binding nibble.
    pub fn from_nibble(v: u8) -> Self {
        match v {
            0 => SymBinding::Local,
            1 => SymBinding::Global,
            2 => SymBinding::Weak,
            other => SymBinding::Other(other),
        }
    }

    /// Encodes the binding nibble.
    pub fn to_nibble(self) -> u8 {
        match self {
            SymBinding::Local => 0,
            SymBinding::Global => 1,
            SymBinding::Weak => 2,
            SymBinding::Other(v) => v,
        }
    }
}

/// Symbol type (lower nibble of `st_info`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymType {
    /// Untyped.
    NoType,
    /// Data object.
    Object,
    /// Function.
    Func,
    /// Section symbol.
    Section,
    /// File symbol.
    File,
    /// Anything else.
    Other(u8),
}

impl SymType {
    /// Decodes the type nibble.
    pub fn from_nibble(v: u8) -> Self {
        match v {
            0 => SymType::NoType,
            1 => SymType::Object,
            2 => SymType::Func,
            3 => SymType::Section,
            4 => SymType::File,
            other => SymType::Other(other),
        }
    }

    /// Encodes the type nibble.
    pub fn to_nibble(self) -> u8 {
        match self {
            SymType::NoType => 0,
            SymType::Object => 1,
            SymType::Func => 2,
            SymType::Section => 3,
            SymType::File => 4,
            SymType::Other(v) => v,
        }
    }
}

/// x86-64 relocation type used for PLT entries (`R_X86_64_JUMP_SLOT`).
pub const R_X86_64_JUMP_SLOT: u32 = 7;

/// Special section index: undefined symbol.
pub const SHN_UNDEF: u16 = 0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elf_type_roundtrip() {
        for t in [ElfType::Rel, ElfType::Exec, ElfType::Dyn, ElfType::Core,
                  ElfType::Other(7)] {
            assert_eq!(ElfType::from_u16(t.to_u16()), t);
        }
    }

    #[test]
    fn section_type_roundtrip() {
        for v in 0..12u32 {
            let t = SectionType::from_u32(v);
            assert_eq!(t.to_u32(), v);
        }
    }

    #[test]
    fn sym_nibbles_roundtrip() {
        for v in 0..4u8 {
            assert_eq!(SymBinding::from_nibble(v).to_nibble(), v);
            assert_eq!(SymType::from_nibble(v).to_nibble(), v);
        }
        assert_eq!(SymType::from_nibble(4).to_nibble(), 4);
    }
}
