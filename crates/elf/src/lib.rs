//! # apistudy-elf
//!
//! A from-scratch ELF64 parser and writer for the EuroSys'16 Linux API
//! usage study reproduction.
//!
//! - [`parse::ElfFile`] reads x86-64 ELF objects: headers, sections,
//!   program headers, symbol tables, `.dynamic`, `.rela.plt`, and string
//!   extraction — everything the static analyzer needs.
//! - [`build::ElfBuilder`] writes real ELF objects (static/dynamic
//!   executables and shared libraries) for the synthetic corpus, with a
//!   two-phase layout protocol so generated machine code can reference
//!   final virtual addresses.
//!
//! The writer and parser share conventions (see the PLT note in [`build`]),
//! and every object the builder produces round-trips through the parser.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod error;
pub mod parse;
pub mod types;

pub use build::{ElfBuilder, Layout, DEFAULT_INTERP, EXEC_BASE, PLT_STUB_SIZE};
pub use error::{ElfError, ErrorKind, Result};
pub use parse::{BinaryClass, ElfFile, Header, ProgramHeader, Rela, Section, Symbol};
pub use types::{ElfType, SectionType, SymBinding, SymType};
