//! ELF parser edge cases: PIE classification, string extraction limits,
//! soname-less libraries, and section accessors.

use apistudy_elf::{BinaryClass, ElfBuilder, ElfFile, ElfType};

#[test]
fn pie_executables_classify_as_dynamic_executables() {
    // A PIE is ET_DYN *with* an interpreter. Builders emit ET_EXEC for
    // executables, so construct the PIE shape manually: shared library
    // plus an entry — then patch the built image's e_type? Instead, use
    // the builder's shared-library path and confirm SharedLib, and the
    // executable path and confirm DynExec; the classifier's PIE branch is
    // covered by editing the type field of a built executable.
    let mut b = ElfBuilder::executable();
    b.needed("libc.so.6");
    b.declare_import("write");
    let _ = b.layout(4, 0);
    b.set_text(vec![0xc3; 4]);
    b.set_entry(0);
    let mut bytes = b.build().unwrap();
    // Patch e_type: ET_EXEC(2) → ET_DYN(3): a PIE keeps PT_INTERP.
    bytes[16] = 3;
    let elf = ElfFile::parse(&bytes).unwrap();
    assert_eq!(elf.header.etype, ElfType::Dyn);
    assert_eq!(elf.classify(), BinaryClass::DynExec, "PIE is an executable");
}

#[test]
fn soname_less_dynamic_object() {
    // A dynamic executable has no DT_SONAME.
    let mut b = ElfBuilder::executable();
    b.needed("libc.so.6");
    let _ = b.layout(2, 0);
    b.set_text(vec![0xc3; 2]);
    b.set_entry(0);
    let bytes = b.build().unwrap();
    let elf = ElfFile::parse(&bytes).unwrap();
    assert_eq!(elf.soname().unwrap(), None);
    assert_eq!(elf.needed_libraries().unwrap(), vec!["libc.so.6"]);
}

#[test]
fn strings_in_respects_min_len_and_charset() {
    let mut b = ElfBuilder::static_executable();
    let _ = b.layout(2, 0);
    b.set_text(vec![0xc3; 2]);
    b.set_entry(0);
    let mut rodata = Vec::new();
    rodata.extend_from_slice(b"/proc/cpuinfo\0"); // long enough
    rodata.extend_from_slice(b"ab\0"); // too short for min_len 4
    rodata.extend_from_slice(&[0xff, 0xfe]); // non-printable run
    rodata.extend_from_slice(b"with space ok\0");
    rodata.extend_from_slice(b"unterminated-tail"); // no NUL: dropped
    b.set_rodata(rodata);
    let bytes = b.build().unwrap();
    let elf = ElfFile::parse(&bytes).unwrap();
    let ro = elf.section_by_name(".rodata").unwrap().clone();
    let strings = elf.strings_in(&ro, 4).unwrap();
    assert_eq!(
        strings,
        vec!["/proc/cpuinfo".to_owned(), "with space ok".to_owned()]
    );
}

#[test]
fn section_accessors() {
    let mut b = ElfBuilder::shared_library("libacc.so");
    let f = b.declare_export("f");
    let _ = b.layout(8, 4);
    b.set_text(vec![0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0xc3]);
    b.set_rodata(vec![1, 2, 3, 4]);
    b.bind_export(f, 0, 8);
    let bytes = b.build().unwrap();
    let elf = ElfFile::parse(&bytes).unwrap();
    assert!(elf.section_by_name(".text").is_some());
    assert!(elf.section_by_name(".nope").is_none());
    let names: Vec<&str> = elf.sections.iter().map(|s| s.name.as_str()).collect();
    for expected in [".dynstr", ".dynsym", ".dynamic", ".text", ".rodata",
                     ".symtab", ".strtab", ".shstrtab"] {
        assert!(names.contains(&expected), "missing {expected}: {names:?}");
    }
    // Program headers: LOAD + DYNAMIC for a library.
    assert_eq!(elf.program_headers.len(), 2);
}

#[test]
fn empty_import_library_has_no_plt() {
    let mut b = ElfBuilder::shared_library("libnoimp.so");
    let f = b.declare_export("f");
    let layout = b.layout(2, 0);
    assert_eq!(layout.plt_addr, 0, "no imports → no PLT address");
    b.set_text(vec![0x90, 0xc3]);
    b.bind_export(f, 0, 2);
    let bytes = b.build().unwrap();
    let elf = ElfFile::parse(&bytes).unwrap();
    assert!(elf.section_by_name(".plt").is_none());
    assert!(elf.plt_map().unwrap().is_empty());
}

#[test]
fn bytes_roundtrip_identity() {
    let mut b = ElfBuilder::executable();
    b.needed("libc.so.6");
    b.declare_import("read");
    let _ = b.layout(2, 0);
    b.set_text(vec![0x90, 0xc3]);
    b.set_entry(0);
    let bytes = b.build().unwrap();
    let elf = ElfFile::parse(&bytes).unwrap();
    assert_eq!(elf.bytes(), &bytes[..]);
}
