//! ELF parser edge cases: PIE classification, string extraction limits,
//! soname-less libraries, and section accessors.

use apistudy_elf::{BinaryClass, ElfBuilder, ElfFile, ElfType};

#[test]
fn pie_executables_classify_as_dynamic_executables() {
    // A PIE is ET_DYN *with* an interpreter. Builders emit ET_EXEC for
    // executables, so construct the PIE shape manually: shared library
    // plus an entry — then patch the built image's e_type? Instead, use
    // the builder's shared-library path and confirm SharedLib, and the
    // executable path and confirm DynExec; the classifier's PIE branch is
    // covered by editing the type field of a built executable.
    let mut b = ElfBuilder::executable();
    b.needed("libc.so.6");
    b.declare_import("write");
    let _ = b.layout(4, 0);
    b.set_text(vec![0xc3; 4]);
    b.set_entry(0);
    let mut bytes = b.build().unwrap();
    // Patch e_type: ET_EXEC(2) → ET_DYN(3): a PIE keeps PT_INTERP.
    bytes[16] = 3;
    let elf = ElfFile::parse(&bytes).unwrap();
    assert_eq!(elf.header.etype, ElfType::Dyn);
    assert_eq!(elf.classify(), BinaryClass::DynExec, "PIE is an executable");
}

#[test]
fn soname_less_dynamic_object() {
    // A dynamic executable has no DT_SONAME.
    let mut b = ElfBuilder::executable();
    b.needed("libc.so.6");
    let _ = b.layout(2, 0);
    b.set_text(vec![0xc3; 2]);
    b.set_entry(0);
    let bytes = b.build().unwrap();
    let elf = ElfFile::parse(&bytes).unwrap();
    assert_eq!(elf.soname().unwrap(), None);
    assert_eq!(elf.needed_libraries().unwrap(), vec!["libc.so.6"]);
}

#[test]
fn strings_in_respects_min_len_and_charset() {
    let mut b = ElfBuilder::static_executable();
    let _ = b.layout(2, 0);
    b.set_text(vec![0xc3; 2]);
    b.set_entry(0);
    let mut rodata = Vec::new();
    rodata.extend_from_slice(b"/proc/cpuinfo\0"); // long enough
    rodata.extend_from_slice(b"ab\0"); // too short for min_len 4
    rodata.extend_from_slice(&[0xff, 0xfe]); // non-printable run
    rodata.extend_from_slice(b"with space ok\0");
    rodata.extend_from_slice(b"unterminated-tail"); // no NUL: dropped
    b.set_rodata(rodata);
    let bytes = b.build().unwrap();
    let elf = ElfFile::parse(&bytes).unwrap();
    let ro = elf.section_by_name(".rodata").unwrap().clone();
    let strings = elf.strings_in(&ro, 4).unwrap();
    assert_eq!(
        strings,
        vec!["/proc/cpuinfo".to_owned(), "with space ok".to_owned()]
    );
}

#[test]
fn section_accessors() {
    let mut b = ElfBuilder::shared_library("libacc.so");
    let f = b.declare_export("f");
    let _ = b.layout(8, 4);
    b.set_text(vec![0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0xc3]);
    b.set_rodata(vec![1, 2, 3, 4]);
    b.bind_export(f, 0, 8);
    let bytes = b.build().unwrap();
    let elf = ElfFile::parse(&bytes).unwrap();
    assert!(elf.section_by_name(".text").is_some());
    assert!(elf.section_by_name(".nope").is_none());
    let names: Vec<&str> = elf.sections.iter().map(|s| s.name.as_str()).collect();
    for expected in [".dynstr", ".dynsym", ".dynamic", ".text", ".rodata",
                     ".symtab", ".strtab", ".shstrtab"] {
        assert!(names.contains(&expected), "missing {expected}: {names:?}");
    }
    // Program headers: LOAD + DYNAMIC for a library.
    assert_eq!(elf.program_headers.len(), 2);
}

#[test]
fn empty_import_library_has_no_plt() {
    let mut b = ElfBuilder::shared_library("libnoimp.so");
    let f = b.declare_export("f");
    let layout = b.layout(2, 0);
    assert_eq!(layout.plt_addr, 0, "no imports → no PLT address");
    b.set_text(vec![0x90, 0xc3]);
    b.bind_export(f, 0, 2);
    let bytes = b.build().unwrap();
    let elf = ElfFile::parse(&bytes).unwrap();
    assert!(elf.section_by_name(".plt").is_none());
    assert!(elf.plt_map().unwrap().is_empty());
}

#[test]
fn bytes_roundtrip_identity() {
    let mut b = ElfBuilder::executable();
    b.needed("libc.so.6");
    b.declare_import("read");
    let _ = b.layout(2, 0);
    b.set_text(vec![0x90, 0xc3]);
    b.set_entry(0);
    let bytes = b.build().unwrap();
    let elf = ElfFile::parse(&bytes).unwrap();
    assert_eq!(elf.bytes(), &bytes[..]);
}

// ---------------------------------------------------------------------
// Robustness: the parser is total over corrupted images, and every error
// classifies under exactly one ErrorKind bucket of the quarantine
// taxonomy.
// ---------------------------------------------------------------------

use apistudy_elf::{ElfError, ErrorKind};

fn small_library_bytes() -> Vec<u8> {
    let mut b = ElfBuilder::shared_library("libedge.so");
    let f = b.declare_export("f");
    b.declare_import("read");
    b.needed("libc.so.6");
    let _ = b.layout(8, 4);
    b.set_text(vec![0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0xc3]);
    b.set_rodata(vec![b'/', b'x', 0, 0]);
    b.bind_export(f, 0, 8);
    b.build().unwrap()
}

/// Drives every accessor the pipeline uses; any of them may error on a
/// corrupt image, none may panic.
fn exercise(bytes: &[u8]) -> Result<(), ElfError> {
    let elf = ElfFile::parse(bytes)?;
    elf.symtab()?;
    elf.dynsym()?;
    elf.dynamic_entries()?;
    elf.needed_libraries()?;
    elf.soname()?;
    elf.plt_map()?;
    elf.classify();
    for sec in elf.sections.clone() {
        elf.section_data(&sec)?;
    }
    Ok(())
}

#[test]
fn exhaustive_truncation_sweep_never_panics() {
    // Every possible truncation point of a real object: the parser and
    // every accessor must return (Ok or Err), never panic. The full image
    // at the end must still pass.
    let bytes = small_library_bytes();
    let mut failures = 0usize;
    for cut in 0..bytes.len() {
        if let Err(e) = exercise(&bytes[..cut]) {
            // Truncation produces Truncated or BadString (a string table
            // cut mid-entry), nothing else.
            assert!(
                matches!(
                    e.kind(),
                    ErrorKind::Truncated | ErrorKind::BadString
                ),
                "cut {cut}: unexpected {e} ({:?})",
                e.kind()
            );
            failures += 1;
        }
    }
    assert!(failures > bytes.len() / 2, "most cuts must fail: {failures}");
    exercise(&bytes).expect("untruncated image is clean");
}

#[test]
fn error_kind_taxonomy_is_total_and_stable() {
    let samples = [
        (
            ElfError::Truncated { what: "x", offset: 0, need: 4, have: 0 },
            ErrorKind::Truncated,
            "truncated",
        ),
        (ElfError::BadMagic, ErrorKind::BadMagic, "bad-magic"),
        (ElfError::UnsupportedClass, ErrorKind::Unsupported, "unsupported"),
        (
            ElfError::UnsupportedMachine(3),
            ErrorKind::Unsupported,
            "unsupported",
        ),
        (
            ElfError::BadString { offset: 9 },
            ErrorKind::BadString,
            "bad-string",
        ),
        (
            ElfError::BadSectionIndex(7),
            ErrorKind::BadSectionIndex,
            "bad-section-index",
        ),
        (
            ElfError::Malformed("nope"),
            ErrorKind::Malformed,
            "malformed",
        ),
        (
            ElfError::ResourceLimit { what: "nodes", limit: 1, actual: 2 },
            ErrorKind::ResourceLimit,
            "resource-limit",
        ),
    ];
    for (err, kind, label) in samples {
        assert_eq!(err.kind(), kind, "{err}");
        assert_eq!(kind.label(), label);
        assert_eq!(kind.to_string(), label);
    }
    // ALL covers every kind exactly once, in display order.
    let mut seen = std::collections::BTreeSet::new();
    for k in ErrorKind::ALL {
        assert!(seen.insert(k), "duplicate {k}");
    }
    assert_eq!(seen.len(), ErrorKind::ALL.len());
}

#[test]
fn patched_images_classify_under_the_expected_kinds() {
    let bytes = small_library_bytes();

    // Bad magic.
    let mut m = bytes.clone();
    m[1] ^= 0x40;
    assert_eq!(exercise(&m).unwrap_err().kind(), ErrorKind::BadMagic);

    // Wrong class.
    let mut c = bytes.clone();
    c[4] = 1;
    assert_eq!(exercise(&c).unwrap_err().kind(), ErrorKind::Unsupported);

    // Wrong machine.
    let mut mach = bytes.clone();
    mach[18] = 40; // EM_ARM
    assert_eq!(exercise(&mach).unwrap_err().kind(), ErrorKind::Unsupported);

    // Section-name string table index out of range.
    let mut shstr = bytes.clone();
    shstr[62..64].copy_from_slice(&u16::MAX.to_le_bytes()); // e_shstrndx
    assert_eq!(
        exercise(&shstr).unwrap_err().kind(),
        ErrorKind::BadSectionIndex
    );
}
