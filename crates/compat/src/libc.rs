//! libc variant profiles: the Table 7 evaluation.
//!
//! The paper measures how compatible eglibc, uClibc, musl, and dietlibc
//! are with binaries linked against GNU libc, by matching exported symbol
//! sets — first raw, then after normalizing glibc's compile-time API
//! replacement (`printf` → `__printf_chk`, `scanf` → `__isoc99_scanf`).

use std::collections::HashSet;

use apistudy_catalog::{
    libc_symbols::{normalize_compile_time_alias, SymbolFamily},
    Api, ApiKind, ApiSet,
};
use apistudy_core::Metrics;

/// A libc variant's exported-symbol profile.
#[derive(Debug, Clone)]
pub struct LibcVariant {
    /// Variant name as reported in Table 7.
    pub name: &'static str,
    /// Exported symbol names.
    pub exported: HashSet<String>,
}

impl LibcVariant {
    /// Number of exported symbols.
    pub fn len(&self) -> usize {
        self.exported.len()
    }

    /// Whether the profile exports nothing.
    pub fn is_empty(&self) -> bool {
        self.exported.is_empty()
    }

    /// Sample glibc symbols this variant does not export (for the table's
    /// "Unsupported" column).
    pub fn unsupported_samples(&self, metrics: &Metrics<'_>, n: usize) -> Vec<String> {
        let catalog = &metrics.data().catalog;
        metrics
            .importance_ranking(ApiKind::LibcSymbol)
            .into_iter()
            .filter_map(|(api, imp)| match api {
                Api::LibcSymbol(id) if imp > 0.0 => {
                    let name = &catalog.libc.get(id)?.name;
                    if self.exported.contains(name) {
                        None
                    } else {
                        Some(name.clone())
                    }
                }
                _ => None,
            })
            .take(n)
            .collect()
    }

    /// Weighted completeness against glibc-linked binaries.
    ///
    /// With `normalized`, a used symbol also counts as supported when it is
    /// a compile-time alias (`__*_chk`, `__isoc99_*`) whose plain form the
    /// variant exports — or a pure fortify-runtime hook with no plain form.
    pub fn completeness(&self, metrics: &Metrics<'_>, normalized: bool) -> f64 {
        metrics.weighted_completeness_masked(
            &self.unsupported_mask(metrics, normalized),
        )
    }

    /// The variant's unsupported-symbol mask (the catalog's libc symbols
    /// the variant fails to cover), built in one pass over the symbol
    /// inventory — the mask feeds the
    /// [`Metrics::weighted_completeness_masked`] fast path directly, with
    /// no intermediate supported-set and no rescan of the API universe.
    pub fn unsupported_mask(
        &self,
        metrics: &Metrics<'_>,
        normalized: bool,
    ) -> ApiSet {
        let catalog = &metrics.data().catalog;
        let mut unsupported = ApiSet::new();
        for (id, sym) in catalog.libc.iter() {
            let name = &sym.name;
            let ok = if self.exported.contains(name) {
                true
            } else if normalized {
                // Fortify runtime hooks have no plain-form equivalent; a
                // non-fortified rebuild simply has no reference to them.
                let runtime_hook = matches!(
                    name.as_str(),
                    "__stack_chk_fail" | "__chk_fail" | "__fortify_fail"
                );
                runtime_hook
                    || match normalize_compile_time_alias(name) {
                        Some(base) => {
                            self.exported.contains(&base)
                                || catalog.libc.id_of(&base).is_none()
                        }
                        None => false,
                    }
            } else {
                false
            };
            if !ok {
                unsupported.insert(Api::LibcSymbol(id));
            }
        }
        unsupported
    }
}

/// Which glibc symbols a variant exports, expressed as exclusions from the
/// full inventory.
fn variant_from_exclusions<F>(
    metrics: &Metrics<'_>,
    name: &'static str,
    exclude: F,
) -> LibcVariant
where
    F: Fn(&str, SymbolFamily) -> bool,
{
    let catalog = &metrics.data().catalog;
    let exported = catalog
        .libc
        .iter()
        .filter(|(_, s)| !exclude(&s.name, s.family))
        .map(|(_, s)| s.name.clone())
        .collect();
    LibcVariant { name, exported }
}

fn is_stdio_internal(name: &str) -> bool {
    name.starts_with("_IO_")
        || matches!(name, "__overflow" | "__uflow" | "__underflow")
}

/// eglibc 2.19: a build of glibc — exports the full inventory.
pub fn eglibc(metrics: &Metrics<'_>) -> LibcVariant {
    variant_from_exclusions(metrics, "eglibc 2.19", |_, _| false)
}

/// uClibc 0.9.33: no fortify symbols, no ISO-C99 shims, no glibc stdio
/// internals, no glibc-internal exports.
pub fn uclibc(metrics: &Metrics<'_>) -> LibcVariant {
    variant_from_exclusions(metrics, "uClibc 0.9.33", |name, family| {
        family == SymbolFamily::Fortify
            || family == SymbolFamily::Generated
            || name.starts_with("__isoc99_")
            || is_stdio_internal(name)
            || name.starts_with("__glibc_internal")
            || name.starts_with("__nss_")
    })
}

/// musl 1.1.14: like uClibc, additionally without the GNU reentrant-random
/// family and `secure_getenv` (the paper's samples).
pub fn musl(metrics: &Metrics<'_>) -> LibcVariant {
    variant_from_exclusions(metrics, "musl 1.1.14", |name, family| {
        family == SymbolFamily::Fortify
            || family == SymbolFamily::Generated
            || name.starts_with("__isoc99_")
            || is_stdio_internal(name)
            || name.starts_with("__nss_")
            || matches!(
                name,
                "secure_getenv"
                    | "random_r"
                    | "srandom_r"
                    | "initstate_r"
                    | "setstate_r"
                    | "drand48_r"
                    | "lrand48_r"
                    | "mrand48_r"
            )
    })
}

/// dietlibc 0.33: a minimal libc — only the basic POSIX/C families, and
/// even there missing ubiquitous glibc APIs (`memalign`, `stpcpy`,
/// `__cxa_finalize`, `__libc_start_main`), which is why its completeness
/// is zero.
pub fn dietlibc(metrics: &Metrics<'_>) -> LibcVariant {
    variant_from_exclusions(metrics, "dietlibc 0.33", |name, family| {
        !matches!(
            family,
            SymbolFamily::Stdio
                | SymbolFamily::Str
                | SymbolFamily::Stdlib
                | SymbolFamily::Posix
                | SymbolFamily::Socket
                | SymbolFamily::Time
                | SymbolFamily::Signal
                | SymbolFamily::Ctype
                | SymbolFamily::Dirent
                | SymbolFamily::Mman
                | SymbolFamily::Pwd
                | SymbolFamily::Ipc
                | SymbolFamily::Sched
                | SymbolFamily::Event
                | SymbolFamily::Xattr
        ) || matches!(
            name,
            "memalign" | "stpcpy" | "stpncpy" | "canonicalize_file_name"
                | "secure_getenv" | "qsort_r" | "fcloseall" | "fmemopen"
                | "open_memstream" | "fopencookie" | "getauxval"
        )
    })
}

/// All four Table 7 variants.
pub fn all_variants(metrics: &Metrics<'_>) -> Vec<LibcVariant> {
    vec![eglibc(metrics), uclibc(metrics), musl(metrics), dietlibc(metrics)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use apistudy_core::StudyData;
    use apistudy_corpus::{CalibrationSpec, Scale, SynthRepo};

    fn data() -> StudyData {
        let repo = SynthRepo::new(
            Scale { packages: 300, installations: 100_000 },
            CalibrationSpec::default(),
            21,
        );
        StudyData::from_synth(&repo)
    }

    #[test]
    fn eglibc_is_fully_compatible() {
        let data = data();
        let m = Metrics::new(&data);
        let v = eglibc(&m);
        assert_eq!(v.len(), 1274);
        assert!((v.completeness(&m, false) - 1.0).abs() < 1e-9);
        assert!((v.completeness(&m, true) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uclibc_and_musl_jump_after_normalization() {
        let data = data();
        let m = Metrics::new(&data);
        for v in [uclibc(&m), musl(&m)] {
            let raw = v.completeness(&m, false);
            let norm = v.completeness(&m, true);
            assert!(raw < 0.10, "{} raw {raw}", v.name);
            assert!(
                norm > raw + 0.20,
                "{} must jump after normalization: {raw} → {norm}",
                v.name
            );
            assert!(
                (0.20..0.80).contains(&norm),
                "{} normalized {norm}",
                v.name
            );
        }
    }

    #[test]
    fn dietlibc_is_incompatible_either_way() {
        let data = data();
        let m = Metrics::new(&data);
        let v = dietlibc(&m);
        assert!(v.len() < 1100, "dietlibc exports {}", v.len());
        assert!(v.completeness(&m, false) < 0.02);
        assert!(v.completeness(&m, true) < 0.02);
    }

    #[test]
    fn unsupported_samples_name_real_gaps() {
        let data = data();
        let m = Metrics::new(&data);
        let v = uclibc(&m);
        let samples = v.unsupported_samples(&m, 8);
        assert!(!samples.is_empty());
        for s in &samples {
            assert!(!v.exported.contains(s));
        }
    }

    #[test]
    fn mask_fast_path_matches_scope_path() {
        // The direct mask build must agree bit-for-bit with the generic
        // supported-set + scope-closure path it replaced.
        let data = data();
        let m = Metrics::new(&data);
        for v in all_variants(&m) {
            for normalized in [false, true] {
                let mask = v.unsupported_mask(&m, normalized);
                let supported: HashSet<Api> = m
                    .data()
                    .catalog
                    .libc
                    .iter()
                    .map(|(id, _)| Api::LibcSymbol(id))
                    .filter(|&a| !mask.contains(a))
                    .collect();
                let reference = m.weighted_completeness(&supported, |a| {
                    a.kind() == ApiKind::LibcSymbol
                });
                assert_eq!(
                    v.completeness(&m, normalized).to_bits(),
                    reference.to_bits(),
                    "{} normalized={normalized}",
                    v.name
                );
            }
        }
    }

    #[test]
    fn variant_ordering_matches_table_7() {
        let data = data();
        let m = Metrics::new(&data);
        let e = eglibc(&m).completeness(&m, true);
        let u = uclibc(&m).completeness(&m, true);
        let mu = musl(&m).completeness(&m, true);
        let d = dietlibc(&m).completeness(&m, true);
        assert!(e > u && e > mu, "eglibc wins");
        assert!(u > d && mu > d, "dietlibc loses");
    }
}
