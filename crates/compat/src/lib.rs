//! # apistudy-compat
//!
//! Compatibility evaluation of real systems against the measured corpus —
//! the paper's §4:
//!
//! - [`systems`] — Table 6: syscall profiles of User-Mode Linux, L4Linux,
//!   FreeBSD's Linux emulation layer, and the Graphene library OS, their
//!   weighted completeness, and suggested next APIs;
//! - [`libc`] — Table 7: exported-symbol profiles of eglibc, uClibc, musl,
//!   and dietlibc, raw and after normalizing glibc's compile-time API
//!   replacement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod libc;
pub mod systems;

pub use libc::{all_variants, dietlibc, eglibc, musl, uclibc, LibcVariant};
pub use systems::{
    all_profiles, freebsd_emulation, graphene, l4linux, user_mode_linux,
    SystemProfile,
};
