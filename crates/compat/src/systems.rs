//! System profiles: the Table 6 evaluation of Linux-compatible systems and
//! emulation layers.
//!
//! The paper evaluates User-Mode Linux, L4Linux, FreeBSD's Linux emulation
//! layer, and the Graphene library OS by the set of system calls each
//! supports. Profiles here are reconstructed from the paper's reported
//! counts and named gaps (DESIGN.md §3): each profile is "the top-N calls
//! of the measured importance ranking, minus the specific calls the paper
//! names as missing, plus assorted less-important calls" to reach the
//! published totals.

use std::collections::HashSet;

use apistudy_catalog::{Api, ApiKind, ApiSet};
use apistudy_core::Metrics;

/// A system's supported-syscall profile.
#[derive(Debug, Clone)]
pub struct SystemProfile {
    /// System name as reported in Table 6.
    pub name: &'static str,
    /// Supported syscall numbers.
    pub supported: HashSet<u32>,
}

impl SystemProfile {
    /// Number of supported system calls.
    pub fn len(&self) -> usize {
        self.supported.len()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.supported.is_empty()
    }

    /// Weighted completeness of this system (Table 6's "W.Comp.").
    pub fn completeness(&self, metrics: &Metrics<'_>) -> f64 {
        metrics.weighted_completeness_masked(&self.unsupported_mask(metrics))
    }

    /// The profile's unsupported-syscall mask — callers evaluating many
    /// profiles (or many variants of one) build this once per variant and
    /// reuse it across [`Metrics::weighted_completeness_masked`] calls.
    pub fn unsupported_mask(&self, metrics: &Metrics<'_>) -> ApiSet {
        metrics.syscall_unsupported_mask(&self.supported)
    }

    /// The unsupported calls whose addition buys the most weighted
    /// completeness, in greedy marginal-gain order with each pick's exact
    /// gain — the incremental-engine upgrade of [`suggestions`], which
    /// ranks by standalone importance and so can propose a call that
    /// unlocks nothing until its co-required calls also arrive.
    ///
    /// [`suggestions`]: Self::suggestions
    pub fn greedy_suggestions(
        &self,
        metrics: &Metrics<'_>,
        n: usize,
    ) -> Vec<(String, f64)> {
        apistudy_core::greedy_suggestions(metrics, &self.supported, n)
            .into_iter()
            .filter_map(|(nr, gain)| {
                let name = metrics
                    .data()
                    .catalog
                    .syscalls
                    .by_number(nr)?
                    .name
                    .to_owned();
                Some((name, gain))
            })
            .collect()
    }

    /// The most important unsupported system calls — the paper's
    /// "suggested APIs to add".
    pub fn suggestions(&self, metrics: &Metrics<'_>, n: usize) -> Vec<(String, f64)> {
        metrics
            .importance_ranking(ApiKind::Syscall)
            .into_iter()
            .filter_map(|(api, imp)| match api {
                Api::Syscall(nr) if !self.supported.contains(&nr) => {
                    let name = metrics
                        .data()
                        .catalog
                        .syscalls
                        .by_number(nr)?
                        .name
                        .to_owned();
                    Some((name, imp))
                }
                _ => None,
            })
            .take(n)
            .collect()
    }

    /// Adds syscalls by name, returning the grown profile (the paper's
    /// "Graphene¶" experiment).
    pub fn with_added(&self, metrics: &Metrics<'_>, names: &[&str]) -> Self {
        let mut supported = self.supported.clone();
        for name in names {
            if let Some(nr) = metrics.data().catalog.syscalls.number_of(name) {
                supported.insert(nr);
            }
        }
        Self { name: self.name, supported }
    }
}

impl SystemProfile {
    /// Builds a profile for *your* system from the kernel names of its
    /// supported calls (unknown names are ignored) — the paper's §4.1
    /// workflow for prototypes not in Table 6.
    pub fn from_names(
        metrics: &Metrics<'_>,
        name: &'static str,
        supported: &[&str],
    ) -> Self {
        let catalog = &metrics.data().catalog;
        let supported = supported
            .iter()
            .filter_map(|n| catalog.syscalls.number_of(n))
            .collect();
        Self { name, supported }
    }
}

/// Builds a profile of `total` calls: the top-`coverage` of the measured
/// ranking, minus `missing`, plus assorted calls beyond the coverage
/// horizon to reach `total`.
fn profile(
    metrics: &Metrics<'_>,
    name: &'static str,
    coverage: usize,
    missing: &[&str],
    total: usize,
) -> SystemProfile {
    let catalog = &metrics.data().catalog;
    let missing_nrs: HashSet<u32> = missing
        .iter()
        .filter_map(|n| catalog.syscalls.number_of(n))
        .collect();
    let ranking: Vec<u32> = metrics
        .importance_ranking(ApiKind::Syscall)
        .into_iter()
        .map(|(api, _)| match api {
            Api::Syscall(nr) => nr,
            _ => unreachable!(),
        })
        .collect();
    let mut supported: HashSet<u32> = HashSet::new();
    for &nr in ranking.iter().take(coverage) {
        if supported.len() >= total {
            break;
        }
        if !missing_nrs.contains(&nr) {
            supported.insert(nr);
        }
    }
    // Fill with scattered less-important calls (every third rank beyond
    // the coverage horizon) until `total`; real prototypes accrete such
    // assorted calls rather than the exact next-most-important ones.
    for &nr in ranking.iter().skip(coverage).step_by(3) {
        if supported.len() >= total {
            break;
        }
        if !missing_nrs.contains(&nr) {
            supported.insert(nr);
        }
    }
    for &nr in ranking.iter().skip(coverage) {
        if supported.len() >= total {
            break;
        }
        if !missing_nrs.contains(&nr) {
            supported.insert(nr);
        }
    }
    SystemProfile { name, supported }
}

/// User-Mode Linux 3.19: 284 calls; missing `name_to_handle_at`, `iopl`,
/// `ioperm`, `perf_event_open` (Table 6).
pub fn user_mode_linux(metrics: &Metrics<'_>) -> SystemProfile {
    profile(
        metrics,
        "User-Mode-Linux 3.19",
        288,
        &["name_to_handle_at", "iopl", "ioperm", "perf_event_open"],
        284,
    )
}

/// L4Linux 4.3: 286 calls; missing `quotactl`, `migrate_pages`,
/// `kexec_load` (Table 6).
pub fn l4linux(metrics: &Metrics<'_>) -> SystemProfile {
    profile(
        metrics,
        "L4Linux 4.3",
        289,
        &["quotactl", "migrate_pages", "kexec_load"],
        286,
    )
}

/// FreeBSD's Linux emulation layer 10.2: 225 calls; missing the `inotify`
/// family, `splice`, `umount2`, and the `timerfd` family (Table 6).
pub fn freebsd_emulation(metrics: &Metrics<'_>) -> SystemProfile {
    profile(
        metrics,
        "FreeBSD-emu 10.2",
        234,
        &[
            "inotify_init",
            "inotify_init1",
            "inotify_add_watch",
            "inotify_rm_watch",
            "splice",
            "umount2",
            "timerfd_create",
            "timerfd_settime",
            "timerfd_gettime",
        ],
        225,
    )
}

/// Graphene library OS: 143 calls; missing scheduling control
/// (`sched_setscheduler`, `sched_setparam`), whose absence is the paper's
/// headline 0.42% → 21.1% example.
pub fn graphene(metrics: &Metrics<'_>) -> SystemProfile {
    profile(
        metrics,
        "Graphene",
        98,
        &["sched_setscheduler", "sched_setparam"],
        143,
    )
}

/// All four Table 6 profiles.
pub fn all_profiles(metrics: &Metrics<'_>) -> Vec<SystemProfile> {
    vec![
        user_mode_linux(metrics),
        l4linux(metrics),
        freebsd_emulation(metrics),
        graphene(metrics),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use apistudy_core::StudyData;
    use apistudy_corpus::{CalibrationSpec, Scale, SynthRepo};

    fn data() -> StudyData {
        let repo = SynthRepo::new(
            Scale { packages: 300, installations: 100_000 },
            CalibrationSpec::default(),
            21,
        );
        StudyData::from_synth(&repo)
    }

    #[test]
    fn profiles_have_published_sizes() {
        let data = data();
        let m = Metrics::new(&data);
        assert_eq!(user_mode_linux(&m).len(), 284);
        assert_eq!(l4linux(&m).len(), 286);
        assert_eq!(freebsd_emulation(&m).len(), 225);
        assert_eq!(graphene(&m).len(), 143);
    }

    #[test]
    fn completeness_ordering_matches_table_6() {
        let data = data();
        let m = Metrics::new(&data);
        let uml = user_mode_linux(&m).completeness(&m);
        let l4 = l4linux(&m).completeness(&m);
        let bsd = freebsd_emulation(&m).completeness(&m);
        let gra = graphene(&m).completeness(&m);
        // L4Linux ≥ UML > FreeBSD > Graphene; UML and L4 above 85%,
        // FreeBSD mid, Graphene near zero.
        assert!(l4 >= uml, "l4 {l4} uml {uml}");
        assert!(uml > bsd, "uml {uml} bsd {bsd}");
        assert!(bsd > gra, "bsd {bsd} graphene {gra}");
        assert!(uml > 0.80, "uml {uml}");
        assert!((0.30..0.90).contains(&bsd), "bsd {bsd}");
        assert!(gra < 0.10, "graphene {gra}");
    }

    #[test]
    fn graphene_jumps_with_two_scheduling_calls() {
        let data = data();
        let m = Metrics::new(&data);
        let g = graphene(&m);
        let before = g.completeness(&m);
        let after = g
            .with_added(&m, &["sched_setscheduler", "sched_setparam"])
            .completeness(&m);
        assert_eq!(g.with_added(&m, &["sched_setscheduler", "sched_setparam"]).len(), 145);
        assert!(
            after > before + 0.05,
            "adding scheduling must jump completeness: {before} → {after}"
        );
    }

    #[test]
    fn custom_profiles_from_names() {
        let data = data();
        let m = Metrics::new(&data);
        let tiny = SystemProfile::from_names(
            &m,
            "my-unikernel",
            &["read", "write", "exit_group", "no_such_call"],
        );
        assert_eq!(tiny.len(), 3, "unknown names are ignored");
        assert!(tiny.completeness(&m) < 0.05);
        let sugg = tiny.suggestions(&m, 3);
        assert_eq!(sugg.len(), 3);
    }

    #[test]
    fn greedy_suggestions_gains_sum_to_the_jump() {
        let data = data();
        let m = Metrics::new(&data);
        let g = graphene(&m);
        let picks = g.greedy_suggestions(&m, 5);
        assert_eq!(picks.len(), 5);
        // Committing the greedy picks reproduces the summed gains.
        let names: Vec<&str> = picks.iter().map(|(n, _)| n.as_str()).collect();
        let grown = g.with_added(&m, &names);
        let reported: f64 = picks.iter().map(|&(_, gain)| gain).sum();
        let actual = grown.completeness(&m) - g.completeness(&m);
        assert!(
            (actual - reported).abs() < 1e-9,
            "gains {reported} vs actual {actual}"
        );
        // Greedy beats the importance-ordered suggestions for Graphene —
        // the paper's point that static importance misleads here.
        let static_names: Vec<(String, f64)> = g.suggestions(&m, 5);
        let static_added: Vec<&str> =
            static_names.iter().map(|(n, _)| n.as_str()).collect();
        let static_after = g.with_added(&m, &static_added).completeness(&m);
        assert!(
            grown.completeness(&m) >= static_after,
            "greedy {} must not trail static {static_after}",
            grown.completeness(&m)
        );
    }

    #[test]
    fn mask_fast_path_matches_hashset_path() {
        let data = data();
        let m = Metrics::new(&data);
        for p in all_profiles(&m) {
            let masked = m.weighted_completeness_masked(&p.unsupported_mask(&m));
            let scratch = m.syscall_completeness(&p.supported);
            assert_eq!(masked.to_bits(), scratch.to_bits(), "{}", p.name);
        }
    }

    #[test]
    fn suggestions_name_the_missing_calls() {
        let data = data();
        let m = Metrics::new(&data);
        let uml = user_mode_linux(&m);
        let sugg = uml.suggestions(&m, 6);
        assert!(!sugg.is_empty());
        let names: Vec<&str> = sugg.iter().map(|(n, _)| n.as_str()).collect();
        for expected in ["iopl", "ioperm"] {
            assert!(
                names.contains(&expected),
                "{expected} should be suggested, got {names:?}"
            );
        }
        // Sorted by importance.
        for w in sugg.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
