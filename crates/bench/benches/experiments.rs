//! Experiment benchmarks: the cost of regenerating each of the paper's
//! tables and figures from a completed study (one bench per artifact id).

use criterion::{criterion_group, criterion_main, Criterion};

use apistudy_bench::{render, Ctx, ARTIFACT_IDS};
use apistudy_core::Study;
use apistudy_corpus::Scale;

fn bench_artifacts(c: &mut Criterion) {
    let study = Study::run(Scale { packages: 150, installations: 50_000 }, 2016);
    let ctx = Ctx::new(&study);
    let mut group = c.benchmark_group("artifacts");
    for id in ARTIFACT_IDS {
        group.bench_function(id, |b| {
            b.iter(|| render(&ctx, std::hint::black_box(id)).expect("known id"))
        });
    }
    group.finish();

    c.bench_function("ctx_derivation", |b| {
        b.iter(|| Ctx::new(std::hint::black_box(&study)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_artifacts
}
criterion_main!(benches);
