//! Pipeline benchmarks: the cost of each substrate stage, from parsing a
//! single ELF to running the full repository-scale study.
//!
//! The paper's framework took ~3 days over 30,976 packages on Postgres
//! (§7, Table 12); these benches record what the native reimplementation
//! costs per stage.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use apistudy_analysis::{AnalysisOptions, BinaryAnalysis, Linker};
use apistudy_catalog::{Api, ApiKind, ApiSet, Catalog};
use apistudy_core::{
    corruption_sweep_with, AnalysisCache, CacheMode, CompletenessEngine,
    Metrics, StudyData,
};
use apistudy_corpus::{
    codegen::{generate_executable, ExecSpec, VectoredVia},
    libc_gen, CalibrationSpec, Scale, SynthRepo,
};
use apistudy_elf::ElfFile;
use apistudy_x86::Decoder;

fn sample_exec_bytes() -> Vec<u8> {
    let spec = ExecSpec {
        needed: vec!["libc.so.6".into()],
        libc_calls: (0..24).map(|i| format!("fn_{i}")).collect(),
        direct_syscalls: (0..16).collect(),
        ioctl_codes: vec![(0x5401, VectoredVia::Inline), (0x5413, VectoredVia::Wrapper)],
        paths: vec!["/dev/null".into(), "/proc/%d/cmdline".into()],
        helpers: 4,
        seed: 99,
        ..Default::default()
    };
    generate_executable(&spec)
}

fn bench_substrates(c: &mut Criterion) {
    let exec_bytes = sample_exec_bytes();
    c.bench_function("elf_parse_executable", |b| {
        b.iter(|| ElfFile::parse(std::hint::black_box(&exec_bytes)).unwrap())
    });

    let elf = ElfFile::parse(&exec_bytes).unwrap();
    let text = elf.section_by_name(".text").unwrap().clone();
    let code = elf.section_data(&text).unwrap();
    c.bench_function("x86_decode_text_section", |b| {
        b.iter(|| {
            Decoder::new(std::hint::black_box(code), text.addr)
                .map(|d| d.len)
                .sum::<usize>()
        })
    });

    c.bench_function("analyze_executable", |b| {
        b.iter(|| BinaryAnalysis::analyze(std::hint::black_box(&elf)).unwrap())
    });

    c.bench_function("codegen_executable", |b| {
        b.iter(sample_exec_bytes)
    });

    let catalog = Catalog::linux_3_19();
    c.bench_function("generate_libc_1274_exports", |b| {
        b.iter(|| {
            apistudy_corpus::codegen::generate_library(&libc_gen::libc_spec(
                std::hint::black_box(&catalog),
            ))
        })
    });

    let libc_bytes =
        apistudy_corpus::codegen::generate_library(&libc_gen::libc_spec(&catalog));
    let libc_elf = ElfFile::parse(&libc_bytes).unwrap();
    c.bench_function("analyze_libc", |b| {
        b.iter(|| BinaryAnalysis::analyze(std::hint::black_box(&libc_elf)).unwrap())
    });

    let libc_ba = BinaryAnalysis::analyze(&libc_elf).unwrap();
    c.bench_function("linker_seal_libc", |b| {
        b.iter_batched(
            || {
                let mut linker = Linker::new();
                linker.add_library("libc.so.6", libc_ba.clone());
                linker
            },
            |mut linker| {
                linker.seal();
                linker
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_study(c: &mut Criterion) {
    let scale = Scale { packages: 150, installations: 50_000 };
    c.bench_function("corpus_plan_150_packages", |b| {
        b.iter(|| {
            apistudy_corpus::RepoPlan::plan(scale, CalibrationSpec::default(), 5)
        })
    });

    let repo = SynthRepo::new(scale, CalibrationSpec::default(), 5);
    c.bench_function("pipeline_150_packages", |b| {
        b.iter(|| StudyData::from_synth(std::hint::black_box(&repo)))
    });

    let data = StudyData::from_synth(&repo);
    c.bench_function("metrics_index", |b| {
        b.iter(|| Metrics::new(std::hint::black_box(&data)))
    });

    let metrics = Metrics::new(&data);
    let read = data.catalog.syscall("read").unwrap();
    c.bench_function("importance_query", |b| {
        b.iter(|| metrics.importance(std::hint::black_box(read)))
    });

    let supported: std::collections::HashSet<u32> = (0..250).collect();
    c.bench_function("weighted_completeness_250_syscalls", |b| {
        b.iter(|| metrics.syscall_completeness(std::hint::black_box(&supported)))
    });

    // The suggest sweep: the standalone completeness gain of every
    // unsupported syscall against a top-60 base — the inner loop of
    // `apistudy suggest` and of each greedy planning round. `scratch` is
    // the replaced implementation (clone the support set, recompute
    // completeness from scratch per candidate); `incremental` probes the
    // completeness engine, paying only for the counters each candidate
    // actually touches. The smoke gate in `greedy_smoke` enforces the
    // ratio; these benches record it.
    let base: std::collections::HashSet<u32> = metrics
        .importance_ranking(ApiKind::Syscall)
        .into_iter()
        .take(60)
        .filter_map(|(api, _)| match api {
            Api::Syscall(nr) => Some(nr),
            _ => None,
        })
        .collect();
    let candidates: Vec<u32> = data
        .catalog
        .syscalls
        .iter()
        .map(|d| d.number)
        .filter(|nr| !base.contains(nr))
        .collect();
    c.bench_function("greedy_sweep_scratch", |b| {
        b.iter(|| {
            let before = metrics.syscall_completeness(&base);
            let mut acc = 0.0;
            for &nr in std::hint::black_box(&candidates) {
                let mut grown = base.clone();
                grown.insert(nr);
                acc += metrics.syscall_completeness(&grown) - before;
            }
            acc
        })
    });
    c.bench_function("greedy_sweep_incremental", |b| {
        b.iter(|| {
            let mut engine = CompletenessEngine::for_syscalls(&metrics, &base);
            let mut acc = 0.0;
            for &nr in std::hint::black_box(&candidates) {
                acc += engine.probe_gain(Api::Syscall(nr));
            }
            acc
        })
    });

    // The incremental-cache win on the CLI's full fault grid: eleven
    // rates, 0% → 10%, plus the clean baseline. `sweep_cold` rebuilds
    // every point from scratch; `sweep_cached` shares one warm in-memory
    // cache across iterations, so it measures the steady-state sweep
    // (only binaries each FaultPlan mutated re-analyze). The smoke gate
    // in `cache_smoke` enforces the ratio; these benches record it.
    let rates: Vec<f64> = (0..=10).map(|i| i as f64 / 100.0).collect();
    let options = AnalysisOptions::default();
    c.bench_function("sweep_cold", |b| {
        b.iter(|| {
            let cache = AnalysisCache::new(CacheMode::Off);
            corruption_sweep_with(
                std::hint::black_box(&repo),
                options,
                0x5EED,
                &rates,
                &cache,
            )
        })
    });
    let warm = AnalysisCache::new(CacheMode::Mem);
    c.bench_function("sweep_cached", |b| {
        b.iter(|| {
            corruption_sweep_with(
                std::hint::black_box(&repo),
                options,
                0x5EED,
                &rates,
                &warm,
            )
        })
    });
}

/// The dependency-closure fixed point over `BTreeSet<Api>` — the
/// representation the interned bitset replaced. Kept (bench-only) so the
/// `metrics_closure` group records the win against a live baseline rather
/// than a number from an old commit.
fn btreeset_closure(data: &StudyData) -> Vec<BTreeSet<Api>> {
    let dep_indices: Vec<Vec<usize>> = data
        .packages
        .iter()
        .enumerate()
        .map(|(i, p)| {
            p.depends
                .iter()
                .filter_map(|dep| data.by_name.get(dep).copied())
                .filter(|&d| d != i)
                .collect()
        })
        .collect();
    let mut closed: Vec<BTreeSet<Api>> = data
        .packages
        .iter()
        .map(|p| p.footprint.apis.iter().collect())
        .collect();
    loop {
        let mut changed = false;
        for i in 0..closed.len() {
            for &d in &dep_indices[i] {
                if d == i {
                    continue;
                }
                let add: Vec<Api> = closed[d]
                    .iter()
                    .filter(|a| !closed[i].contains(*a))
                    .copied()
                    .collect();
                if !add.is_empty() {
                    closed[i].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    closed
}

/// The bitset representation against its `BTreeSet` predecessor on the two
/// hot paths the interner was built for: the `Metrics::new`
/// dependency-closure fixed point and whole-corpus footprint merging.
fn bench_representation(c: &mut Criterion) {
    let scales = [
        ("150", Scale { packages: 150, installations: 50_000 }),
        ("600", Scale { packages: 600, installations: 100_000 }),
    ];
    for (label, scale) in scales {
        let repo = SynthRepo::new(scale, CalibrationSpec::default(), 5);
        let data = StudyData::from_synth(&repo);

        let mut group = c.benchmark_group("metrics_closure");
        group.bench_function(&format!("bitset_{label}"), |b| {
            b.iter(|| Metrics::new(std::hint::black_box(&data)))
        });
        group.bench_function(&format!("btreeset_{label}"), |b| {
            b.iter(|| btreeset_closure(std::hint::black_box(&data)))
        });
        group.finish();

        let tree_footprints: Vec<BTreeSet<Api>> = data
            .packages
            .iter()
            .map(|p| p.footprint.apis.iter().collect())
            .collect();
        let mut group = c.benchmark_group("footprint_merge");
        group.bench_function(&format!("bitset_{label}"), |b| {
            b.iter(|| {
                let mut acc = ApiSet::new();
                for p in &data.packages {
                    acc.union_with(std::hint::black_box(&p.footprint.apis));
                }
                acc
            })
        });
        group.bench_function(&format!("btreeset_{label}"), |b| {
            b.iter(|| {
                let mut acc: BTreeSet<Api> = BTreeSet::new();
                for fp in &tree_footprints {
                    acc.extend(std::hint::black_box(fp).iter().copied());
                }
                acc
            })
        });
        group.finish();
    }
}

/// Fleet seccomp synthesis throughput and the per-filter costs of the
/// two codegen layouts: batch synthesis over the reference corpus
/// (dedup + build + 512-point depth profiles; bit-verification is the
/// CI gate's job, not a throughput measurement), then codegen and
/// worst-case single-eval on the corpus' widest footprint.
fn bench_seccomp(c: &mut Criterion) {
    use apistudy_core::seccomp_bpf::{
        run_filter, BpfProgram, SeccompData, AUDIT_ARCH_X86_64,
    };
    use apistudy_core::{synthesize_fleet, FleetOptions};

    let repo = SynthRepo::new(
        Scale { packages: 150, installations: 14_250 },
        CalibrationSpec::default(),
        2016,
    );
    let data = StudyData::from_synth(&repo);
    let opts = FleetOptions { probe_max_nr: 511, verify: false };
    c.bench_function("seccomp_fleet_150_packages", |b| {
        b.iter(|| synthesize_fleet(std::hint::black_box(&data), opts))
    });

    let widest: Vec<u32> = data
        .packages
        .iter()
        .map(|p| p.footprint.syscalls().collect::<Vec<u32>>())
        .max_by_key(Vec::len)
        .expect("non-empty corpus");

    let mut group = c.benchmark_group("seccomp_codegen");
    group.bench_function("tree", |b| {
        b.iter(|| BpfProgram::try_allow_tree(std::hint::black_box(&widest)))
    });
    group.bench_function("linear", |b| {
        b.iter(|| BpfProgram::try_allow_list(std::hint::black_box(&widest)))
    });
    group.finish();

    // Worst case for both layouts: the highest allowed number walks the
    // whole chain but only log₂(ranges) tree nodes.
    let tree = BpfProgram::try_allow_tree(&widest).expect("tree fits");
    let linear = BpfProgram::try_allow_list(&widest).ok();
    let probe = SeccompData {
        nr: *widest.last().expect("non-empty footprint"),
        arch: AUDIT_ARCH_X86_64,
    };
    let mut group = c.benchmark_group("seccomp_eval_worstcase");
    group.bench_function("tree", |b| {
        b.iter(|| run_filter(std::hint::black_box(&tree), probe))
    });
    if let Some(linear) = &linear {
        group.bench_function("linear", |b| {
            b.iter(|| run_filter(std::hint::black_box(linear), probe))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_substrates, bench_study, bench_representation,
        bench_seccomp
}
criterion_main!(benches);
