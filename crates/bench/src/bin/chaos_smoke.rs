//! CI smoke gate for the syscall-fault injection layer: the bounded
//! fault matrix — **every fault kind × 3 seeds** — in one process,
//! under the tier-1 time budget.
//!
//! Two sub-matrices:
//!
//! - **serve**: a live [`Server`] is hammered with query sessions while
//!   a periodic site-appropriate fault fires (`EINTR`, `EAGAIN`, short
//!   reads/writes, `EMFILE` on `accept4`, `ENOMEM` on `epoll_ctl`).
//!   Gate: zero panics, every successful reply **bit-identical** to the
//!   fault-free baseline, failed rounds classified (never hung), and a
//!   clean health probe after each plan is disarmed.
//! - **journal/store**: `ENOSPC`/`EIO`/`EINTR`/short-write injections
//!   on append and fsync. Gate: absorbable faults leave the file
//!   byte-identical; fatal ones fail classified, fail-stop the handle,
//!   and resume + re-append lands byte-identical to the control file.
//!
//! The matrix is deterministic (seeded plans, no wall-clock coupling),
//! so a behavior change here is a code change, not noise.
//!
//! Usage: `chaos_smoke [--no-json]`.

use std::time::{Duration, Instant};

use apistudy_core::sysfault::{self, SysFaultKind, SysFaultPlan};
use apistudy_core::{
    Client, Journal, JournalError, JournalRecord, Request, Response,
    RetryPolicy, RunFingerprint, RunKind, ServeOptions, Server, Study,
};
use apistudy_corpus::Scale;

/// Same corpus as `serve_smoke` / the serve_chaos suite.
fn reference_study() -> Study {
    Study::run(Scale { packages: 150, installations: 14_250 }, 2016)
}

const SEEDS: [u64; 3] = [0xFA01, 0xFA02, 0xFA03];

/// Query rounds per (kind, seed) serve cell.
const ROUNDS: usize = 8;

/// Periodic site-appropriate serve triggers per fault kind. Periods are
/// co-prime with the reactor's 5-syscall idle accept cycle so a fixed
/// period cannot resonate with one callsite (see serve_chaos).
fn serve_plan(kind: SysFaultKind, seed: u64) -> SysFaultPlan {
    let plan = SysFaultPlan { seed, ..SysFaultPlan::default() };
    match kind {
        SysFaultKind::Eintr => plan.every("*", kind, 7),
        SysFaultKind::Eagain => plan
            .every("read", kind, 3)
            .every("write", kind, 3)
            .every("accept4", kind, 2),
        SysFaultKind::ShortIo => {
            plan.every("read", kind, 2).every("write", kind, 2)
        }
        SysFaultKind::Emfile => plan.every("accept4", kind, 3),
        SysFaultKind::Enomem => plan
            .every("epoll_ctl(ADD)", kind, 4)
            .every("epoll_ctl(MOD)", kind, 7),
        // Storage-only kinds get the full-chaos treatment instead:
        // plausibility keeps them off sites that cannot produce them.
        SysFaultKind::Enospc | SysFaultKind::Eio | SysFaultKind::Auto => {
            plan.every("*", SysFaultKind::Auto, 7)
        }
    }
}

fn policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        attempts: 4,
        base: Duration::from_millis(15),
        cap: Duration::from_millis(120),
        seed,
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(1);
}

/// One query session; returns `(ok_replies, classified_failures)` and
/// checks every successful reply against the baseline bits.
fn session(
    addr: std::net::SocketAddr,
    seed: u64,
    baseline: &[Vec<u8>],
    cell: &str,
) -> (u32, u32) {
    let reqs = [
        Request::Ping,
        Request::Importance { nr: 1 },
        Request::Completeness { supported: vec![0, 1, 2, 3, 9, 60] },
        Request::Suggest { supported: vec![0, 1, 2, 3], limit: 3 },
    ];
    let (mut ok, mut classified) = (0u32, 0u32);
    let Ok(mut client) =
        Client::connect(addr, policy(seed), Duration::from_secs(5))
    else {
        return (0, reqs.len() as u32);
    };
    for (i, req) in reqs.iter().enumerate() {
        match client.call_retrying(req) {
            Ok(Response::Err { .. }) | Err(_) => classified += 1,
            Ok(resp) => {
                if resp.encode() != baseline[i] {
                    fail(&format!(
                        "{cell}: reply {i} diverged from the fault-free \
                         baseline"
                    ));
                }
                ok += 1;
            }
        }
    }
    (ok, classified)
}

fn serve_matrix() -> (u64, u64) {
    let server = Server::start(
        reference_study(),
        None,
        ServeOptions {
            port: 0,
            max_conns: 32,
            request_deadline: Duration::from_millis(1_500),
            idle_deadline: Duration::from_millis(1_500),
            workers: 2,
            cache: true,
        },
    )
    .unwrap_or_else(|e| fail(&format!("server start: {e}")));
    let addr = server.addr();

    // Fault-free baseline bits.
    sysfault::clear();
    let reqs = [
        Request::Ping,
        Request::Importance { nr: 1 },
        Request::Completeness { supported: vec![0, 1, 2, 3, 9, 60] },
        Request::Suggest { supported: vec![0, 1, 2, 3], limit: 3 },
    ];
    let mut client =
        Client::connect(addr, policy(1), Duration::from_secs(5))
            .unwrap_or_else(|e| fail(&format!("baseline connect: {e}")));
    let baseline: Vec<Vec<u8>> = reqs
        .iter()
        .map(|r| {
            client
                .call(r)
                .unwrap_or_else(|e| fail(&format!("baseline call: {e}")))
                .encode()
        })
        .collect();
    drop(client);

    let kinds = [
        SysFaultKind::Eintr,
        SysFaultKind::Eagain,
        SysFaultKind::ShortIo,
        SysFaultKind::Emfile,
        SysFaultKind::Enomem,
        SysFaultKind::Auto,
    ];
    let (mut injected_total, mut classified_total) = (0u64, 0u64);
    for kind in kinds {
        for seed in SEEDS {
            let cell = format!("serve {}x{seed:#x}", kind.label());
            sysfault::install(serve_plan(kind, seed));
            let (mut ok, mut classified) = (0u32, 0u32);
            for _ in 0..ROUNDS {
                let (o, c) = session(addr, seed, &baseline, &cell);
                ok += o;
                classified += c;
            }
            let ledger = sysfault::clear();
            injected_total += ledger.len() as u64;
            classified_total += u64::from(classified);
            if ledger.is_empty() {
                fail(&format!("{cell}: plan never fired"));
            }
            // Absorbable chaos with retries must keep availability up:
            // most calls land, and none may drift.
            if ok < (ROUNDS as u32 * 4) / 2 {
                fail(&format!(
                    "{cell}: only {ok}/{} calls succeeded \
                     ({classified} classified)",
                    ROUNDS * 4
                ));
            }
            // Disarmed health probe: the daemon shrugged it all off.
            let (o, _) = session(addr, seed, &baseline, &cell);
            if o != 4 {
                fail(&format!("{cell}: daemon unhealthy after disarm"));
            }
        }
    }
    server.shutdown();
    let stats = server.wait();
    println!(
        "serve matrix: {} cells, {injected_total} injected, \
         {classified_total} classified client-side, {} io-errors and \
         {} accept-pauses server-side",
        kinds.len() * SEEDS.len(),
        stats.io_errors,
        stats.accept_pauses,
    );
    (injected_total, classified_total)
}

fn fp() -> RunFingerprint {
    RunFingerprint {
        kind: RunKind::CorruptionSweep,
        corpus: 0xC0FFEE,
        options: 1,
        catalog: 2,
        plan: 3,
    }
}

fn storage_matrix() -> u64 {
    let dir = std::env::temp_dir()
        .join(format!("apistudy-chaos-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| fail(&format!("scratch dir: {e}")));
    let records: Vec<JournalRecord> = (0..5)
        .map(|i| JournalRecord::SupportSet((0..=i).collect()))
        .collect();

    let control_path = dir.join("control.apsj");
    let mut control = Journal::create(&control_path, &fp())
        .unwrap_or_else(|e| fail(&format!("control create: {e}")));
    for rec in &records {
        control
            .append(rec)
            .unwrap_or_else(|e| fail(&format!("control append: {e}")));
    }
    drop(control);
    let control_bytes = std::fs::read(&control_path)
        .unwrap_or_else(|e| fail(&format!("read control: {e}")));

    let kinds = [
        SysFaultKind::Eintr,
        SysFaultKind::ShortIo,
        SysFaultKind::Enospc,
        SysFaultKind::Eio,
    ];
    let mut injected_total = 0u64;
    for site in ["journal.write", "journal.fsync"] {
        for kind in kinds {
            for (i, seed) in SEEDS.iter().enumerate() {
                // Seeds walk the fault across append positions.
                let k = (i as u64) + 2;
                let cell = format!("{site}:{}@{k} seed {seed:#x}", kind.label());
                let path = dir.join(format!(
                    "cell-{}-{}-{k}.apsj",
                    site.replace('.', "_"),
                    kind.label()
                ));
                let _ = std::fs::remove_file(&path);
                sysfault::install(
                    SysFaultPlan { seed: *seed, ..SysFaultPlan::default() }
                        .at_site(site, kind, k),
                );
                let mut journal = Journal::create(&path, &fp())
                    .unwrap_or_else(|e| fail(&format!("{cell}: create: {e}")));
                let mut failed_at = None;
                for (j, rec) in records.iter().enumerate() {
                    match journal.append(rec) {
                        Ok(()) => {}
                        Err(JournalError::Io(_)) => {
                            failed_at = Some(j);
                            break;
                        }
                        Err(other) => {
                            fail(&format!("{cell}: wrong class: {other}"))
                        }
                    }
                }
                let absorbable = matches!(
                    kind,
                    SysFaultKind::Eintr | SysFaultKind::ShortIo
                );
                // Absorbable faults never surface; on the fsync site a
                // short-I/O trigger is also just retried.
                if absorbable && failed_at.is_some() {
                    fail(&format!("{cell}: absorbable fault surfaced"));
                }
                if let Some(j) = failed_at {
                    if !journal.poisoned()
                        || !matches!(
                            journal.append(&records[j]),
                            Err(JournalError::FailStop)
                        )
                    {
                        fail(&format!("{cell}: no fail-stop after the fault"));
                    }
                    drop(journal);
                    injected_total += sysfault::clear().len() as u64;
                    let (mut resumed, recovered) =
                        Journal::resume(&path, &fp()).unwrap_or_else(|e| {
                            fail(&format!("{cell}: resume: {e}"))
                        });
                    for rec in &records[recovered.len()..] {
                        resumed.append(rec).unwrap_or_else(|e| {
                            fail(&format!("{cell}: re-append: {e}"))
                        });
                    }
                    drop(resumed);
                } else {
                    drop(journal);
                    injected_total += sysfault::clear().len() as u64;
                }
                let bytes = std::fs::read(&path)
                    .unwrap_or_else(|e| fail(&format!("{cell}: read: {e}")));
                if bytes != control_bytes {
                    fail(&format!("{cell}: final file diverged from control"));
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "storage matrix: {} cells, {injected_total} injected, every \
         file byte-identical to control after resume",
        2 * kinds.len() * SEEDS.len()
    );
    injected_total
}

fn record(results: &[(&str, u128)]) -> std::io::Result<()> {
    let path = "BENCH_pipeline.json";
    let text = std::fs::read_to_string(path)?;
    let mut out = String::new();
    let mut pending: Vec<(&str, u128)> = results
        .iter()
        .filter(|(k, _)| !text.contains(&format!("\"{k}\"")))
        .copied()
        .collect();
    for line in text.lines() {
        let trimmed = line.trim();
        if let Some((key, value)) = results
            .iter()
            .find(|(k, _)| trimmed.starts_with(&format!("\"{k}\":")))
        {
            let comma = if trimmed.ends_with(',') { "," } else { "" };
            out.push_str(&format!("    \"{key}\": {value}{comma}\n"));
            continue;
        }
        out.push_str(line);
        out.push('\n');
        if trimmed.starts_with("\"results_ns\"") && !pending.is_empty() {
            for (key, value) in pending.drain(..) {
                out.push_str(&format!("    \"{key}\": {value},\n"));
            }
        }
    }
    std::fs::write(path, out)
}

fn main() {
    let write_json = !std::env::args().any(|a| a == "--no-json");

    let t0 = Instant::now();
    let (serve_injected, _) = serve_matrix();
    let serve_ns = t0.elapsed().as_nanos();

    let t1 = Instant::now();
    let storage_injected = storage_matrix();
    let storage_ns = t1.elapsed().as_nanos();

    if serve_injected == 0 || storage_injected == 0 {
        fail("a whole matrix ran without injecting anything");
    }

    let ms = |ns: u128| ns as f64 / 1e6;
    println!("chaos_serve_matrix:   {:>9.1} ms", ms(serve_ns));
    println!("chaos_storage_matrix: {:>9.1} ms", ms(storage_ns));

    if write_json {
        if let Err(e) = record(&[
            ("chaos_serve_matrix", serve_ns),
            ("chaos_storage_matrix", storage_ns),
        ]) {
            eprintln!("could not update BENCH_pipeline.json: {e}");
        }
    }
    println!(
        "PASS: every fault kind x {} seeds, zero panics, replies \
         bit-identical or classified, storage byte-identical after resume",
        SEEDS.len()
    );
}
