//! CI smoke gate for fleet-scale seccomp synthesis.
//!
//! **Gate 1 — equivalence & depth** (150-package reference corpus):
//! synthesizes every package's filter in both layouts and requires
//!
//! - tree and linear verdicts bit-identical to the reference allow-set
//!   for **every** syscall number in `0..=4096` (the fleet verifier),
//! - every tree's executed depth within `2·⌈log₂ ranges⌉ + 8`,
//! - the widest (most fragmented) footprint's tree at least
//!   [`MIN_DEPTH_RATIO`]× shallower than its linear chain.
//!
//! **Gate 2 — batch scale & crash resume** (`--packages N`, default
//! 3000): a full batch synthesis must finish inside
//! [`MAX_BATCH_SECS`]; then the gate re-execs itself as a child whose
//! journaled run is killed mid-batch by `APISTUDY_JOURNAL_CRASH_AFTER`
//! (a `std::process::abort` after half the appends), resumes the torn
//! journal in-process, and requires the resumed report **bit-identical**
//! to the uninterrupted control with every record either replayed or
//! appended exactly once.
//!
//! Measured numbers land in BENCH_pipeline.json's `seccomp` section
//! (suppress with `--no-json`).
//!
//! Usage: `seccomp_smoke [--packages N] [--no-json]`
//! (internal: `--child <journal>` runs the to-be-crashed batch).

use std::path::Path;
use std::process::Command;
use std::time::Instant;

use apistudy_core::{
    synthesize_fleet, synthesize_fleet_journaled, FleetOptions, FleetReport,
    Study,
};
use apistudy_corpus::Scale;

/// The widest corpus footprint's linear max depth over its tree max
/// depth must clear this. Fragmented real footprints measure 6-8×; 4×
/// only trips when the tree degenerates.
const MIN_DEPTH_RATIO: f64 = 4.0;

/// Wall-clock budget for the batch synthesis itself (pipeline
/// measurement excluded): thousands of filters, each probed 4097 times
/// in two layouts and bit-verified, parallelized over the worker pool.
const MAX_BATCH_SECS: f64 = 120.0;

fn reference_study() -> Study {
    Study::run(Scale { packages: 150, installations: 14_250 }, 2016)
}

fn batch_study(packages: usize) -> Study {
    let scale = Scale { packages, installations: 95 * packages as u64 };
    if packages > 1024 {
        // Shard-bounded memory; bit-identical to the in-memory path.
        Study::run_streamed(scale, 2016, 512)
    } else {
        Study::run(scale, 2016)
    }
}

/// Journal stats and replay flags differ by construction between a
/// control run and a crash-resumed run; everything else must not.
fn strip(mut r: FleetReport) -> FleetReport {
    r.journal = None;
    for u in &mut r.unique {
        u.replayed = false;
    }
    r
}

/// Same in-place JSON update idiom as the other smoke gates: rewrite
/// only the measured keys, leave the hand-maintained rest untouched.
fn record(results: &[(&str, u128)]) -> std::io::Result<()> {
    let path = "BENCH_pipeline.json";
    let text = std::fs::read_to_string(path)?;
    let mut out = String::new();
    for line in text.lines() {
        let trimmed = line.trim();
        if let Some((key, value)) = results
            .iter()
            .find(|(k, _)| trimmed.starts_with(&format!("\"{k}\":")))
        {
            let indent = &line[..line.len() - trimmed.len()];
            let comma = if trimmed.ends_with(',') { "," } else { "" };
            out.push_str(&format!("{indent}\"{key}\": {value}{comma}\n"));
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// Child mode: run the journaled batch; the parent's
/// `APISTUDY_JOURNAL_CRASH_AFTER` aborts this process mid-append.
fn run_child(journal: &Path, packages: usize) -> ! {
    let study = batch_study(packages);
    match synthesize_fleet_journaled(
        study.data(),
        study.repo(),
        FleetOptions::default(),
        journal,
        false,
    ) {
        Ok(_) => std::process::exit(0),
        Err(e) => {
            eprintln!("child batch failed: {e}");
            std::process::exit(1)
        }
    }
}

fn equivalence_gate() -> (u32, u32, f64) {
    let study = reference_study();
    let report = synthesize_fleet(study.data(), FleetOptions::default())
        .expect("reference fleet synthesis (includes 0..=4096 bit-verify)");
    assert!(report.verified);
    for u in &report.unique {
        let bound = if u.ranges <= 1 {
            8
        } else {
            2 * (32 - (u.ranges - 1).leading_zeros()) + 8
        };
        assert!(
            u.tree_max_depth <= bound,
            "filter {:#018x}: {} ranges, depth {} over bound {bound}",
            u.allow_hash,
            u.ranges,
            u.tree_max_depth
        );
    }
    let widest = report.widest().expect("non-empty corpus");
    assert!(
        widest.linear_len.is_some(),
        "reference corpus' widest footprint must still fit the chain"
    );
    let ratio =
        f64::from(widest.linear_max_depth) / f64::from(widest.tree_max_depth);
    println!(
        "equivalence: {} packages, {} unique filters bit-verified for \
         every nr 0..=4096; widest footprint ({} ranges) tree depth {} \
         vs linear {} ({ratio:.1}x)",
        report.packages,
        report.unique.len(),
        widest.ranges,
        widest.tree_max_depth,
        widest.linear_max_depth,
    );
    assert!(
        ratio >= MIN_DEPTH_RATIO,
        "depth ratio {ratio:.1} under the {MIN_DEPTH_RATIO} gate"
    );
    (report.max_tree_depth(), report.max_linear_depth(), ratio)
}

fn crash_resume_gate(
    packages: usize,
    control: &FleetReport,
) -> apistudy_core::JournalStats {
    let dir = std::env::temp_dir()
        .join(format!("apistudy-seccomp-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let journal = dir.join("fleet.apsj");

    // Kill the child halfway through its appends: the torn journal must
    // hold a clean prefix and nothing else.
    let crash_after = (control.unique.len() / 2).max(1);
    let exe = std::env::current_exe().expect("own path");
    let status = Command::new(&exe)
        .arg("--child")
        .arg(&journal)
        .args(["--packages", &packages.to_string()])
        .env("APISTUDY_JOURNAL_CRASH_AFTER", crash_after.to_string())
        .status()
        .expect("spawn crash child");
    assert!(
        !status.success(),
        "child was supposed to abort mid-batch, exited {status}"
    );

    let study = batch_study(packages);
    let resumed = synthesize_fleet_journaled(
        study.data(),
        study.repo(),
        FleetOptions::default(),
        &journal,
        true,
    )
    .expect("resume the torn journal");
    let stats = resumed.journal.expect("journaled run reports stats");
    assert!(stats.replayed > 0, "crash left no replayable prefix");
    assert!(stats.appended > 0, "nothing left to recompute after crash");
    assert_eq!(
        stats.replayed + stats.appended,
        control.unique.len() as u64,
        "every unique filter exactly once"
    );
    assert_eq!(
        strip(resumed),
        strip(control.clone()),
        "crash-resumed report must be bit-identical to the control"
    );
    let _ = std::fs::remove_dir_all(&dir);
    stats
}

fn main() {
    let mut packages = 3000usize;
    let mut write_json = true;
    let mut child: Option<String> = None;
    let mut args = std::env::args().skip(1);
    let parse = |v: Option<String>| -> usize {
        v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
            eprintln!(
                "usage: seccomp_smoke [--packages N] [--no-json]"
            );
            std::process::exit(2)
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--packages" => packages = parse(args.next()),
            "--no-json" => write_json = false,
            "--child" => child = args.next(),
            _ => {
                parse(None);
            }
        }
    }
    if let Some(journal) = child {
        run_child(Path::new(&journal), packages);
    }

    let (tree_max, linear_max, ratio) = equivalence_gate();

    let study = batch_study(packages);
    let started = Instant::now();
    let control = synthesize_fleet(study.data(), FleetOptions::default())
        .expect("batch fleet synthesis");
    let elapsed = started.elapsed();
    let throughput = f64::from(control.packages) / elapsed.as_secs_f64();
    println!(
        "batch: {} packages -> {} unique filters ({:.1}x dedup) \
         synthesized + bit-verified in {:.2}s ({throughput:.0} filters/s), \
         {} tree insns deduped + {} prefix-shareable, attack surface \
         -{:.1}%",
        control.packages,
        control.unique.len(),
        control.dedup_ratio(),
        elapsed.as_secs_f64(),
        control.total_tree_insns_deduped(),
        control.prefix_shared_insns(),
        100.0 * control.weighted_attack_surface_reduction(),
    );
    assert!(
        elapsed.as_secs_f64() <= MAX_BATCH_SECS,
        "batch took {:.1}s, budget {MAX_BATCH_SECS}s",
        elapsed.as_secs_f64()
    );

    let stats = crash_resume_gate(packages, &control);
    println!(
        "crash resume: abort mid-batch -> {} replayed + {} appended, \
         bit-identical",
        stats.replayed, stats.appended
    );

    if write_json {
        if let Err(e) = record(&[
            ("seccomp_batch_packages", u128::from(control.packages)),
            ("seccomp_batch_unique", control.unique.len() as u128),
            ("seccomp_batch_synth_ms", elapsed.as_millis()),
            ("seccomp_batch_filters_per_s", throughput as u128),
            (
                "seccomp_dedup_ratio_x100",
                (control.dedup_ratio() * 100.0) as u128,
            ),
            (
                "seccomp_prefix_shared_insns",
                u128::from(control.prefix_shared_insns()),
            ),
            ("seccomp_tree_max_depth", u128::from(tree_max)),
            ("seccomp_linear_max_depth", u128::from(linear_max)),
            ("seccomp_depth_ratio_x100", (ratio * 100.0) as u128),
            (
                "seccomp_attack_surface_pct_x10",
                (control.weighted_attack_surface_reduction() * 1000.0)
                    as u128,
            ),
        ]) {
            eprintln!("could not update BENCH_pipeline.json: {e}");
        }
    }

    println!(
        "PASS: tree == linear == reference for all nr 0..=4096; depth \
         ratio >= {MIN_DEPTH_RATIO}; {packages}-package batch under \
         {MAX_BATCH_SECS}s; crash resume bit-identical"
    );
}
