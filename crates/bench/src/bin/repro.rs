//! `repro` — regenerate the paper's tables and figures from a fresh
//! synthetic corpus.
//!
//! Usage:
//!
//! ```text
//! repro [--scale test|medium|paper] [--seed N] [all | <artifact ids...>]
//! ```
//!
//! Artifact ids are the paper's: `fig1`–`fig8`, `tab1`–`tab11`,
//! `libc-split`, `uniqueness`, `ablation`. Default: `all` at test scale.
//! `--export-dataset PATH` additionally writes the measured dataset CSV.

use apistudy_bench::{render, Ctx, ARTIFACT_IDS};
use apistudy_core::Study;
use apistudy_corpus::Scale;

fn main() {
    let mut scale = Scale::test();
    let mut seed = 2016u64;
    let mut export: Option<String> = None;
    let mut figures_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = match v.as_str() {
                    "test" => Scale::test(),
                    "medium" => Scale::medium(),
                    "paper" => Scale::paper(),
                    other => {
                        eprintln!("unknown scale {other:?} (test|medium|paper)");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed needs an integer");
                        std::process::exit(2);
                    });
            }
            "--export-figures" => {
                figures_dir = args.next();
                if figures_dir.is_none() {
                    eprintln!("--export-figures needs a directory");
                    std::process::exit(2);
                }
            }
            "--export-dataset" => {
                export = args.next();
                if export.is_none() {
                    eprintln!("--export-dataset needs a path");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--scale test|medium|paper] [--seed N] \
                     [all | ids...]\nids: {}",
                    ARTIFACT_IDS.join(" ")
                );
                return;
            }
            other => ids.push(other.to_owned()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = ARTIFACT_IDS.iter().map(|s| s.to_string()).collect();
    }

    eprintln!(
        "generating corpus: {} packages, {} installations (seed {seed})...",
        scale.packages, scale.installations
    );
    let start = std::time::Instant::now();
    let study = Study::run(scale, seed);
    eprintln!(
        "pipeline done in {:.1}s; rendering {} artifact(s)",
        start.elapsed().as_secs_f64(),
        ids.len()
    );
    if let Some(path) = &export {
        let ds = apistudy_core::dataset::Dataset::from_study(study.data());
        let text = ds.to_csv();
        match std::fs::write(path, &text) {
            Ok(()) => eprintln!(
                "dataset: {} rows, {} bytes -> {path}",
                ds.rows.len(),
                text.len()
            ),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    let ctx = Ctx::new(&study);
    if let Some(dir) = &figures_dir {
        match apistudy_bench::artifacts::export_figures(
            &ctx,
            std::path::Path::new(dir),
        ) {
            Ok(files) => eprintln!("figures: {} -> {dir}", files.join(", ")),
            Err(e) => {
                eprintln!("cannot export figures to {dir}: {e}");
                std::process::exit(1);
            }
        }
    }
    let mut failed = false;
    for id in &ids {
        match render(&ctx, id) {
            Some(text) => {
                println!("{text}");
            }
            None => {
                eprintln!("unknown artifact id {id:?}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
