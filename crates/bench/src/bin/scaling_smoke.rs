//! CI smoke gate and measurement harness for the streaming pipeline's
//! scaling curve.
//!
//! Two modes:
//!
//! - `scaling_smoke --measure N` — one sharded run (shard size 512) over
//!   an `N`-package corpus, printing a JSON line with the wall-clock time
//!   and the process peak RSS (`VmHWM`). Peak RSS is process-monotonic,
//!   so one scale per process: the driver runs this binary once per rep
//!   and takes medians across processes.
//!
//! - `scaling_smoke` (the CI gate) — first proves the sharded path
//!   bit-identical to the in-memory path at 600 packages (packages,
//!   attribution, per-syscall importance bits, weighted-completeness
//!   bits), then runs 3 000 packages sharded and fails unless it lands
//!   under both the wall-clock and the peak-RSS budget. The identity
//!   check runs first so the in-memory 600-package run's RSS is already
//!   counted in `VmHWM` — the budget covers the whole process.
//!
//! Corpus density follows one rule across every scale: 100 survey
//! installations per package, seed 2016 — so the recorded curve points
//! compose with each other.

use std::collections::HashSet;
use std::time::Instant;

use apistudy_analysis::AnalysisOptions;
use apistudy_catalog::Api;
use apistudy_core::{
    diagnostics::peak_rss_kb, study_sharded, Metrics, StudyData,
};
use apistudy_corpus::{CalibrationSpec, Scale, SynthRepo};

/// The production shard size (`DEFAULT_SHARD_SIZE` in `core::stream`).
const SHARD: usize = 512;
const SEED: u64 = 2016;

/// Gate corpus: large enough that a regression to whole-corpus
/// materialization shows in RSS, small enough for every CI push.
const GATE_PACKAGES: usize = 3_000;
/// Debug/CI machines are slow; the release-profile run is ~20× faster.
const WALL_BUDGET_MS: u128 = 120_000;
/// The paper-scale (30 976 package) budget, applied already at the
/// gate scale: the whole point of sharding is that RSS stops tracking
/// corpus size.
const RSS_BUDGET_KB: u64 = 1_500_000;

fn scale(packages: usize) -> Scale {
    Scale { packages, installations: packages as u64 * 100 }
}

fn run_sharded(packages: usize, shard_size: usize) -> StudyData {
    let repo =
        SynthRepo::new(scale(packages), CalibrationSpec::default(), SEED);
    study_sharded(&repo, AnalysisOptions::default(), shard_size, None)
}

/// One scaling-curve sample: run, then report the process peak.
fn measure(packages: usize) {
    let start = Instant::now();
    let data = run_sharded(packages, SHARD);
    let wall_ms = start.elapsed().as_millis();
    println!(
        "{{\"packages\": {}, \"wall_ms\": {}, \"peak_rss_kb\": {}, \
         \"analyzed_binaries\": {}}}",
        data.packages.len(),
        wall_ms,
        peak_rss_kb(),
        data.diagnostics.analyzed_binaries,
    );
}

fn assert_bit_identical(inmem: &StudyData, sharded: &StudyData) {
    assert_eq!(inmem.packages, sharded.packages, "package records diverged");
    assert_eq!(inmem.attribution, sharded.attribution, "attribution diverged");
    assert_eq!(&inmem.census, &sharded.census, "census diverged");
    assert_eq!(
        inmem.unresolved_syscall_sites, sharded.unresolved_syscall_sites,
        "unresolved totals diverged"
    );
    let mi = Metrics::new(inmem);
    let ms = Metrics::new(sharded);
    for def in inmem.catalog.syscalls.iter() {
        let api = Api::Syscall(def.number);
        assert_eq!(
            mi.importance(api).to_bits(),
            ms.importance(api).to_bits(),
            "importance bits diverged for {}",
            def.name
        );
    }
    for top in [50u32, 150, 250] {
        let supported: HashSet<u32> = (0..top).collect();
        assert_eq!(
            mi.syscall_completeness(&supported).to_bits(),
            ms.syscall_completeness(&supported).to_bits(),
            "weighted-completeness bits diverged at top-{top}"
        );
    }
}

fn check() {
    // 1. Bit-identity at 600 (shard size 256 → three shards, short tail).
    let repo =
        SynthRepo::new(scale(600), CalibrationSpec::default(), SEED);
    let inmem = StudyData::from_synth(&repo);
    let sharded = study_sharded(&repo, AnalysisOptions::default(), 256, None);
    assert_bit_identical(&inmem, &sharded);
    drop((inmem, sharded, repo));
    println!("identity: sharded == in-memory at 600 packages (bit-exact)");

    // 2. The gate corpus under budget.
    let start = Instant::now();
    let data = run_sharded(GATE_PACKAGES, SHARD);
    let wall_ms = start.elapsed().as_millis();
    let rss_kb = peak_rss_kb();
    println!(
        "gate: {} packages sharded-{SHARD} in {wall_ms} ms, \
         peak RSS {:.0} MiB",
        data.packages.len(),
        rss_kb as f64 / 1024.0
    );
    assert_eq!(data.packages.len(), GATE_PACKAGES);
    if wall_ms > WALL_BUDGET_MS {
        eprintln!(
            "FAIL: {GATE_PACKAGES} packages took {wall_ms} ms \
             (budget {WALL_BUDGET_MS} ms)"
        );
        std::process::exit(1);
    }
    // `VmHWM` reads 0 off Linux; the RSS leg of the gate is a no-op there.
    if rss_kb > RSS_BUDGET_KB {
        eprintln!(
            "FAIL: peak RSS {rss_kb} kB (budget {RSS_BUDGET_KB} kB) — \
             is the pipeline materializing more than one shard?"
        );
        std::process::exit(1);
    }
    println!(
        "PASS: streaming pipeline bit-identical at 600 and within \
         wall/RSS budget at {GATE_PACKAGES}"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--measure") => {
            let packages = args
                .get(1)
                .and_then(|s| s.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    eprintln!("usage: scaling_smoke [--measure N]");
                    std::process::exit(2)
                });
            measure(packages);
        }
        None => check(),
        Some(_) => {
            eprintln!("usage: scaling_smoke [--measure N]");
            std::process::exit(2);
        }
    }
}
