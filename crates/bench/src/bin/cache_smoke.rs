//! CI smoke gate for the incremental analysis cache.
//!
//! Runs the 11-point corruption sweep at 150 packages twice — once with
//! the cache off (cold) and once with a shared in-memory cache (warm) —
//! plus a single clean pipeline run for scale, taking the median of
//! several repetitions of each. Prints the medians, appends them to
//! `BENCH_pipeline.json` (keys `sweep_cold` / `sweep_cached`), and exits
//! non-zero unless the cached sweep is at least [`MIN_SPEEDUP`]× faster
//! than the cold one, so a regression that quietly disables the cache
//! fails the job instead of just slowing it.
//!
//! Usage: `cache_smoke [reps] [--no-json]` (reps defaults to 3).

use std::time::Instant;

use apistudy_analysis::AnalysisOptions;
use apistudy_core::{
    cache::{AnalysisCache, CacheMode},
    corruption_sweep_with,
    pipeline::StudyData,
};
use apistudy_corpus::{CalibrationSpec, Scale, SynthRepo};

/// The gate: cached sweep must beat the cold sweep by at least this
/// factor at 150 packages. The measured ratio is far higher (most of a
/// sweep point is byte-identical to the baseline); 3× leaves headroom
/// for noisy CI machines without letting a disabled cache pass.
const MIN_SPEEDUP: f64 = 3.0;

/// Same corpus as the `pipeline_150_packages` bench, so the recorded
/// numbers compose with the existing baseline.
fn repo() -> SynthRepo {
    SynthRepo::new(
        Scale { packages: 150, installations: 50_000 },
        CalibrationSpec::default(),
        5,
    )
}

/// Eleven rates, 0% → 10% in 1% steps — the CLI's `faults` grid.
fn rates() -> Vec<f64> {
    (0..=10).map(|i| i as f64 / 100.0).collect()
}

fn median(mut samples: Vec<u128>) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn time_reps(reps: usize, mut f: impl FnMut()) -> u128 {
    let samples = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    median(samples)
}

/// Updates (or inserts) keys in BENCH_pipeline.json's `results_ns` map
/// without disturbing the rest of the hand-maintained file.
fn record(results: &[(&str, u128)]) -> std::io::Result<()> {
    let path = "BENCH_pipeline.json";
    let text = std::fs::read_to_string(path)?;
    let mut out = String::new();
    let mut pending: Vec<(&str, u128)> = results
        .iter()
        .filter(|(k, _)| !text.contains(&format!("\"{k}\"")))
        .copied()
        .collect();
    for line in text.lines() {
        let trimmed = line.trim();
        if let Some((key, value)) = results
            .iter()
            .find(|(k, _)| trimmed.starts_with(&format!("\"{k}\":")))
        {
            let comma = if trimmed.ends_with(',') { "," } else { "" };
            out.push_str(&format!("    \"{key}\": {value}{comma}\n"));
            continue;
        }
        // New keys slot in right after the map opens.
        out.push_str(line);
        out.push('\n');
        if trimmed.starts_with("\"results_ns\"") && !pending.is_empty() {
            for (key, value) in pending.drain(..) {
                out.push_str(&format!("    \"{key}\": {value},\n"));
            }
        }
    }
    std::fs::write(path, out)
}

fn main() {
    let mut reps = 3usize;
    let mut write_json = true;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--no-json" => write_json = false,
            other => {
                reps = other.parse().unwrap_or_else(|_| {
                    eprintln!("usage: cache_smoke [reps] [--no-json]");
                    std::process::exit(2)
                })
            }
        }
    }
    let repo = repo();
    let rates = rates();
    let options = AnalysisOptions::default();

    let single = time_reps(reps, || {
        std::hint::black_box(StudyData::from_synth_with(&repo, options));
    });
    let cold = time_reps(reps, || {
        let cache = AnalysisCache::new(CacheMode::Off);
        std::hint::black_box(corruption_sweep_with(
            &repo, options, 0x5EED, &rates, &cache,
        ));
    });
    // One cache across the repetitions: the first rep warms it, the
    // median then measures the steady-state incremental sweep — the
    // state every run after the first sees in `mem` mode, and every run
    // including the first sees in `disk` mode after one prior process.
    let cache = AnalysisCache::new(CacheMode::Mem);
    let cached = time_reps(reps.max(2), || {
        std::hint::black_box(corruption_sweep_with(
            &repo, options, 0x5EED, &rates, &cache,
        ));
    });

    let ms = |ns: u128| ns as f64 / 1e6;
    let speedup = cold as f64 / cached as f64;
    let vs_single = cached as f64 / single as f64;
    println!("pipeline_150_packages (single clean run): {:>9.1} ms", ms(single));
    println!("sweep_cold   (11 points + baseline, off): {:>9.1} ms", ms(cold));
    println!("sweep_cached (11 points + baseline, mem): {:>9.1} ms", ms(cached));
    println!("cached vs cold sweep: {speedup:.1}x");
    println!("cached sweep vs single clean run: {vs_single:.2}x");

    if write_json {
        if let Err(e) = record(&[
            ("sweep_cold", cold),
            ("sweep_cached", cached),
        ]) {
            eprintln!("could not update BENCH_pipeline.json: {e}");
        }
    }

    if speedup < MIN_SPEEDUP {
        eprintln!(
            "FAIL: cached sweep only {speedup:.2}x faster than cold \
             (gate: {MIN_SPEEDUP}x)"
        );
        std::process::exit(1);
    }
    println!("PASS: cached sweep >= {MIN_SPEEDUP}x faster than cold");
}
