//! CI smoke gate for crash-safe sweep resume.
//!
//! Reconstructs the exact on-disk state a `faults --journal` run leaves
//! behind when it dies halfway through the 11-point corruption sweep at
//! 150 packages — a write-ahead journal holding the baseline support set
//! plus the first six sweep points, and a disk analysis cache warmed by
//! exactly those points — then measures three runs:
//!
//! - **cold**: the full sweep from nothing (no journal, cache off);
//! - **resume**: the same sweep resumed from the half journal + half-warm
//!   disk cache (replays 7 records, computes the 5-point tail);
//! - **full replay**: resuming a complete journal (no corpus re-measured).
//!
//! The gate fails unless resume is at least [`MIN_SPEEDUP`]× faster than
//! cold, the resumed stats are ledger-exact (7 replayed, 5 appended), and
//! every resumed point is bit-identical (f64 bit patterns included) to
//! the uninterrupted run — so a regression that silently recomputes, or
//! worse drifts, fails the job instead of just slowing it.
//!
//! Usage: `resume_smoke [reps] [--no-json]` (reps defaults to 3).

use std::path::Path;
use std::time::Instant;

use apistudy_analysis::AnalysisOptions;
use apistudy_core::{
    cache::{AnalysisCache, CacheMode},
    corruption_sweep_journaled, corruption_sweep_with, DegradationPoint,
};
use apistudy_corpus::{CalibrationSpec, Scale, SynthRepo};

/// The gate: resuming a half-completed sweep must beat the cold sweep by
/// at least this factor. Resume skips the baseline pipeline and six of
/// eleven points outright, and the tail points warm-start from the disk
/// cache, so the measured ratio is far higher; 3× leaves headroom for
/// noisy CI machines without letting a broken resume path pass.
const MIN_SPEEDUP: f64 = 3.0;

/// Bytes before the first record: magic(4) + version(4) + kind(1) +
/// fingerprint(8) + header checksum(8). Kept in sync with
/// `core::journal`; the prepared journal is validated by actually
/// resuming it, so drift here fails loudly.
const JOURNAL_HEADER_LEN: usize = 25;

/// Same corpus as `cache_smoke` / the `pipeline_150_packages` bench, so
/// the recorded numbers compose with the existing baselines.
fn repo() -> SynthRepo {
    SynthRepo::new(
        Scale { packages: 150, installations: 50_000 },
        CalibrationSpec::default(),
        5,
    )
}

/// Eleven rates, 0% → 10% in 1% steps — the CLI's `faults` grid.
fn rates() -> Vec<f64> {
    (0..=10).map(|i| i as f64 / 100.0).collect()
}

const FAULT_SEED: u64 = 0x5EED;

fn median(mut samples: Vec<u128>) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn time_reps(reps: usize, mut f: impl FnMut()) -> u128 {
    let samples = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    median(samples)
}

/// Truncates a copy of `full` after its first `keep` records, emulating
/// a crash between two appends (the torn-tail case is covered by the
/// journal proptests; here the cut lands exactly on a record boundary).
fn truncate_journal(full: &Path, half: &Path, keep: usize) {
    let bytes = std::fs::read(full).expect("read full journal");
    let mut at = JOURNAL_HEADER_LEN;
    for _ in 0..keep {
        let len = u32::from_le_bytes(
            bytes[at..at + 4].try_into().expect("record length"),
        ) as usize;
        at += 4 + 8 + len; // len + checksum + payload
    }
    assert!(at < bytes.len(), "journal shorter than {keep} records");
    std::fs::write(half, &bytes[..at]).expect("write half journal");
}

/// Copies the flat shard-file directory `src` over a fresh `dst`.
fn reset_dir_from(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).expect("create cache dir");
    for entry in std::fs::read_dir(src).expect("read cache snapshot") {
        let entry = entry.expect("snapshot entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name()))
            .expect("copy shard file");
    }
}

/// Updates (or inserts) keys in BENCH_pipeline.json's `results_ns` map
/// without disturbing the rest of the hand-maintained file.
fn record(results: &[(&str, u128)]) -> std::io::Result<()> {
    let path = "BENCH_pipeline.json";
    let text = std::fs::read_to_string(path)?;
    let mut out = String::new();
    let mut pending: Vec<(&str, u128)> = results
        .iter()
        .filter(|(k, _)| !text.contains(&format!("\"{k}\"")))
        .copied()
        .collect();
    for line in text.lines() {
        let trimmed = line.trim();
        if let Some((key, value)) = results
            .iter()
            .find(|(k, _)| trimmed.starts_with(&format!("\"{k}\":")))
        {
            let comma = if trimmed.ends_with(',') { "," } else { "" };
            out.push_str(&format!("    \"{key}\": {value}{comma}\n"));
            continue;
        }
        // New keys slot in right after the map opens.
        out.push_str(line);
        out.push('\n');
        if trimmed.starts_with("\"results_ns\"") && !pending.is_empty() {
            for (key, value) in pending.drain(..) {
                out.push_str(&format!("    \"{key}\": {value},\n"));
            }
        }
    }
    std::fs::write(path, out)
}

fn assert_bit_identical(resumed: &[DegradationPoint], cold: &[DegradationPoint]) {
    assert_eq!(resumed.len(), cold.len(), "point count diverged");
    for (r, c) in resumed.iter().zip(cold) {
        assert_eq!(
            r.rate.to_bits(),
            c.rate.to_bits(),
            "rate bits diverged at {}",
            c.rate
        );
        assert_eq!(
            r.completeness_top.to_bits(),
            c.completeness_top.to_bits(),
            "completeness bits diverged at rate {}",
            c.rate
        );
        assert_eq!(r, c, "point diverged at rate {}", c.rate);
    }
}

fn main() {
    let mut reps = 3usize;
    let mut write_json = true;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--no-json" => write_json = false,
            other => {
                reps = other.parse().unwrap_or_else(|_| {
                    eprintln!("usage: resume_smoke [reps] [--no-json]");
                    std::process::exit(2)
                })
            }
        }
    }
    let repo = repo();
    let rates = rates();
    let options = AnalysisOptions::default();
    let root = std::env::temp_dir()
        .join(format!("apistudy-resume-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create scratch dir");

    // --- Prepare the crash state -------------------------------------
    // A full journaled run yields the reference points and the complete
    // journal; the half journal is its first 7 records (support set +
    // 6 points), byte-identical to what an interrupted run commits.
    let full_journal = root.join("full.journal");
    let (reference, full_stats) = corruption_sweep_journaled(
        &repo,
        options,
        FAULT_SEED,
        &rates,
        &AnalysisCache::new(CacheMode::Off),
        &full_journal,
        false,
    )
    .expect("prepare full journal");
    assert_eq!((full_stats.replayed, full_stats.appended), (0, 12));
    let half_journal = root.join("half.journal");
    truncate_journal(&full_journal, &half_journal, 7);

    // The disk cache an interrupted run leaves behind holds exactly the
    // analyses of the baseline and the first six points — warm it with a
    // sweep over that prefix, then snapshot it so every timed rep starts
    // from the same bytes.
    let cache_snapshot = root.join("cache-snapshot");
    std::fs::create_dir_all(&cache_snapshot).expect("create snapshot dir");
    let warm =
        AnalysisCache::with_dir(CacheMode::Disk, cache_snapshot.clone());
    corruption_sweep_with(&repo, options, FAULT_SEED, &rates[..7], &warm);
    warm.persist().expect("persist warm cache");

    // --- Time the three runs -----------------------------------------
    let cold = time_reps(reps, || {
        let cache = AnalysisCache::new(CacheMode::Off);
        std::hint::black_box(
            corruption_sweep_with(&repo, options, FAULT_SEED, &rates, &cache),
        );
    });

    let work_journal = root.join("work.journal");
    let work_cache = root.join("cache-work");
    let mut resumed_points = Vec::new();
    let mut resumed_stats = None;
    let resume = time_reps(reps, || {
        // Fresh crash state every rep: resuming appends the tail to the
        // journal and persists new analyses, so reuse would quietly turn
        // later reps into full replays.
        std::fs::copy(&half_journal, &work_journal).expect("reset journal");
        reset_dir_from(&cache_snapshot, &work_cache);
        let cache =
            AnalysisCache::with_dir(CacheMode::Disk, work_cache.clone());
        let (points, stats) = corruption_sweep_journaled(
            &repo,
            options,
            FAULT_SEED,
            &rates,
            &cache,
            &work_journal,
            true,
        )
        .expect("resume half journal");
        resumed_stats = Some(stats);
        resumed_points = points;
    });

    let replay = time_reps(reps, || {
        let cache = AnalysisCache::new(CacheMode::Off);
        let (points, stats) = corruption_sweep_journaled(
            &repo,
            options,
            FAULT_SEED,
            &rates,
            &cache,
            &full_journal,
            true,
        )
        .expect("replay full journal");
        assert_eq!((stats.replayed, stats.appended), (12, 0));
        assert_bit_identical(&points, &reference);
    });

    // --- The ledger and the bits, not just the clock ------------------
    let stats = resumed_stats.expect("resume ran");
    assert_eq!(
        (stats.replayed, stats.appended),
        (7, 5),
        "resume must replay support set + 6 points and append 5"
    );
    assert_bit_identical(&resumed_points, &reference);
    assert_eq!(
        std::fs::read(&work_journal).expect("read resumed journal"),
        std::fs::read(&full_journal).expect("read full journal"),
        "resumed journal must be byte-identical to the uninterrupted one"
    );

    let ms = |ns: u128| ns as f64 / 1e6;
    let speedup = cold as f64 / resume as f64;
    println!("sweep_resume_cold (11 points, no journal):   {:>9.1} ms", ms(cold));
    println!("sweep_resume_half (replay 7, compute 5):     {:>9.1} ms", ms(resume));
    println!("sweep_resume_replay (replay 12, compute 0):  {:>9.1} ms", ms(replay));
    println!("resume vs cold sweep: {speedup:.1}x");

    if write_json {
        if let Err(e) = record(&[
            ("sweep_resume_cold", cold),
            ("sweep_resume_half", resume),
            ("sweep_resume_replay", replay),
        ]) {
            eprintln!("could not update BENCH_pipeline.json: {e}");
        }
    }
    let _ = std::fs::remove_dir_all(&root);

    if speedup < MIN_SPEEDUP {
        eprintln!(
            "FAIL: resumed sweep only {speedup:.2}x faster than cold \
             (gate: {MIN_SPEEDUP}x)"
        );
        std::process::exit(1);
    }
    println!(
        "PASS: resumed half-sweep bit-identical and >= {MIN_SPEEDUP}x \
         faster than cold"
    );
}
