//! CI smoke gate for the incremental completeness engine.
//!
//! Runs the suggest sweep — the standalone completeness gain of every
//! unsupported syscall against a top-60 base — at 150 packages two ways:
//! from scratch (clone the support set and recompute weighted
//! completeness per candidate, the implementation the engine replaced)
//! and incrementally (one [`CompletenessEngine`], one `probe_gain` per
//! candidate). Takes the median of several repetitions, verifies the two
//! sweeps agree bit-for-bit, prints the medians, appends them to
//! `BENCH_pipeline.json` (keys `greedy_sweep_scratch` /
//! `greedy_sweep_incremental`), and exits non-zero unless the
//! incremental sweep is at least [`MIN_SPEEDUP`]× faster, so a
//! regression that quietly reverts to from-scratch evaluation fails the
//! job instead of just slowing it.
//!
//! Usage: `greedy_smoke [reps] [--no-json]` (reps defaults to 5).

use std::collections::HashSet;
use std::time::Instant;

use apistudy_catalog::{Api, ApiKind};
use apistudy_core::{CompletenessEngine, Metrics, StudyData};
use apistudy_corpus::{CalibrationSpec, Scale, SynthRepo};

/// The gate: the incremental sweep must beat the from-scratch sweep by
/// at least this factor at 150 packages. The measured ratio is far
/// higher (most probes touch a handful of counters and short-circuit);
/// 10× leaves headroom for noisy CI machines without letting a reverted
/// engine pass.
const MIN_SPEEDUP: f64 = 10.0;

/// Same corpus as the `pipeline_150_packages` bench and `cache_smoke`,
/// so the recorded numbers compose with the existing baseline.
fn repo() -> SynthRepo {
    SynthRepo::new(
        Scale { packages: 150, installations: 50_000 },
        CalibrationSpec::default(),
        5,
    )
}

fn median(mut samples: Vec<u128>) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn time_reps(reps: usize, mut f: impl FnMut()) -> u128 {
    let samples = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    median(samples)
}

/// Updates (or inserts) keys in BENCH_pipeline.json's `results_ns` map
/// without disturbing the rest of the hand-maintained file.
fn record(results: &[(&str, u128)]) -> std::io::Result<()> {
    let path = "BENCH_pipeline.json";
    let text = std::fs::read_to_string(path)?;
    let mut out = String::new();
    let mut pending: Vec<(&str, u128)> = results
        .iter()
        .filter(|(k, _)| !text.contains(&format!("\"{k}\"")))
        .copied()
        .collect();
    for line in text.lines() {
        let trimmed = line.trim();
        if let Some((key, value)) = results
            .iter()
            .find(|(k, _)| trimmed.starts_with(&format!("\"{k}\":")))
        {
            let comma = if trimmed.ends_with(',') { "," } else { "" };
            out.push_str(&format!("    \"{key}\": {value}{comma}\n"));
            continue;
        }
        // New keys slot in right after the map opens.
        out.push_str(line);
        out.push('\n');
        if trimmed.starts_with("\"results_ns\"") && !pending.is_empty() {
            for (key, value) in pending.drain(..) {
                out.push_str(&format!("    \"{key}\": {value},\n"));
            }
        }
    }
    std::fs::write(path, out)
}

fn main() {
    let mut reps = 5usize;
    let mut write_json = true;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--no-json" => write_json = false,
            other => {
                reps = other.parse().unwrap_or_else(|_| {
                    eprintln!("usage: greedy_smoke [reps] [--no-json]");
                    std::process::exit(2)
                })
            }
        }
    }
    let repo = repo();
    let data = StudyData::from_synth(&repo);
    let metrics = Metrics::new(&data);

    let base: HashSet<u32> = metrics
        .importance_ranking(ApiKind::Syscall)
        .into_iter()
        .take(60)
        .filter_map(|(api, _)| match api {
            Api::Syscall(nr) => Some(nr),
            _ => None,
        })
        .collect();
    let candidates: Vec<u32> = data
        .catalog
        .syscalls
        .iter()
        .map(|d| d.number)
        .filter(|nr| !base.contains(nr))
        .collect();

    // Correctness first: the two sweeps must agree bit-for-bit before
    // their timings mean anything.
    let before = metrics.syscall_completeness(&base);
    let scratch_gains: Vec<f64> = candidates
        .iter()
        .map(|&nr| {
            let mut grown = base.clone();
            grown.insert(nr);
            metrics.syscall_completeness(&grown) - before
        })
        .collect();
    let mut engine = CompletenessEngine::for_syscalls(&metrics, &base);
    for (&nr, &scratch) in candidates.iter().zip(&scratch_gains) {
        let probed = engine.probe_gain(Api::Syscall(nr));
        if probed.to_bits() != scratch.to_bits() {
            eprintln!(
                "FAIL: gain mismatch for syscall {nr}: \
                 incremental {probed:e} vs scratch {scratch:e}"
            );
            std::process::exit(1);
        }
    }

    let scratch = time_reps(reps, || {
        let before = metrics.syscall_completeness(&base);
        let mut acc = 0.0;
        for &nr in &candidates {
            let mut grown = base.clone();
            grown.insert(nr);
            acc += metrics.syscall_completeness(&grown) - before;
        }
        std::hint::black_box(acc);
    });
    let incremental = time_reps(reps, || {
        let mut engine = CompletenessEngine::for_syscalls(&metrics, &base);
        let mut acc = 0.0;
        for &nr in &candidates {
            acc += engine.probe_gain(Api::Syscall(nr));
        }
        std::hint::black_box(acc);
    });

    let ms = |ns: u128| ns as f64 / 1e6;
    let speedup = scratch as f64 / incremental as f64;
    println!(
        "greedy_sweep_scratch     ({} candidates): {:>9.3} ms",
        candidates.len(),
        ms(scratch)
    );
    println!(
        "greedy_sweep_incremental ({} candidates): {:>9.3} ms",
        candidates.len(),
        ms(incremental)
    );
    println!("incremental vs scratch sweep: {speedup:.1}x");

    if write_json {
        if let Err(e) = record(&[
            ("greedy_sweep_scratch", scratch),
            ("greedy_sweep_incremental", incremental),
        ]) {
            eprintln!("could not update BENCH_pipeline.json: {e}");
        }
    }

    if speedup < MIN_SPEEDUP {
        eprintln!(
            "FAIL: incremental sweep only {speedup:.2}x faster than scratch \
             (gate: {MIN_SPEEDUP}x)"
        );
        std::process::exit(1);
    }
    println!("PASS: incremental sweep >= {MIN_SPEEDUP}x faster than scratch");
}
