//! CI smoke gate for the epoll-reactor query daemon.
//!
//! **In-process mode** (default): starts [`Server`] over the 150-package
//! reference corpus and drives three waves, failing unless every reply
//! is **bit-identical** to the direct library call:
//!
//! 1. the latency wave — 64 concurrent clients of 32 requests each
//!    (a ping/importance/completeness/suggest mix), gated on
//!    [`MIN_QPS`] and [`MAX_P99_MS`];
//! 2. the batch wave — pipelined [`Request::Batch`] frames, measuring
//!    the amortized sub-request throughput;
//! 3. the 256-client scaling point — a connection count the old
//!    thread-per-connection pool could not admit, which must complete
//!    with **zero** busy rejections and zero dropped connections.
//!
//! **Check mode** (`--check`, used by CI): never rewrites
//! BENCH_pipeline.json; instead fails if the measured numbers regress
//! past the absolute gates *or* fall more than 2x behind the committed
//! baseline keys, so a perf regression can't merge invisibly by
//! overwriting its own reference numbers.
//!
//! **Subprocess mode** (`--bin <path to apistudy>`): additionally boots
//! the real binary with an on-disk footprint store, `kill -9`s it
//! mid-service, restarts it against the same store, and requires the
//! restarted daemon to present the same fingerprint and bit-identical
//! answers to a client reconnecting with backoff — the crash/restart
//! gate, now exercising the reactor accept path. (A separate flag
//! because `CARGO_BIN_EXE_*` is not available to bench binaries; CI
//! passes `./target/release/apistudy`.)
//!
//! Usage: `serve_smoke [--clients N] [--requests N] [--no-json]
//! [--check] [--bin PATH]`.

use std::collections::HashSet;
use std::io::{BufRead as _, BufReader};
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use apistudy_catalog::Api;
use apistudy_core::{
    greedy_suggestions, Client, Metrics, Request, Response, RetryPolicy,
    Server, ServeOptions, Study,
};
use apistudy_corpus::Scale;

/// Aggregate throughput floor on the latency wave. The reactor's inline
/// fast path answers pings and cache hits without a worker round trip,
/// so loopback throughput at 150 packages clears this with headroom;
/// the gate is the ISSUE 9 target (1.5x the thread-per-connection
/// baseline's 11.5k).
const MIN_QPS: f64 = 17_000.0;

/// p99 round-trip ceiling on the latency wave, milliseconds. The
/// thread-per-connection daemon measured 33.7 ms here (head-of-line
/// blocking behind slow queries); the reactor target is a third of
/// that.
const MAX_P99_MS: f64 = 11.0;

/// A `--check` run also compares against the committed
/// BENCH_pipeline.json keys: measured p99 may be at most this factor
/// above the recorded value, and qps at most this factor below.
const CHECK_SLACK: f64 = 2.0;

/// Client count for the scaling wave.
const SCALE_CLIENTS: usize = 256;

/// Requests per client on the scaling wave.
const SCALE_REQUESTS: usize = 8;

/// Same corpus as the serve_chaos suite and the `--scale 150 --seed
/// 2016` command line (`--scale N` implies `installations = 95·N`).
fn reference_study() -> Study {
    Study::run(Scale { packages: 150, installations: 14_250 }, 2016)
}

/// Syscall numbers the importance probes cycle through.
const PROBE_NRS: [u32; 4] = [0, 1, 9, 60];

/// The supported set used for completeness and suggest probes.
fn base_set() -> Vec<u32> {
    vec![0, 1, 2, 3, 9, 60, 231]
}

/// Ground truth computed once from the library, compared bit-for-bit
/// against every reply.
struct Expected {
    fingerprint: u64,
    importance: Vec<(u64, u64)>,
    completeness_bits: u64,
    picks: Vec<(u32, u64)>,
}

fn expected(study: &Study) -> Expected {
    let m = Metrics::new(study.data());
    let set: HashSet<u32> = base_set().into_iter().collect();
    Expected {
        fingerprint: apistudy_core::snapshot_fingerprint(study),
        importance: PROBE_NRS
            .iter()
            .map(|&nr| {
                (
                    m.importance(Api::Syscall(nr)).to_bits(),
                    m.unweighted_importance(Api::Syscall(nr)).to_bits(),
                )
            })
            .collect(),
        completeness_bits: m.syscall_completeness(&set).to_bits(),
        picks: greedy_suggestions(&m, &set, 3)
            .into_iter()
            .map(|(nr, gain)| (nr, gain.to_bits()))
            .collect(),
    }
}

/// The i-th request of the standard probe mix.
fn probe(i: usize) -> Request {
    match i % 8 {
        0 => Request::Ping,
        7 => Request::Suggest { supported: base_set(), limit: 3 },
        3 | 5 => Request::Completeness { supported: base_set() },
        k => Request::Importance { nr: PROBE_NRS[k % PROBE_NRS.len()] },
    }
}

/// Panics unless `resp` is the bit-identical answer to `probe(i)`.
fn verify(i: usize, resp: Response, exp: &Expected) {
    match (i % 8, resp) {
        (0, Response::Pong { fingerprint, .. }) => {
            assert_eq!(fingerprint, exp.fingerprint, "fingerprint drift")
        }
        (7, Response::Suggest { picks }) => {
            assert_eq!(picks, exp.picks, "suggest picks diverged")
        }
        (3 | 5, Response::Completeness { bits }) => assert_eq!(
            bits, exp.completeness_bits,
            "completeness bits diverged"
        ),
        (k, Response::Importance { importance_bits, unweighted_bits }) => {
            let want = exp.importance[k % PROBE_NRS.len()];
            assert_eq!(
                (importance_bits, unweighted_bits),
                want,
                "importance bits diverged for nr {}",
                PROBE_NRS[k % PROBE_NRS.len()]
            );
        }
        (_, other) => panic!("unexpected reply {other:?}"),
    }
}

/// Unmeasured requests each client runs before its timed loop, so the
/// wave measures steady-state serving rather than the thread-spawn and
/// connect stampede (one full probe-mix cycle warms the query cache).
const WARMUP: usize = 8;

/// One client's request loop: returns per-request latencies (ns).
/// Connects, runs [`WARMUP`] unmeasured requests, parks on `gate`
/// until every client is warm, then times `requests` round trips.
/// Panics on any non-bit-identical reply; the panic propagates through
/// the join and fails the gate.
fn client_load(
    addr: SocketAddr,
    seed: u64,
    requests: usize,
    gate: &std::sync::Barrier,
    exp: &Expected,
) -> Vec<u128> {
    let mut c = Client::connect(
        addr,
        RetryPolicy { seed, ..RetryPolicy::default() },
        Duration::from_secs(10),
    )
    .expect("connect to in-process server");
    for i in 0..WARMUP {
        verify(i, c.call(&probe(i)).expect("warm-up request"), exp);
    }
    gate.wait();
    let mut lat = Vec::with_capacity(requests);
    for i in 0..requests {
        let req = probe(i);
        let start = Instant::now();
        let resp = c.call(&req).expect("request failed");
        lat.push(start.elapsed().as_nanos());
        verify(i, resp, exp);
    }
    lat
}

/// One batch client's loop: `rounds` batches of `width` probe-mix
/// sub-requests over a single connection, every reply verified.
fn batch_load(
    addr: SocketAddr,
    seed: u64,
    rounds: usize,
    width: usize,
    exp: &Expected,
) {
    let mut c = Client::connect(
        addr,
        RetryPolicy { seed, ..RetryPolicy::default() },
        Duration::from_secs(10),
    )
    .expect("connect batch client");
    let reqs: Vec<Request> = (0..width).map(probe).collect();
    for _ in 0..rounds {
        let replies = c.call_batch(&reqs).expect("batch round");
        assert_eq!(replies.len(), width, "batch reply count");
        for (i, resp) in replies.into_iter().enumerate() {
            verify(i, resp, exp);
        }
    }
}

fn percentile(sorted: &[u128], p: f64) -> u128 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

const BENCH_JSON: &str = "BENCH_pipeline.json";

/// Updates (or leaves untouched) the `serve` section's measured keys in
/// BENCH_pipeline.json without disturbing the hand-maintained rest.
fn record(results: &[(&str, u128)]) -> std::io::Result<()> {
    let text = std::fs::read_to_string(BENCH_JSON)?;
    let mut out = String::new();
    for line in text.lines() {
        let trimmed = line.trim();
        if let Some((key, value)) = results
            .iter()
            .find(|(k, _)| trimmed.starts_with(&format!("\"{k}\":")))
        {
            let indent = &line[..line.len() - trimmed.len()];
            let comma = if trimmed.ends_with(',') { "," } else { "" };
            out.push_str(&format!("{indent}\"{key}\": {value}{comma}\n"));
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    std::fs::write(BENCH_JSON, out)
}

/// Reads one integer key back out of BENCH_pipeline.json (the same
/// line-oriented convention `record` writes).
fn recorded(key: &str) -> Option<u128> {
    let text = std::fs::read_to_string(BENCH_JSON).ok()?;
    for line in text.lines() {
        if let Some(rest) = line.trim().strip_prefix(&format!("\"{key}\":"))
        {
            return rest.trim().trim_end_matches(',').parse().ok();
        }
    }
    None
}

/// `--check`: compare the measured latency-wave numbers against the
/// committed baseline; a regression past [`CHECK_SLACK`] fails the run
/// even if the absolute gates still pass.
fn check_against_recorded(p99_us: u128, qps: f64) -> bool {
    let mut ok = true;
    if let Some(base) = recorded("serve_p99_us") {
        let cap = base as f64 * CHECK_SLACK;
        println!(
            "check: p99 {p99_us} us vs recorded {base} us (cap {cap:.0})"
        );
        if p99_us as f64 > cap {
            eprintln!("FAIL: p99 regressed past {CHECK_SLACK}x baseline");
            ok = false;
        }
    }
    if let Some(base) = recorded("serve_qps") {
        let floor = base as f64 / CHECK_SLACK;
        println!("check: {qps:.0} qps vs recorded {base} (floor {floor:.0})");
        if qps < floor {
            eprintln!("FAIL: qps regressed past {CHECK_SLACK}x baseline");
            ok = false;
        }
    }
    ok
}

/// Spawns the real binary serving the reference corpus, parses the
/// readiness line into (child, addr, fingerprint).
fn spawn_daemon(bin: &Path, extra: &[&str]) -> (Child, SocketAddr, u64) {
    let mut cmd = Command::new(bin);
    cmd.args(["--scale", "150", "--seed", "2016"]);
    cmd.args(extra);
    cmd.arg("serve");
    cmd.stdout(Stdio::piped());
    cmd.stderr(Stdio::null());
    cmd.env_remove("APISTUDY_JOURNAL_CRASH_AFTER");
    cmd.env_remove("APISTUDY_ITEM_DEADLINE_MS");
    cmd.env_remove("APISTUDY_CACHE");
    let mut child = cmd.spawn().expect("spawn apistudy serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let ready = BufReader::new(stdout)
        .lines()
        .map_while(|l| l.ok())
        .find(|l| l.starts_with("serving on "))
        .expect("daemon exited before readiness line");
    let addr: SocketAddr = ready
        .strip_prefix("serving on ")
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable readiness line {ready:?}"));
    let fingerprint = ready
        .split("fingerprint ")
        .nth(1)
        .and_then(|s| s.split(',').next())
        .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
        .unwrap_or_else(|| panic!("no fingerprint in {ready:?}"));
    (child, addr, fingerprint)
}

/// The crash/restart gate: kill -9 a store-backed daemon, restart it
/// against the same store, and require the restarted daemon to present
/// the same fingerprint and bit-identical answers to a client
/// reconnecting with backoff.
fn kill9_gate(bin: &Path, exp: &Expected) {
    let dir = std::env::temp_dir()
        .join(format!("apistudy-serve-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let store = dir.join("footprints.apsf");
    let store_arg = store.to_str().expect("utf8 path");

    let (mut boot1, addr1, fp1) =
        spawn_daemon(bin, &["--store", store_arg]);
    assert_eq!(fp1, exp.fingerprint, "boot 1 fingerprint");
    let mut c = Client::connect(
        addr1,
        RetryPolicy::default(),
        Duration::from_secs(10),
    )
    .expect("connect to boot 1");
    match c.call(&Request::Importance { nr: 1 }).expect("boot 1 answers") {
        Response::Importance { importance_bits, unweighted_bits } => {
            assert_eq!(
                (importance_bits, unweighted_bits),
                exp.importance[1],
                "boot 1 importance bits"
            );
        }
        other => panic!("unexpected reply {other:?}"),
    }
    boot1.kill().expect("kill -9 boot 1");
    let _ = boot1.wait();

    // Restart against the same store: completed shards replay instead
    // of being re-measured, and the identity must carry over exactly.
    let restart = Instant::now();
    let (mut boot2, addr2, fp2) =
        spawn_daemon(bin, &["--resume", "--store", store_arg]);
    assert_eq!(fp2, exp.fingerprint, "boot 2 fingerprint after kill -9");
    let mut c = Client::connect(
        addr2,
        RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(25),
            cap: Duration::from_millis(400),
            seed: 0x5E12_5E12,
        },
        Duration::from_secs(10),
    )
    .expect("reconnect to boot 2 with backoff");
    match c.call(&Request::Importance { nr: 1 }).expect("boot 2 answers") {
        Response::Importance { importance_bits, unweighted_bits } => {
            assert_eq!(
                (importance_bits, unweighted_bits),
                exp.importance[1],
                "boot 2 importance bits after restart"
            );
        }
        other => panic!("unexpected reply {other:?}"),
    }
    // The restarted daemon must also take batch frames end to end.
    let reqs: Vec<Request> = (0..8).map(probe).collect();
    for (i, resp) in
        c.call_batch(&reqs).expect("boot 2 batch").into_iter().enumerate()
    {
        verify(i, resp, exp);
    }
    assert!(matches!(
        c.call(&Request::Shutdown).expect("shutdown boot 2"),
        Response::Bye
    ));
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match boot2.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "boot 2 must drain cleanly");
                break;
            }
            None if Instant::now() > deadline => {
                boot2.kill().ok();
                panic!("boot 2 hung past the drain deadline");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "kill -9 -> store replay -> reconnect: bit-identical in {:.1} s",
        restart.elapsed().as_secs_f64()
    );
}

fn main() {
    let mut clients = 64usize;
    let mut requests = 32usize;
    let mut write_json = true;
    let mut check = false;
    let mut bin: Option<String> = None;
    let mut args = std::env::args().skip(1);
    let parse = |v: Option<String>| -> usize {
        v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
            eprintln!(
                "usage: serve_smoke [--clients N] [--requests N] \
                 [--no-json] [--check] [--bin PATH]"
            );
            std::process::exit(2)
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--clients" => clients = parse(args.next()),
            "--requests" => requests = parse(args.next()),
            "--no-json" => write_json = false,
            "--check" => {
                check = true;
                write_json = false;
            }
            "--bin" => bin = args.next(),
            _ => {
                parse(None);
            }
        }
    }

    let study = reference_study();
    let exp = expected(&study);
    let server = Server::start(
        study,
        None,
        ServeOptions {
            max_conns: clients.max(SCALE_CLIENTS) + 8,
            ..ServeOptions::default()
        },
    )
    .expect("start in-process server");
    let addr = server.addr();

    // Wave 1: the latency wave — one request in flight per connection,
    // per-request round trips measured from a barrier all warm clients
    // park on (the main thread holds the extra slot and starts the
    // wall clock when the barrier releases).
    let gate = std::sync::Barrier::new(clients + 1);
    let (mut latencies, elapsed): (Vec<u128>, Duration) =
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|i| {
                    let (exp, gate) = (&exp, &gate);
                    s.spawn(move || {
                        client_load(
                            addr,
                            0xC0FFEE ^ i as u64,
                            requests,
                            gate,
                            exp,
                        )
                    })
                })
                .collect();
            gate.wait();
            let wall = Instant::now();
            let lat = handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect();
            (lat, wall.elapsed())
        });
    latencies.sort_unstable();
    let total = (clients * requests) as u64;
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let qps = total as f64 / elapsed.as_secs_f64();
    println!(
        "{clients} clients x {requests} requests: p50 {:.0} us, p99 {:.0} \
         us, {qps:.0} qps",
        p50 as f64 / 1e3,
        p99 as f64 / 1e3,
    );

    // Wave 2: the batch wave — 8 clients x 8 rounds x 32-wide Batch
    // frames, measuring amortized sub-request throughput.
    const BATCH_CLIENTS: usize = 8;
    const BATCH_ROUNDS: usize = 8;
    const BATCH_WIDTH: usize = 32;
    let wall = Instant::now();
    std::thread::scope(|s| {
        for i in 0..BATCH_CLIENTS {
            let exp = &exp;
            s.spawn(move || {
                batch_load(
                    addr,
                    0xBA7C4 ^ i as u64,
                    BATCH_ROUNDS,
                    BATCH_WIDTH,
                    exp,
                )
            });
        }
    });
    let batch_subs = (BATCH_CLIENTS * BATCH_ROUNDS * BATCH_WIDTH) as u64;
    let batch_qps = batch_subs as f64 / wall.elapsed().as_secs_f64();
    println!(
        "{BATCH_CLIENTS} batch clients x {BATCH_ROUNDS} x {BATCH_WIDTH}-wide \
         frames: {batch_qps:.0} sub-requests/s"
    );

    // Wave 3: the scaling point — 256 concurrent connections, a count
    // the thread-per-connection pool refused at the door. Every connect
    // must land (rejected_busy stays 0) and every reply must verify.
    let gate = std::sync::Barrier::new(SCALE_CLIENTS + 1);
    // `scope` joins every client before returning, so `start.elapsed()`
    // afterwards spans barrier release to last reply.
    let start = std::thread::scope(|s| {
        for i in 0..SCALE_CLIENTS {
            let (exp, gate) = (&exp, &gate);
            s.spawn(move || {
                client_load(addr, 0x256C ^ i as u64, SCALE_REQUESTS, gate, exp)
            });
        }
        gate.wait();
        Instant::now()
    });
    let scale_total = (SCALE_CLIENTS * SCALE_REQUESTS) as u64;
    let scale_qps = scale_total as f64 / start.elapsed().as_secs_f64();
    println!(
        "{SCALE_CLIENTS} clients x {SCALE_REQUESTS} requests: \
         {scale_qps:.0} qps, zero drops"
    );

    server.shutdown();
    let stats = server.wait();
    let batch_frames = (BATCH_CLIENTS * BATCH_ROUNDS) as u64;
    let warmups = ((clients + SCALE_CLIENTS) * WARMUP) as u64;
    let expect_served = total + batch_frames + scale_total + warmups;
    assert!(
        stats.served >= expect_served,
        "server answered {} of {expect_served} requests",
        stats.served
    );
    assert_eq!(
        stats.rejected_busy, 0,
        "admission cap tripped under cap — dropped connections"
    );
    assert_eq!(stats.batch_frames, batch_frames, "batch frame count");
    assert_eq!(stats.batch_requests, batch_subs, "batch sub-request count");
    assert!(
        stats.cache_hits > 0,
        "repeated pure queries never hit the snapshot cache"
    );
    println!(
        "counters: {} served, cache {} hits / {} misses, batch {} frames",
        stats.served, stats.cache_hits, stats.cache_misses,
        stats.batch_frames
    );

    if write_json {
        if let Err(e) = record(&[
            ("serve_p50_us", p50 / 1000),
            ("serve_p99_us", p99 / 1000),
            ("serve_qps", qps as u128),
            ("serve_batch_qps", batch_qps as u128),
            ("serve_c256_qps", scale_qps as u128),
        ]) {
            eprintln!("could not update BENCH_pipeline.json: {e}");
        }
    }

    if let Some(bin) = bin {
        kill9_gate(Path::new(&bin), &exp);
    }

    let mut ok = true;
    let p99_ms = p99 as f64 / 1e6;
    if qps < MIN_QPS || p99_ms > MAX_P99_MS {
        eprintln!(
            "FAIL: {qps:.0} qps (gate {MIN_QPS}), p99 {p99_ms:.2} ms \
             (gate {MAX_P99_MS} ms)"
        );
        ok = false;
    }
    if check && !check_against_recorded(p99 / 1000, qps) {
        ok = false;
    }
    if !ok {
        std::process::exit(1);
    }
    println!(
        "PASS: every reply bit-identical; >= {MIN_QPS} qps, p99 <= \
         {MAX_P99_MS} ms, {SCALE_CLIENTS} clients with zero drops"
    );
}
