//! CI smoke gate for the hardened query daemon.
//!
//! **In-process mode** (default): starts [`Server`] over the 150-package
//! reference corpus, fires 64 concurrent clients of 32 requests each
//! (a ping/importance/completeness/suggest mix), and fails unless
//!
//! - every reply is **bit-identical** to the direct library call,
//! - aggregate throughput clears [`MIN_QPS`],
//! - the p99 round-trip stays under [`MAX_P99_MS`],
//! - the server drains cleanly with its counters matching the load.
//!
//! **Subprocess mode** (`--bin <path to apistudy>`): additionally boots
//! the real binary with an on-disk footprint store, `kill -9`s it
//! mid-service, restarts it against the same store, and requires the
//! restarted daemon to present the same fingerprint and bit-identical
//! answers to a client reconnecting with backoff — the crash/restart
//! gate. (A separate flag because `CARGO_BIN_EXE_*` is not available to
//! bench binaries; CI passes `./target/release/apistudy`.)
//!
//! Usage: `serve_smoke [--clients N] [--requests N] [--no-json]
//! [--bin PATH]`.

use std::collections::HashSet;
use std::io::{BufRead as _, BufReader};
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use apistudy_catalog::Api;
use apistudy_core::{
    greedy_suggestions, Client, Metrics, Request, Response, RetryPolicy,
    Server, ServeOptions, Study,
};
use apistudy_corpus::Scale;

/// Aggregate throughput floor across all clients. Loopback round trips
/// at 150 packages measure in the tens of thousands of requests per
/// second; 1000 leaves an order of magnitude for noisy CI machines
/// while still catching a serialization point in the worker pool.
const MIN_QPS: f64 = 1000.0;

/// p99 round-trip ceiling, milliseconds. The metrics index is built
/// once at snapshot seal and shared by every worker, so connections no
/// longer pay a per-worker index build on their first request; the tail
/// is plain scheduling contention when 64 clients land at once. 500 ms
/// only trips on a real stall (lock convoy, lost wakeup, deadline
/// misfire), not contention.
const MAX_P99_MS: f64 = 500.0;

/// Same corpus as the serve_chaos suite and the `--scale 150 --seed
/// 2016` command line (`--scale N` implies `installations = 95·N`).
fn reference_study() -> Study {
    Study::run(Scale { packages: 150, installations: 14_250 }, 2016)
}

/// Syscall numbers the importance probes cycle through.
const PROBE_NRS: [u32; 4] = [0, 1, 9, 60];

/// The supported set used for completeness and suggest probes.
fn base_set() -> Vec<u32> {
    vec![0, 1, 2, 3, 9, 60, 231]
}

/// Ground truth computed once from the library, compared bit-for-bit
/// against every reply.
struct Expected {
    fingerprint: u64,
    importance: Vec<(u64, u64)>,
    completeness_bits: u64,
    picks: Vec<(u32, u64)>,
}

fn expected(study: &Study) -> Expected {
    let m = Metrics::new(study.data());
    let set: HashSet<u32> = base_set().into_iter().collect();
    Expected {
        fingerprint: apistudy_core::snapshot_fingerprint(study),
        importance: PROBE_NRS
            .iter()
            .map(|&nr| {
                (
                    m.importance(Api::Syscall(nr)).to_bits(),
                    m.unweighted_importance(Api::Syscall(nr)).to_bits(),
                )
            })
            .collect(),
        completeness_bits: m.syscall_completeness(&set).to_bits(),
        picks: greedy_suggestions(&m, &set, 3)
            .into_iter()
            .map(|(nr, gain)| (nr, gain.to_bits()))
            .collect(),
    }
}

/// One client's request loop: returns per-request latencies (ns).
/// Panics on any non-bit-identical reply; the panic propagates through
/// the join and fails the gate.
fn client_load(
    addr: SocketAddr,
    seed: u64,
    requests: usize,
    exp: &Expected,
) -> Vec<u128> {
    let mut c = Client::connect(
        addr,
        RetryPolicy { seed, ..RetryPolicy::default() },
        Duration::from_secs(10),
    )
    .expect("connect to in-process server");
    let mut lat = Vec::with_capacity(requests);
    for i in 0..requests {
        let req = match i % 8 {
            0 => Request::Ping,
            7 => Request::Suggest { supported: base_set(), limit: 3 },
            3 | 5 => Request::Completeness { supported: base_set() },
            k => Request::Importance { nr: PROBE_NRS[k % PROBE_NRS.len()] },
        };
        let start = Instant::now();
        let resp = c.call(&req).expect("request failed");
        lat.push(start.elapsed().as_nanos());
        match (i % 8, resp) {
            (0, Response::Pong { fingerprint, .. }) => {
                assert_eq!(fingerprint, exp.fingerprint, "fingerprint drift")
            }
            (7, Response::Suggest { picks }) => {
                assert_eq!(picks, exp.picks, "suggest picks diverged")
            }
            (3 | 5, Response::Completeness { bits }) => assert_eq!(
                bits, exp.completeness_bits,
                "completeness bits diverged"
            ),
            (k, Response::Importance { importance_bits, unweighted_bits }) => {
                let want = exp.importance[k % PROBE_NRS.len()];
                assert_eq!(
                    (importance_bits, unweighted_bits),
                    want,
                    "importance bits diverged for nr {}",
                    PROBE_NRS[k % PROBE_NRS.len()]
                );
            }
            (_, other) => panic!("unexpected reply {other:?}"),
        }
    }
    lat
}

fn percentile(sorted: &[u128], p: f64) -> u128 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Updates (or leaves untouched) the `serve` section's measured keys in
/// BENCH_pipeline.json without disturbing the hand-maintained rest.
fn record(results: &[(&str, u128)]) -> std::io::Result<()> {
    let path = "BENCH_pipeline.json";
    let text = std::fs::read_to_string(path)?;
    let mut out = String::new();
    for line in text.lines() {
        let trimmed = line.trim();
        if let Some((key, value)) = results
            .iter()
            .find(|(k, _)| trimmed.starts_with(&format!("\"{k}\":")))
        {
            let indent = &line[..line.len() - trimmed.len()];
            let comma = if trimmed.ends_with(',') { "," } else { "" };
            out.push_str(&format!("{indent}\"{key}\": {value}{comma}\n"));
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// Spawns the real binary serving the reference corpus, parses the
/// readiness line into (child, addr, fingerprint).
fn spawn_daemon(bin: &Path, extra: &[&str]) -> (Child, SocketAddr, u64) {
    let mut cmd = Command::new(bin);
    cmd.args(["--scale", "150", "--seed", "2016"]);
    cmd.args(extra);
    cmd.arg("serve");
    cmd.stdout(Stdio::piped());
    cmd.stderr(Stdio::null());
    cmd.env_remove("APISTUDY_JOURNAL_CRASH_AFTER");
    cmd.env_remove("APISTUDY_ITEM_DEADLINE_MS");
    cmd.env_remove("APISTUDY_CACHE");
    let mut child = cmd.spawn().expect("spawn apistudy serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let ready = BufReader::new(stdout)
        .lines()
        .next()
        .and_then(|l| l.ok())
        .expect("daemon exited before readiness line");
    let addr: SocketAddr = ready
        .strip_prefix("serving on ")
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable readiness line {ready:?}"));
    let fingerprint = ready
        .split("fingerprint ")
        .nth(1)
        .and_then(|s| s.split(',').next())
        .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
        .unwrap_or_else(|| panic!("no fingerprint in {ready:?}"));
    (child, addr, fingerprint)
}

/// The crash/restart gate: kill -9 a store-backed daemon, restart it
/// against the same store, and require the restarted daemon to present
/// the same fingerprint and bit-identical answers to a client
/// reconnecting with backoff.
fn kill9_gate(bin: &Path, exp: &Expected) {
    let dir = std::env::temp_dir()
        .join(format!("apistudy-serve-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let store = dir.join("footprints.apsf");
    let store_arg = store.to_str().expect("utf8 path");

    let (mut boot1, addr1, fp1) =
        spawn_daemon(bin, &["--store", store_arg]);
    assert_eq!(fp1, exp.fingerprint, "boot 1 fingerprint");
    let mut c = Client::connect(
        addr1,
        RetryPolicy::default(),
        Duration::from_secs(10),
    )
    .expect("connect to boot 1");
    match c.call(&Request::Importance { nr: 1 }).expect("boot 1 answers") {
        Response::Importance { importance_bits, unweighted_bits } => {
            assert_eq!(
                (importance_bits, unweighted_bits),
                exp.importance[1],
                "boot 1 importance bits"
            );
        }
        other => panic!("unexpected reply {other:?}"),
    }
    boot1.kill().expect("kill -9 boot 1");
    let _ = boot1.wait();

    // Restart against the same store: completed shards replay instead
    // of being re-measured, and the identity must carry over exactly.
    let restart = Instant::now();
    let (mut boot2, addr2, fp2) =
        spawn_daemon(bin, &["--resume", "--store", store_arg]);
    assert_eq!(fp2, exp.fingerprint, "boot 2 fingerprint after kill -9");
    let mut c = Client::connect(
        addr2,
        RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(25),
            cap: Duration::from_millis(400),
            seed: 0x5E12_5E12,
        },
        Duration::from_secs(10),
    )
    .expect("reconnect to boot 2 with backoff");
    match c.call(&Request::Importance { nr: 1 }).expect("boot 2 answers") {
        Response::Importance { importance_bits, unweighted_bits } => {
            assert_eq!(
                (importance_bits, unweighted_bits),
                exp.importance[1],
                "boot 2 importance bits after restart"
            );
        }
        other => panic!("unexpected reply {other:?}"),
    }
    assert!(matches!(
        c.call(&Request::Shutdown).expect("shutdown boot 2"),
        Response::Bye
    ));
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match boot2.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "boot 2 must drain cleanly");
                break;
            }
            None if Instant::now() > deadline => {
                boot2.kill().ok();
                panic!("boot 2 hung past the drain deadline");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "kill -9 -> store replay -> reconnect: bit-identical in {:.1} s",
        restart.elapsed().as_secs_f64()
    );
}

fn main() {
    let mut clients = 64usize;
    let mut requests = 32usize;
    let mut write_json = true;
    let mut bin: Option<String> = None;
    let mut args = std::env::args().skip(1);
    let parse = |v: Option<String>| -> usize {
        v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
            eprintln!(
                "usage: serve_smoke [--clients N] [--requests N] \
                 [--no-json] [--bin PATH]"
            );
            std::process::exit(2)
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--clients" => clients = parse(args.next()),
            "--requests" => requests = parse(args.next()),
            "--no-json" => write_json = false,
            "--bin" => bin = args.next(),
            _ => {
                parse(None);
            }
        }
    }

    let study = reference_study();
    let exp = expected(&study);
    let server = Server::start(
        study,
        None,
        ServeOptions { max_conns: clients + 8, ..ServeOptions::default() },
    )
    .expect("start in-process server");
    let addr = server.addr();

    let wall = Instant::now();
    let mut latencies: Vec<u128> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                let exp = &exp;
                s.spawn(move || {
                    client_load(addr, 0xC0FFEE ^ i as u64, requests, exp)
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = wall.elapsed();
    latencies.sort_unstable();

    server.shutdown();
    let stats = server.wait();
    let total = (clients * requests) as u64;
    assert!(
        stats.served >= total,
        "server answered {} of {total} requests",
        stats.served
    );
    assert_eq!(stats.rejected_busy, 0, "admission cap tripped under cap");

    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let qps = total as f64 / elapsed.as_secs_f64();
    println!(
        "{clients} clients x {requests} requests: p50 {:.0} us, p99 {:.0} \
         us, {qps:.0} qps",
        p50 as f64 / 1e3,
        p99 as f64 / 1e3,
    );

    if write_json {
        if let Err(e) = record(&[
            ("serve_p50_us", p50 / 1000),
            ("serve_p99_us", p99 / 1000),
            ("serve_qps", qps as u128),
        ]) {
            eprintln!("could not update BENCH_pipeline.json: {e}");
        }
    }

    if let Some(bin) = bin {
        kill9_gate(Path::new(&bin), &exp);
    }

    let p99_ms = p99 as f64 / 1e6;
    if qps < MIN_QPS || p99_ms > MAX_P99_MS {
        eprintln!(
            "FAIL: {qps:.0} qps (gate {MIN_QPS}), p99 {p99_ms:.1} ms \
             (gate {MAX_P99_MS} ms)"
        );
        std::process::exit(1);
    }
    println!(
        "PASS: every reply bit-identical; >= {MIN_QPS} qps and p99 <= \
         {MAX_P99_MS} ms"
    );
}
