//! Artifact renderers: one function per table and figure of the paper.
//!
//! Each renderer regenerates its artifact from a completed [`Study`] and
//! returns the text the `repro` binary prints. The same functions back the
//! Criterion benches, so "regenerate Table 4" is both a command and a
//! measured operation.

use std::collections::{BTreeMap, HashSet};

use apistudy_catalog::{Api, ApiKind, SyscallStatus};
use apistudy_compat::{all_profiles, all_variants, graphene};
use apistudy_core::{
    libc_restructure::restructure,
    planner::{stages, CompletenessCurve},
    seccomp_profile, uniqueness, Metrics, Study,
};
use apistudy_corpus::Interpreter;
use apistudy_elf::BinaryClass;
use apistudy_report::{pct, pct2, Align, Series, TextTable};

/// A study plus the derived state every renderer needs.
pub struct Ctx<'a> {
    /// The completed study.
    pub study: &'a Study,
    /// Metric engine over the study.
    pub metrics: Metrics<'a>,
    /// The Figure 3 curve (computed once).
    pub curve: CompletenessCurve,
}

impl<'a> Ctx<'a> {
    /// Derives the renderer context from a study.
    pub fn new(study: &'a Study) -> Self {
        let metrics = study.metrics();
        let curve = CompletenessCurve::compute(&metrics);
        Self { study, metrics, curve }
    }
}

/// All artifact ids, in paper order.
pub const ARTIFACT_IDS: &[&str] = &[
    "fig1", "fig2", "tab1", "tab2", "tab3", "fig3", "tab4", "fig4", "fig5",
    "fig6", "fig7", "tab5", "libc-split", "tab6", "tab7", "fig8", "tab8",
    "tab9", "tab10", "tab11", "uniqueness", "ablation", "age", "stats",
];

/// Renders one artifact by id.
pub fn render(ctx: &Ctx<'_>, id: &str) -> Option<String> {
    match id {
        "fig1" => Some(fig1(ctx)),
        "fig2" => Some(fig2(ctx)),
        "tab1" => Some(tab1(ctx)),
        "tab2" => Some(tab2(ctx)),
        "tab3" => Some(tab3(ctx)),
        "fig3" => Some(fig3(ctx)),
        "tab4" => Some(tab4(ctx)),
        "fig4" => Some(fig4(ctx)),
        "fig5" => Some(fig5(ctx)),
        "fig6" => Some(fig6(ctx)),
        "fig7" => Some(fig7(ctx)),
        "tab5" => Some(tab5(ctx)),
        "libc-split" => Some(libc_split(ctx)),
        "tab6" => Some(tab6(ctx)),
        "tab7" => Some(tab7(ctx)),
        "fig8" => Some(fig8(ctx)),
        "tab8" => Some(tab8(ctx)),
        "tab9" => Some(tab9(ctx)),
        "tab10" => Some(tab10(ctx)),
        "tab11" => Some(tab11(ctx)),
        "uniqueness" => Some(uniqueness_report(ctx)),
        "ablation" => Some(ablation(ctx)),
        "age" => Some(adoption_vs_age(ctx)),
        "stats" => Some(framework_stats(ctx)),
        _ => None,
    }
}

/// Figure 1: executable-type mix.
pub fn fig1(ctx: &Ctx<'_>) -> String {
    let census = &ctx.study.data().census;
    let total = census.total() as f64;
    let mut t = TextTable::new(
        "Figure 1: executable types across the repository",
        &["kind", "count", "share"],
    )
    .aligns(&[Align::Left, Align::Right, Align::Right]);
    let mut add = |name: &str, count: usize| {
        t.row(&[
            name.to_owned(),
            count.to_string(),
            pct(count as f64 / total),
        ]);
    };
    add("ELF binaries", census.elf_total());
    for (interp, label) in [
        (Interpreter::Dash, "Shell (dash)"),
        (Interpreter::Python, "Python"),
        (Interpreter::Perl, "Perl"),
        (Interpreter::Bash, "Shell (bash)"),
        (Interpreter::Ruby, "Ruby"),
        (Interpreter::Other, "Others"),
    ] {
        add(label, census.scripts.get(&interp).copied().unwrap_or(0));
    }
    let mut out = t.render();
    let elf = census.elf_total() as f64;
    out.push_str(&format!(
        "\nELF breakdown: shared libraries {}, dynamic executables {}, static {}\n",
        pct(census.elf.get(&BinaryClass::SharedLib).copied().unwrap_or(0) as f64 / elf),
        pct(census.elf.get(&BinaryClass::DynExec).copied().unwrap_or(0) as f64 / elf),
        pct2(census.elf.get(&BinaryClass::StaticExec).copied().unwrap_or(0) as f64 / elf),
    ));
    out
}

/// Figure 2: API importance over system calls.
pub fn fig2(ctx: &Ctx<'_>) -> String {
    let ranking = ctx.metrics.importance_ranking(ApiKind::Syscall);
    let values: Vec<f64> = ranking.iter().map(|&(_, v)| v).collect();
    let indispensable = values.iter().filter(|&&v| v >= 0.9995).count();
    let above10 = values.iter().filter(|&&v| v >= 0.10).count();
    let low = values.iter().filter(|&&v| v > 0.0 && v < 0.10).count();
    let unused = values.iter().filter(|&&v| v == 0.0).count();
    let series = Series::inverted_cdf("syscall API importance", &values);
    format!(
        "== Figure 2: API importance of the N-most important system calls ==\n\
         total syscalls: {}\n\
         indispensable (~100% importance): {}\n\
         importance >= 10%: {}\n\
         0 < importance < 10%: {}\n\
         unused: {}\n\n{}",
        values.len(),
        indispensable,
        above10,
        low,
        unused,
        series.sketch(72, 12),
    )
}

/// Table 1: syscalls whose direct call sites live only in shared
/// libraries.
pub fn tab1(ctx: &Ctx<'_>) -> String {
    let data = ctx.study.data();
    let mut t = TextTable::new(
        "Table 1: system calls only directly used by particular libraries",
        &["syscall", "importance", "libraries"],
    )
    .aligns(&[Align::Left, Align::Right, Align::Left]);
    let mut rows: Vec<(f64, String, String)> = Vec::new();
    for def in data.catalog.syscalls.iter() {
        let users: Vec<&str> = data.attribution.users_of(def.number).collect();
        if users.is_empty() || users.len() > 3 {
            continue;
        }
        // Only libraries (no executables).
        if !users.iter().all(|u| u.contains(".so")) {
            continue;
        }
        let imp = ctx.metrics.importance(Api::Syscall(def.number));
        if imp < 0.10 {
            continue;
        }
        rows.push((imp, def.name.to_owned(), users.join(", ")));
    }
    rows.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    for (imp, name, users) in rows.into_iter().take(16) {
        t.row(&[name, pct(imp), users]);
    }
    t.render()
}

/// Table 2: syscalls used by only one or two packages.
pub fn tab2(ctx: &Ctx<'_>) -> String {
    let data = ctx.study.data();
    let mut t = TextTable::new(
        "Table 2: system calls with usage dominated by particular packages",
        &["syscall", "importance", "packages"],
    )
    .aligns(&[Align::Left, Align::Right, Align::Left]);
    let mut rows: Vec<(f64, String, String)> = Vec::new();
    for def in data.catalog.syscalls.iter() {
        if def.status != SyscallStatus::Active {
            continue;
        }
        let deps = ctx.metrics.dependents(Api::Syscall(def.number));
        if deps.is_empty() || deps.len() > 2 {
            continue;
        }
        let imp = ctx.metrics.importance(Api::Syscall(def.number));
        let pkgs: Vec<&str> = deps.iter().map(|p| p.name.as_str()).collect();
        rows.push((imp, def.name.to_owned(), pkgs.join(", ")));
    }
    rows.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    for (imp, name, pkgs) in rows.into_iter().take(24) {
        t.row(&[name, pct(imp), pkgs]);
    }
    t.render()
}

/// Table 3: unused system calls.
pub fn tab3(ctx: &Ctx<'_>) -> String {
    let data = ctx.study.data();
    let mut t = TextTable::new(
        "Table 3: system calls used by no application",
        &["syscall", "status"],
    );
    for def in data.catalog.syscalls.iter() {
        let imp = ctx.metrics.importance(Api::Syscall(def.number));
        if imp > 0.0 {
            continue;
        }
        let status = match def.status {
            SyscallStatus::NoEntryPoint => "no kernel entry point",
            SyscallStatus::Retired => "officially retired",
            SyscallStatus::Active => "defined but unused",
        };
        t.row_str(&[def.name, status]);
    }
    let n = t.len();
    format!("{}\ntotal unused: {n}\n", t.render())
}

/// Figure 3: accumulated weighted completeness over the ranking.
pub fn fig3(ctx: &Ctx<'_>) -> String {
    let curve = &ctx.curve;
    let series = Series::new(
        "weighted completeness vs N supported syscalls",
        curve
            .points
            .iter()
            .enumerate()
            .map(|(i, &y)| (i as f64, y))
            .collect(),
    );
    let mut out = format!(
        "== Figure 3: accumulated weighted completeness ==\n\
         at N=40:  {}\n\
         at N=81:  {}\n\
         at N=145: {}\n\
         at N=202: {}\n\
         N for 50%: {}\n\
         N for 90%: {}\n\
         N for 100%: {}\n\n",
        pct(curve.at(40)),
        pct(curve.at(81)),
        pct(curve.at(145)),
        pct(curve.at(202)),
        curve.calls_needed(0.50),
        curve.calls_needed(0.90),
        curve.calls_needed(1.0),
    );
    out.push_str(&series.sketch(72, 12));
    out
}

/// Table 4: the five implementation stages.
pub fn tab4(ctx: &Ctx<'_>) -> String {
    let st = stages(&ctx.metrics, &ctx.curve);
    let mut t = TextTable::new(
        "Table 4: implementation stages",
        &["stage", "added", "cumulative", "completeness", "samples"],
    )
    .aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Left,
    ]);
    for s in &st {
        t.row(&[
            s.label.to_owned(),
            format!("+{}", s.added),
            s.cumulative.to_string(),
            pct(s.completeness),
            s.samples.join(", "),
        ]);
    }
    t.render()
}

fn vectored_summary(
    ctx: &Ctx<'_>,
    kind: ApiKind,
    label: &str,
    defined: usize,
) -> String {
    let ranking = ctx.metrics.importance_ranking(kind);
    let values: Vec<f64> = ranking.iter().map(|&(_, v)| v).collect();
    let universal = values.iter().filter(|&&v| v >= 0.97).count();
    let above1 = values.iter().filter(|&&v| v >= 0.01).count();
    let used = values.iter().filter(|&&v| v > 0.0).count();
    let series = Series::inverted_cdf(label, &values);
    format!(
        "{label}: defined {defined}, used {used}, >=1% importance {above1}, \
         ~100% importance {universal}\n{}",
        series.sketch(64, 8),
    )
}

/// Figure 4: ioctl operation importance.
pub fn fig4(ctx: &Ctx<'_>) -> String {
    let defined = ctx.study.data().catalog.ioctl_ops.len();
    format!(
        "== Figure 4: ioctl operation importance ==\n{}",
        vectored_summary(ctx, ApiKind::Ioctl, "ioctl operations", defined)
    )
}

/// Figure 5: fcntl and prctl operation importance.
pub fn fig5(ctx: &Ctx<'_>) -> String {
    format!(
        "== Figure 5: fcntl / prctl operation importance ==\n{}\n{}",
        vectored_summary(
            ctx,
            ApiKind::Fcntl,
            "fcntl commands",
            apistudy_catalog::FCNTL_OPS.len()
        ),
        vectored_summary(
            ctx,
            ApiKind::Prctl,
            "prctl options",
            apistudy_catalog::PRCTL_OPS.len()
        ),
    )
}

/// Figure 6: pseudo-file importance.
pub fn fig6(ctx: &Ctx<'_>) -> String {
    let data = ctx.study.data();
    let ranking = ctx.metrics.importance_ranking(ApiKind::PseudoFile);
    let mut t = TextTable::new(
        "Figure 6: most important pseudo-files",
        &["pseudo-file", "importance"],
    )
    .aligns(&[Align::Left, Align::Right]);
    for &(api, imp) in ranking.iter().take(20) {
        if imp == 0.0 {
            break;
        }
        t.row(&[data.catalog.name(api), pct(imp)]);
    }
    let used = ranking.iter().filter(|&&(_, v)| v > 0.0).count();
    format!(
        "{}\ntracked pseudo-files: {}, used: {used}\n",
        t.render(),
        ranking.len()
    )
}

/// Figure 7: libc symbol importance distribution.
pub fn fig7(ctx: &Ctx<'_>) -> String {
    let ranking = ctx.metrics.importance_ranking(ApiKind::LibcSymbol);
    let values: Vec<f64> = ranking.iter().map(|&(_, v)| v).collect();
    let n = values.len() as f64;
    let at100 = values.iter().filter(|&&v| v >= 0.97).count();
    let below50 = values.iter().filter(|&&v| v < 0.50).count();
    let below1 = values.iter().filter(|&&v| v < 0.01).count();
    let unused = values.iter().filter(|&&v| v == 0.0).count();
    let series = Series::inverted_cdf("libc API importance", &values);
    format!(
        "== Figure 7: API importance over libc exported functions ==\n\
         symbols: {}\n\
         ~100% importance: {} ({})\n\
         under 50%: {} ({})\n\
         under 1%: {} ({})\n\
         entirely unused: {}\n\n{}",
        values.len(),
        at100,
        pct(at100 as f64 / n),
        below50,
        pct(below50 as f64 / n),
        below1,
        pct(below1 as f64 / n),
        unused,
        series.sketch(72, 12),
    )
}

/// Table 5: ubiquitous syscalls attributed to the libc family.
pub fn tab5(ctx: &Ctx<'_>) -> String {
    let data = ctx.study.data();
    let family = ["libc.so.6", "ld-linux-x86-64.so.2", "libpthread.so.0",
                  "librt.so.1"];
    // Group syscalls by the exact set of libc-family binaries containing
    // direct call sites.
    let mut groups: BTreeMap<Vec<&str>, Vec<String>> = BTreeMap::new();
    for def in data.catalog.syscalls.iter() {
        let users: HashSet<&str> = data.attribution.users_of(def.number).collect();
        let libs: Vec<&str> = family
            .iter()
            .copied()
            .filter(|l| users.contains(l))
            .collect();
        if libs.is_empty() {
            continue;
        }
        let imp = ctx.metrics.importance(Api::Syscall(def.number));
        if imp < 0.97 {
            continue;
        }
        groups.entry(libs).or_default().push(def.name.to_owned());
    }
    let mut t = TextTable::new(
        "Table 5: ubiquitous system calls from libc-family initialization",
        &["libraries", "system calls"],
    );
    for (libs, mut calls) in groups {
        calls.sort();
        t.row(&[libs.join(", "), calls.join(", ")]);
    }
    t.render()
}

/// §3.5: the libc stripping / relocation-reordering experiment.
pub fn libc_split(ctx: &Ctx<'_>) -> String {
    let r = restructure(&ctx.metrics, 0.90);
    format!(
        "== §3.5: libc restructuring at the 90% importance threshold ==\n\
         retained APIs: {} of {}\n\
         stripped libc size: {} of the original\n\
         weighted completeness of the stripped libc: {}\n\
         relocation table: {} bytes total; {} bytes needed eagerly if\n\
         sorted by importance (rest lazy-loaded)\n\
         symbols with zero observed users: {}\n",
        r.retained,
        r.total,
        pct(r.size_fraction),
        pct(r.completeness),
        r.relocation_bytes,
        r.eager_relocation_bytes,
        r.unused,
    )
}

/// Table 6: weighted completeness of Linux systems and emulation layers.
pub fn tab6(ctx: &Ctx<'_>) -> String {
    let mut t = TextTable::new(
        "Table 6: weighted completeness of Linux systems / emulation layers",
        &["system", "#syscalls", "w.comp.", "suggested APIs to add"],
    )
    .aligns(&[Align::Left, Align::Right, Align::Right, Align::Left]);
    for profile in all_profiles(&ctx.metrics) {
        let sugg: Vec<String> = profile
            .suggestions(&ctx.metrics, 4)
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        t.row(&[
            profile.name.to_owned(),
            profile.len().to_string(),
            pct(profile.completeness(&ctx.metrics)),
            sugg.join(", "),
        ]);
    }
    // The Graphene¶ row: adding the two scheduling calls.
    let g = graphene(&ctx.metrics)
        .with_added(&ctx.metrics, &["sched_setscheduler", "sched_setparam"]);
    t.row(&[
        "Graphene¶ (+2 sched calls)".to_owned(),
        g.len().to_string(),
        pct(g.completeness(&ctx.metrics)),
        String::new(),
    ]);
    t.render()
}

/// Table 7: weighted completeness of libc variants.
pub fn tab7(ctx: &Ctx<'_>) -> String {
    let mut t = TextTable::new(
        "Table 7: weighted completeness of libc variants",
        &["variant", "#symbols", "unsupported (samples)", "w.comp.",
          "w.comp. (normalized)"],
    )
    .aligns(&[
        Align::Left,
        Align::Right,
        Align::Left,
        Align::Right,
        Align::Right,
    ]);
    for v in all_variants(&ctx.metrics) {
        let samples = v.unsupported_samples(&ctx.metrics, 2).join(", ");
        t.row(&[
            v.name.to_owned(),
            v.len().to_string(),
            if samples.is_empty() { "None".to_owned() } else { samples },
            pct(v.completeness(&ctx.metrics, false)),
            pct(v.completeness(&ctx.metrics, true)),
        ]);
    }
    t.render()
}

/// Figure 8: unweighted API importance over system calls.
pub fn fig8(ctx: &Ctx<'_>) -> String {
    let data = ctx.study.data();
    let mut values: Vec<f64> = data
        .catalog
        .syscalls
        .iter()
        .map(|d| ctx.metrics.unweighted_importance(Api::Syscall(d.number)))
        .collect();
    values.sort_by(|a, b| b.total_cmp(a));
    let all = values.iter().filter(|&&v| v >= 0.95).count();
    let above10 = values.iter().filter(|&&v| v >= 0.10).count();
    let below10 = values.iter().filter(|&&v| v > 0.0 && v < 0.10).count();
    let series = Series::inverted_cdf("unweighted syscall importance", &values);
    format!(
        "== Figure 8: unweighted API importance of system calls ==\n\
         used by ~all packages: {all}\n\
         used by >= 10% of packages: {above10}\n\
         used by < 10% of packages (nonzero): {below10}\n\n{}",
        series.sketch(72, 12),
    )
}

fn variant_table(
    ctx: &Ctx<'_>,
    title: &str,
    pairs: &[apistudy_catalog::variants::VariantPair],
    left_header: &str,
    right_header: &str,
) -> String {
    let data = ctx.study.data();
    let mut t = TextTable::new(
        title,
        &["group", left_header, "u.imp.", right_header, "u.imp."],
    )
    .aligns(&[
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Left,
        Align::Right,
    ]);
    for p in pairs {
        let l = data
            .catalog
            .syscall(p.left)
            .map(|a| ctx.metrics.unweighted_importance(a))
            .unwrap_or(0.0);
        let r = data
            .catalog
            .syscall(p.right)
            .map(|a| ctx.metrics.unweighted_importance(a))
            .unwrap_or(0.0);
        t.row(&[
            p.group.to_owned(),
            p.left.to_owned(),
            pct2(l),
            p.right.to_owned(),
            pct2(r),
        ]);
    }
    t.render()
}

/// Table 8: insecure vs secure API variants.
pub fn tab8(ctx: &Ctx<'_>) -> String {
    variant_table(
        ctx,
        "Table 8: unweighted importance of insecure vs secure variants",
        apistudy_catalog::variants::SECURITY_PAIRS,
        "insecure",
        "secure",
    )
}

/// Table 9: old vs new API variants.
pub fn tab9(ctx: &Ctx<'_>) -> String {
    variant_table(
        ctx,
        "Table 9: unweighted importance of old vs new variants",
        apistudy_catalog::variants::GENERATION_PAIRS,
        "old",
        "new",
    )
}

/// Table 10: Linux-specific vs portable API variants.
pub fn tab10(ctx: &Ctx<'_>) -> String {
    variant_table(
        ctx,
        "Table 10: unweighted importance of Linux-specific vs portable variants",
        apistudy_catalog::variants::PORTABILITY_PAIRS,
        "linux-specific",
        "portable",
    )
}

/// Table 11: simple vs powerful API variants.
pub fn tab11(ctx: &Ctx<'_>) -> String {
    variant_table(
        ctx,
        "Table 11: unweighted importance of simple vs powerful variants",
        apistudy_catalog::variants::POWER_PAIRS,
        "simple",
        "powerful",
    )
}


/// Ablation: the effect of the analyzer's §7 design choices on coverage.
///
/// Re-analyzes every binary of the corpus with each over-approximation
/// disabled and reports how much of the measured footprint survives —
/// quantifying why the paper makes each choice.
pub fn ablation(ctx: &Ctx<'_>) -> String {
    use apistudy_analysis::{AnalysisOptions, BinaryAnalysis};
    use apistudy_corpus::PackageFile;
    use apistudy_elf::{BinaryClass, ElfFile};

    let repo = ctx.study.repo();
    let configs: [(&str, AnalysisOptions); 4] = [
        ("baseline (paper §7)", AnalysisOptions::default()),
        (
            "no function-pointer edges",
            AnalysisOptions {
                function_pointer_edges: false,
                ..AnalysisOptions::default()
            },
        ),
        (
            "no tail-call edges",
            AnalysisOptions { tail_call_edges: false, ..AnalysisOptions::default() },
        ),
        (
            "no vectored-opcode tracking",
            AnalysisOptions { track_vectored: false, ..AnalysisOptions::default() },
        ),
    ];
    // Sample the corpus: every 4th package keeps the artifact fast while
    // covering hundreds of binaries.
    let mut totals = [[0usize; 2]; 4]; // per config: [syscall facts, opcode facts]
    let mut binaries = 0usize;
    for i in (0..repo.package_count()).step_by(4) {
        let pkg = repo.package(i);
        for f in &pkg.files {
            let PackageFile::Elf { bytes, .. } = f else { continue };
            let Ok(elf) = ElfFile::parse(bytes) else { continue };
            binaries += 1;
            for (c, (_, opts)) in configs.iter().enumerate() {
                let Ok(ba) = BinaryAnalysis::analyze_with(&elf, *opts) else {
                    continue;
                };
                let fp = if ba.class == BinaryClass::SharedLib {
                    let roots: Vec<usize> = ba.exports.values().copied().collect();
                    ba.reachable_facts(roots)
                } else {
                    ba.entry_facts()
                };
                totals[c][0] += fp.syscalls.len() + fp.imports.len();
                totals[c][1] += fp.ioctl_codes.len()
                    + fp.fcntl_codes.len()
                    + fp.prctl_codes.len();
            }
        }
    }
    let base = totals[0];
    let mut t = TextTable::new(
        format!("Ablation of analyzer design choices ({binaries} binaries)"),
        &["configuration", "reachable facts", "vs baseline", "opcodes", "vs baseline"],
    )
    .aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for (c, (name, _)) in configs.iter().enumerate() {
        let rel = |v: usize, b: usize| {
            if b == 0 {
                "—".to_owned()
            } else {
                pct(v as f64 / b as f64)
            }
        };
        t.row(&[
            (*name).to_owned(),
            totals[c][0].to_string(),
            rel(totals[c][0], base[0]),
            totals[c][1].to_string(),
            rel(totals[c][1], base[1]),
        ]);
    }
    t.render()
}


/// Writes the numeric series behind the figures as CSV files into `dir`
/// (for external plotting): `fig2.csv`, `fig3.csv`, `fig7.csv`,
/// `fig8.csv`.
pub fn export_figures(ctx: &Ctx<'_>, dir: &std::path::Path) -> std::io::Result<Vec<String>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    let mut write = |name: &str, series: &Series| -> std::io::Result<()> {
        let path = dir.join(name);
        std::fs::write(&path, series.to_csv())?;
        written.push(name.to_owned());
        Ok(())
    };
    let syscalls: Vec<f64> = ctx
        .metrics
        .importance_ranking(ApiKind::Syscall)
        .into_iter()
        .map(|(_, v)| v)
        .collect();
    write("fig2.csv", &Series::inverted_cdf("syscall importance", &syscalls))?;
    write(
        "fig3.csv",
        &Series::new(
            "weighted completeness",
            ctx.curve
                .points
                .iter()
                .enumerate()
                .map(|(i, &y)| (i as f64, y))
                .collect(),
        ),
    )?;
    let libc: Vec<f64> = ctx
        .metrics
        .importance_ranking(ApiKind::LibcSymbol)
        .into_iter()
        .map(|(_, v)| v)
        .collect();
    write("fig7.csv", &Series::inverted_cdf("libc importance", &libc))?;
    let mut unweighted: Vec<f64> = ctx
        .study
        .data()
        .catalog
        .syscalls
        .iter()
        .map(|d| ctx.metrics.unweighted_importance(Api::Syscall(d.number)))
        .collect();
    unweighted.sort_by(|a, b| b.total_cmp(a));
    write("fig8.csv", &Series::inverted_cdf("unweighted importance", &unweighted))?;
    Ok(written)
}


/// Adoption vs API age: §5's "adoption of newer variants is often slow",
/// quantified. Groups the system calls introduced after 2.6.16 by kernel
/// release and reports their adoption (unweighted importance).
pub fn adoption_vs_age(ctx: &Ctx<'_>) -> String {
    use apistudy_catalog::syscalls::SYSCALL_INTRODUCED;
    let data = ctx.study.data();
    let mut by_version: BTreeMap<&str, Vec<(String, f64)>> = BTreeMap::new();
    for &(name, version) in SYSCALL_INTRODUCED {
        let Some(api) = data.catalog.syscall(name) else { continue };
        by_version
            .entry(version)
            .or_default()
            .push((name.to_owned(), ctx.metrics.unweighted_importance(api)));
    }
    let mut t = TextTable::new(
        "Adoption vs API age: syscalls introduced after 2.6.16",
        &["introduced", "#calls", "mean adoption", "max adoption", "most adopted"],
    )
    .aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Left,
    ]);
    for (version, calls) in &by_version {
        let mean = calls.iter().map(|(_, a)| a).sum::<f64>() / calls.len() as f64;
        let (best_name, best) = calls
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(n, a)| (n.clone(), *a))
            .unwrap_or_default();
        t.row(&[
            (*version).to_owned(),
            calls.len().to_string(),
            pct2(mean),
            pct2(best),
            best_name,
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "\nEven decade-old additions (the 2.6.16 *at family) sit at low \
         single-digit adoption while their racy predecessors dominate \
         (Table 8): age alone does not drive migration.\n",
    );
    out
}


/// Framework statistics — the paper's §7/Table 12 analog: corpus size,
/// how many binaries issue system calls directly, instructions decoded.
pub fn framework_stats(ctx: &Ctx<'_>) -> String {
    use apistudy_analysis::BinaryAnalysis;
    use apistudy_corpus::PackageFile;
    use apistudy_elf::{BinaryClass, ElfFile};

    let repo = ctx.study.repo();
    let mut execs = 0usize;
    let mut libs = 0usize;
    let mut scripts = 0usize;
    let mut direct_execs = 0usize;
    let mut direct_libs = 0usize;
    let mut instructions = 0u64;
    for i in 0..repo.package_count() {
        let pkg = repo.package(i);
        for f in &pkg.files {
            match f {
                PackageFile::Script { .. } => scripts += 1,
                PackageFile::Elf { bytes, .. } => {
                    let Ok(elf) = ElfFile::parse(bytes) else { continue };
                    let Ok(ba) = BinaryAnalysis::analyze(&elf) else {
                        continue;
                    };
                    instructions += ba.instructions;
                    let has_direct = !ba.direct_syscalls().is_empty();
                    if ba.class == BinaryClass::SharedLib {
                        libs += 1;
                        if has_direct {
                            direct_libs += 1;
                        }
                    } else {
                        execs += 1;
                        if has_direct {
                            direct_execs += 1;
                        }
                    }
                }
            }
        }
    }
    let elf_total = execs + libs;
    format!(
        "== Framework statistics (§7 analog) ==\n\
         packages:                     {}\n\
         ELF binaries:                 {elf_total} ({execs} executables, {libs} libraries)\n\
         scripts:                      {scripts}\n\
         instructions decoded:         {instructions}\n\
         binaries with direct syscall instructions:\n\
           executables: {direct_execs} ({})\n\
           libraries:   {direct_libs} ({})\n\
         (paper: 7,259 of 48,970 executables and 2,752 of 34,260\n\
          libraries issue system calls directly)\n",
        repo.package_count(),
        pct(direct_execs as f64 / execs.max(1) as f64),
        pct(direct_libs as f64 / libs.max(1) as f64),
    )
}

/// §6: footprint uniqueness and a sample seccomp policy.
pub fn uniqueness_report(ctx: &Ctx<'_>) -> String {
    let data = ctx.study.data();
    let stats = uniqueness(data);
    let sample = seccomp_profile(data, "coreutils").unwrap_or_default();
    format!(
        "== §6: system call footprints as identifiers ==\n\
         applications analyzed: {}\n\
         distinct syscall footprints: {}\n\
         footprints unique to one application: {}\n\
         unresolved syscall sites: {} of {} ({})\n\n\
         sample auto-generated seccomp allow-list (coreutils), {} calls:\n  {}\n",
        stats.applications,
        stats.distinct,
        stats.unique,
        data.unresolved_syscall_sites,
        data.unresolved_syscall_sites + data.resolved_syscall_sites,
        pct2(
            data.unresolved_syscall_sites as f64
                / (data.unresolved_syscall_sites + data.resolved_syscall_sites)
                    .max(1) as f64
        ),
        sample.len(),
        sample.join(", "),
    )
}
