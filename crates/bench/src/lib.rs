//! # apistudy-bench
//!
//! The reproduction harness: [`artifacts`] regenerates every table and
//! figure of the paper from a completed study; the `repro` binary prints
//! them; the Criterion benches measure the pipeline and per-artifact
//! regeneration cost.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;

pub use artifacts::{render, Ctx, ARTIFACT_IDS};
