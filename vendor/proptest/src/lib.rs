//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest 1.x this workspace uses: the
//! `proptest!` macro (with optional `#![proptest_config(..)]`),
//! `any::<T>()`, integer-range strategies, tuple strategies, the
//! `collection::{vec, hash_set, btree_set}` combinators, and the
//! `prop_assert!` / `prop_assert_eq!` failure macros. Cases are generated
//! from a deterministic per-test splitmix64 stream, so failures reproduce
//! exactly across runs; there is no shrinking — the failing case's seed
//! index is reported instead.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Runner configuration and failure plumbing.

    /// Mirror of `proptest::test_runner::Config` (the fields we use).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Constructs a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic case-generation stream (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The stream for one test case: test name hash × case index.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self { state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)) }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw below `bound` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            // Widening-multiply map; bias is irrelevant for case generation.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A generator of values for one property parameter.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Full-domain strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// Mirror of `proptest::arbitrary::any::<T>()`.
    pub fn any<T>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($n:ident . $i:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::{BTreeSet, HashSet};
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for collections built from `n in size` element draws.
    pub struct CollectionStrategy<S: Strategy, C> {
        element: S,
        size: Range<usize>,
        build: fn(Vec<S::Value>) -> C,
    }

    impl<S: Strategy, C> Strategy for CollectionStrategy<S, C> {
        type Value = C;
        fn sample(&self, rng: &mut TestRng) -> C {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            let items = (0..len).map(|_| self.element.sample(rng)).collect();
            (self.build)(items)
        }
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(
        element: S,
        size: Range<usize>,
    ) -> CollectionStrategy<S, Vec<S::Value>> {
        CollectionStrategy { element, size, build: |v| v }
    }

    /// Mirror of `proptest::collection::hash_set`.
    pub fn hash_set<S>(
        element: S,
        size: Range<usize>,
    ) -> CollectionStrategy<S, HashSet<S::Value>>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        CollectionStrategy { element, size, build: |v| v.into_iter().collect() }
    }

    /// Mirror of `proptest::collection::btree_set`.
    pub fn btree_set<S>(
        element: S,
        size: Range<usize>,
    ) -> CollectionStrategy<S, BTreeSet<S::Value>>
    where
        S: Strategy,
        S::Value: Ord,
    {
        CollectionStrategy { element, size, build: |v| v.into_iter().collect() }
    }
}

pub mod prelude {
    //! Mirror of `proptest::prelude`.
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Mirror of `proptest::proptest!`: each `#[test] fn name(pat in strategy,
/// ...)` item becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
     $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::test_runner::TestRng::for_case(
                        stringify!($name),
                        case,
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::sample(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )*
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest case {case} of {} failed: {e}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::Config::default()) $($rest)*
        );
    };
}

/// Mirror of `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(
                    format!("assertion failed: {}", stringify!($cond)),
                ),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Mirror of `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Mirror of `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}",
            l,
            r
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y), "y out of range: {}", y);
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(any::<u8>(), 2..9),
            s in crate::collection::hash_set(0u32..1000, 0..50),
            b in crate::collection::btree_set((0usize..10, any::<bool>()), 1..6),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(s.len() < 50);
            prop_assert!(!b.is_empty() || b.is_empty());
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
