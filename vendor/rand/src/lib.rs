//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The build environment has no crates-io access, so the workspace vendors
//! the small slice of `rand` it actually uses. The implementations mirror
//! rand 0.8 + rand_xoshiro bit-for-bit for the code paths exercised by the
//! corpus generator — `SmallRng` (xoshiro256++ seeded through SplitMix64),
//! `gen_range` (Lemire widening-multiply rejection), `gen_bool`
//! (64-bit-threshold Bernoulli), `gen::<f64>()` (53-bit multiply), and
//! `SliceRandom::{choose, shuffle}` (Fisher-Yates over `gen_index`) — so
//! every calibrated corpus stream reproduces the values the test
//! expectations were tuned against.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core RNG output interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Derives a full RNG state from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_uint {
    ($($t:ty => $via:ident),*) => {
        $(impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        })*
    };
}
standard_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
               i8 => next_u32, i16 => next_u32, i32 => next_u32,
               u64 => next_u64, i64 => next_u64, usize => next_u64,
               isize => next_u64);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8: the most significant bit of a u32 draw.
        rng.next_u32() & (1 << 31) != 0
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8 `Standard` for f64: 53-bit multiply into [0, 1).
        let scale = 1.0 / ((1u64 << 53) as f64);
        (rng.next_u64() >> 11) as f64 * scale
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let scale = 1.0 / ((1u32 << 24) as f32);
        (rng.next_u32() >> 8) as f32 * scale
    }
}

/// Ranges samplable by `Rng::gen_range` (subset of `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int_32 {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let range = (self.end.wrapping_sub(self.start)) as u32;
                lemire32(rng, range).map_or(self.start, |hi| {
                    self.start.wrapping_add(hi as $t)
                })
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let range = (hi.wrapping_sub(lo) as u32).wrapping_add(1);
                if range == 0 {
                    return rng.next_u32() as $t;
                }
                lemire32(rng, range).map_or(lo, |h| lo.wrapping_add(h as $t))
            }
        }
    )*};
}
macro_rules! range_int_64 {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let range = (self.end.wrapping_sub(self.start)) as u64;
                lemire64(rng, range).map_or(self.start, |hi| {
                    self.start.wrapping_add(hi as $t)
                })
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let range = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
                if range == 0 {
                    return rng.next_u64() as $t;
                }
                lemire64(rng, range).map_or(lo, |h| lo.wrapping_add(h as $t))
            }
        }
    )*};
}
range_int_32!(u8, u16, u32, i8, i16, i32);
range_int_64!(u64, i64, usize, isize);

/// rand 0.8 `UniformInt::sample_single` for 32-bit types: widening
/// multiply with the bitmask-derived rejection zone. Returns `None` only
/// for a full (2^32) range, where the caller maps the raw draw directly.
fn lemire32<R: RngCore + ?Sized>(rng: &mut R, range: u32) -> Option<u32> {
    if range == 0 {
        return None;
    }
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u32();
        let m = u64::from(v) * u64::from(range);
        let (hi, lo) = ((m >> 32) as u32, m as u32);
        if lo <= zone {
            return Some(hi);
        }
    }
}

/// The 64-bit counterpart of [`lemire32`].
fn lemire64<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> Option<u64> {
    if range == 0 {
        return None;
    }
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = u128::from(v) * u128::from(range);
        let (hi, lo) = ((m >> 64) as u64, m as u64);
        if lo <= zone {
            return Some(hi);
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        // rand 0.8 `UniformFloat::sample_single`: mantissa bits with a
        // fixed exponent give a value in [1, 2); scale-and-offset maps it
        // into [low, high).
        assert!(self.start < self.end, "empty gen_range");
        let value1_2 =
            f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
        let scale = self.end - self.start;
        let offset = self.start - scale;
        value1_2 * scale + offset
    }
}

/// User-facing RNG interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // rand 0.8 Bernoulli: compare 64 random bits against p * 2^64.
        // A saturated threshold (p == 1.0 or within 2^-53 of it) returns
        // true without consuming a draw, exactly like rand's ALWAYS_TRUE.
        let p_int = (p * (2.0f64).powi(64)) as u64;
        if p_int == u64::MAX {
            return true;
        }
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The small fast generator: xoshiro256++ (what rand 0.8's `SmallRng`
    /// is on 64-bit targets).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            // rand 0.8's xoshiro256++ takes the upper half of a 64-bit
            // step for u32 output.
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // rand_xoshiro seeds through SplitMix64.
            let mut s = [0u64; 4];
            for word in &mut s {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *word = z ^ (z >> 31);
            }
            Self { s }
        }
    }

    /// Alias kept for API compatibility; this workspace always seeds
    /// explicitly, so `StdRng` can share the same engine.
    pub type StdRng = SmallRng;
}

pub mod seq {
    //! Slice sampling helpers (subset of `rand::seq::SliceRandom`).

    use super::Rng;

    /// rand 0.8 `gen_index`: 32-bit draw when the bound fits.
    fn gen_index<R: Rng + ?Sized>(rng: &mut R, ubound: usize) -> usize {
        if ubound <= u32::MAX as usize {
            rng.gen_range(0..ubound as u32) as usize
        } else {
            rng.gen_range(0..ubound)
        }
    }

    /// Random element choice and in-place shuffling over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// Fisher-Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[gen_index(rng, self.len())])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, gen_index(rng, i + 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn xoshiro_reference_vector() {
        // Reference: SplitMix64(0) fills the state, then xoshiro256++
        // output. Cross-checked against rand_xoshiro 0.6.
        let mut rng = SmallRng::seed_from_u64(0);
        let first = rng.next_u64();
        let second = rng.next_u64();
        assert_eq!(first, 0x53175d61490b23df);
        assert_eq!(second, 0x61da6f3dc380d507);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let a = rng.gen_range(0u32..7);
            assert!(a < 7);
            let b = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&b));
            let f = rng.gen_range(0.96f64..0.999);
            assert!((0.96..0.999).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bernoulli_rate_is_sane() {
        let mut rng = SmallRng::seed_from_u64(7);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use super::seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
