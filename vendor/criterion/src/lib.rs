//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion 0.5 this workspace uses:
//! `Criterion::default().sample_size(..)`, `bench_function`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, `benchmark_group`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark runs a
//! short calibration to choose an iteration count (~10 ms per sample),
//! collects `sample_size` samples, and prints the median as ns/iter with
//! min/max bounds. Passing `--test` (as `cargo test --benches` does) runs
//! every routine once without timing.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (mirror of criterion's enum;
/// the stub runs one routine call per setup regardless of variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (one setup per measurement).
    LargeInput,
    /// One setup per sample.
    PerIteration,
}

/// Drives timing loops inside a `bench_function` closure.
pub struct Bencher<'a> {
    iters: u64,
    elapsed: Duration,
    test_mode: bool,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    /// Times `routine` over the chosen iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            self.elapsed = Duration::from_nanos(1);
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            std::hint::black_box(routine(setup()));
            self.elapsed = Duration::from_nanos(1);
            return;
        }
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Top-level benchmark driver (mirror of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let test_mode = args.iter().any(|a| a == "--test");
        let filter = args
            .iter()
            .find(|a| !a.starts_with('-'))
            .cloned();
        Self { sample_size: 100, test_mode, filter }
    }
}

impl Criterion {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        if self.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
                test_mode: true,
                _marker: std::marker::PhantomData,
            };
            f(&mut b);
            println!("test {id} ... ok");
            return self;
        }

        // Calibrate: grow the iteration count until one sample takes ~10 ms,
        // so cheap routines aren't dominated by timer quantization.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
                test_mode: false,
                _marker: std::marker::PhantomData,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
                test_mode: false,
                _marker: std::marker::PhantomData,
            };
            f(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let lo = samples[0];
        let hi = samples[samples.len() - 1];
        println!(
            "{id:<44} time: [{} {} {}]",
            format_ns(lo),
            format_ns(median),
            format_ns(hi)
        );
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named set of benchmarks reported under a common prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{id}", self.name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Overrides the sample count for the remaining benches in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.4} ns")
    }
}

mod macros {
    /// Mirror of `criterion::criterion_group!` (both the struct-ish and
    /// positional forms).
    #[macro_export]
    macro_rules! criterion_group {
        (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
            pub fn $name() {
                let mut criterion: $crate::Criterion = $config;
                $($target(&mut criterion);)+
            }
        };
        ($name:ident, $($target:path),+ $(,)?) => {
            $crate::criterion_group! {
                name = $name;
                config = $crate::Criterion::default();
                targets = $($target),+
            }
        };
    }

    /// Mirror of `criterion::criterion_main!`.
    #[macro_export]
    macro_rules! criterion_main {
        ($($group:path),+ $(,)?) => {
            fn main() {
                $($group();)+
            }
        };
    }
}

/// Mirror of `criterion::black_box` (prefer `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial_add", |b| b.iter(|| 1u64 + 1));
        c.bench_function("batched_vec", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput)
        });
        let mut group = c.benchmark_group("grp");
        group.bench_function("inner", |b| b.iter(|| 2u64 * 2));
        group.finish();
    }

    #[test]
    fn runs_in_test_mode() {
        let mut c = Criterion { sample_size: 2, test_mode: true, filter: None };
        trivial(&mut c);
    }

    #[test]
    fn runs_timed_with_tiny_samples() {
        let mut c = Criterion { sample_size: 2, test_mode: false, filter: None };
        // Keep calibration fast: sample_size(2) and a cheap routine.
        c.bench_function("fast", |b| b.iter(|| std::hint::black_box(3u32).wrapping_mul(7)));
    }
}
