//! Compatibility-layer planning: the paper's core use case (§3.2, §4.1).
//!
//! You are building a new OS prototype with a Linux compatibility layer.
//! Given the set of system calls you already support, this example tells
//! you (a) what fraction of a typical installation would work, and (b)
//! which calls to implement next for the largest gain — exactly the
//! workflow Table 6 applies to User-Mode Linux, L4Linux, FreeBSD, and
//! Graphene.
//!
//! ```text
//! cargo run --example compat_planning
//! ```

use std::collections::HashSet;

use apistudy::compat::{all_profiles, graphene};
use apistudy::core::Study;
use apistudy::corpus::Scale;

fn main() {
    let study = Study::run(Scale::test(), 42);
    let metrics = study.metrics();

    // Evaluate the four systems the paper evaluates.
    println!("weighted completeness of existing Linux-compatible systems:");
    for profile in all_profiles(&metrics) {
        println!(
            "  {:<22} {:>3} syscalls  ->  {:6.2}%",
            profile.name,
            profile.len(),
            100.0 * profile.completeness(&metrics),
        );
    }

    // The paper's Graphene experiment: two scheduling calls unlock a jump.
    let g = graphene(&metrics);
    let g2 = g.with_added(&metrics, &["sched_setscheduler", "sched_setparam"]);
    println!(
        "\nGraphene before/after adding scheduling control: {:.2}% -> {:.2}%",
        100.0 * g.completeness(&metrics),
        100.0 * g2.completeness(&metrics),
    );

    // Now plan *your* prototype: start from a unikernel-ish 60 calls.
    let ranking = study
        .implementation_plan()
        .0
        .ranking;
    let mut supported: HashSet<u32> = ranking.iter().take(60).copied().collect();
    println!("\nincremental plan for a new prototype:");
    for step in 0..5 {
        let completeness = metrics.syscall_completeness(&supported);
        // Find the most important unsupported calls.
        let next: Vec<String> = ranking
            .iter()
            .filter(|nr| !supported.contains(nr))
            .take(10)
            .map(|&nr| {
                study
                    .data()
                    .catalog
                    .syscalls
                    .by_number(nr)
                    .map(|d| d.name.to_owned())
                    .unwrap_or_default()
            })
            .collect();
        println!(
            "  step {step}: {:>3} calls supported, completeness {:5.1}%, next: {}",
            supported.len(),
            100.0 * completeness,
            next.iter().take(4).cloned().collect::<Vec<_>>().join(", "),
        );
        // Implement the next 30.
        let additions: Vec<u32> = ranking
            .iter()
            .filter(|nr| !supported.contains(nr))
            .take(30)
            .copied()
            .collect();
        supported.extend(additions);
    }
    println!(
        "  final: {} calls, completeness {:.1}%",
        supported.len(),
        100.0 * metrics.syscall_completeness(&supported),
    );
}
