//! Compatibility-layer planning: the paper's core use case (§3.2, §4.1).
//!
//! You are building a new OS prototype with a Linux compatibility layer.
//! Given the set of system calls you already support, this example tells
//! you (a) what fraction of a typical installation would work, and (b)
//! which calls to implement next for the largest gain — exactly the
//! workflow Table 6 applies to User-Mode Linux, L4Linux, FreeBSD, and
//! Graphene.
//!
//! ```text
//! cargo run --example compat_planning
//! ```

use std::collections::HashSet;

use apistudy::compat::{all_profiles, graphene};
use apistudy::core::Study;
use apistudy::corpus::Scale;

fn main() {
    let study = Study::run(Scale::test(), 42);
    let metrics = study.metrics();

    // Evaluate the four systems the paper evaluates.
    println!("weighted completeness of existing Linux-compatible systems:");
    for profile in all_profiles(&metrics) {
        println!(
            "  {:<22} {:>3} syscalls  ->  {:6.2}%",
            profile.name,
            profile.len(),
            100.0 * profile.completeness(&metrics),
        );
    }

    // The paper's Graphene experiment: two scheduling calls unlock a jump.
    let g = graphene(&metrics);
    let g2 = g.with_added(&metrics, &["sched_setscheduler", "sched_setparam"]);
    println!(
        "\nGraphene before/after adding scheduling control: {:.2}% -> {:.2}%",
        100.0 * g.completeness(&metrics),
        100.0 * g2.completeness(&metrics),
    );

    // The greedy upgrade of the same suggestion list: each pick is the
    // best *next* call given the picks before it, with its exact gain.
    println!("\ngreedy next five calls for Graphene (gains stack):");
    for (name, gain) in g.greedy_suggestions(&metrics, 5) {
        println!("  {:<20} completeness +{:.2}%", name, 100.0 * gain);
    }

    // Now plan *your* prototype: start from a unikernel-ish 60 calls and
    // grow in batches. One incremental engine carries the whole plan —
    // each batch is `add_api` calls whose deltas are exact, rather than a
    // from-scratch completeness evaluation per step.
    let ranking = study
        .implementation_plan()
        .0
        .ranking;
    let supported: HashSet<u32> = ranking.iter().take(60).copied().collect();
    let mut engine = apistudy::core::CompletenessEngine::for_syscalls(
        &metrics, &supported,
    );
    let mut implemented = supported.len();
    println!("\nincremental plan for a new prototype:");
    let mut todo: Vec<u32> = ranking
        .iter()
        .filter(|nr| !supported.contains(nr))
        .copied()
        .collect();
    for step in 0..5 {
        let next: Vec<String> = todo
            .iter()
            .take(4)
            .filter_map(|&nr| {
                study
                    .data()
                    .catalog
                    .syscalls
                    .by_number(nr)
                    .map(|d| d.name.to_owned())
            })
            .collect();
        println!(
            "  step {step}: {:>3} calls supported, completeness {:5.1}%, next: {}",
            implemented,
            100.0 * engine.completeness(),
            next.join(", "),
        );
        // Implement the next 30.
        for nr in todo.drain(..30.min(todo.len())) {
            engine.add_api(apistudy::catalog::Api::Syscall(nr));
            implemented += 1;
        }
    }
    println!(
        "  final: {implemented} calls, completeness {:.1}%",
        100.0 * engine.completeness(),
    );
}
