//! Standalone binary inspection: the analyzer as a mini-objdump.
//!
//! Generates one synthetic application binary, then walks the analysis
//! pipeline over it step by step — ELF structure, discovered functions,
//! per-function facts, recovered vectored opcodes and paths, and the call
//! graph in Graphviz DOT form.
//!
//! ```text
//! cargo run --example inspect_binary
//! ```

use apistudy::analysis::BinaryAnalysis;
use apistudy::corpus::codegen::{generate_executable, ExecSpec, VectoredVia};
use apistudy::elf::ElfFile;

fn main() {
    // A plausible application: stdio + file I/O via libc, a couple of
    // inline syscalls, terminal ioctls, and hard-coded /proc paths.
    let spec = ExecSpec {
        needed: vec!["libc.so.6".into()],
        libc_calls: vec![
            "printf".into(),
            "fopen".into(),
            "fread".into(),
            "fclose".into(),
            "malloc".into(),
            "free".into(),
        ],
        direct_syscalls: vec![39, 186], // getpid, gettid
        ioctl_codes: vec![
            (0x5401, VectoredVia::Wrapper), // TCGETS
            (0x5413, VectoredVia::Inline),  // TIOCGWINSZ
        ],
        paths: vec!["/proc/self/status".into(), "/proc/%d/cmdline".into()],
        helpers: 3,
        seed: 1234,
        ..Default::default()
    };
    let bytes = generate_executable(&spec);
    println!("generated {} bytes of ELF", bytes.len());

    // 1. Container structure.
    let elf = ElfFile::parse(&bytes).expect("parse");
    println!("\nclass: {:?}", elf.classify());
    println!("needed: {:?}", elf.needed_libraries().unwrap());
    println!("sections:");
    for s in &elf.sections {
        if !s.name.is_empty() {
            println!(
                "  {:<12} addr {:#08x}  size {:>5}",
                s.name, s.addr, s.size
            );
        }
    }
    println!("PLT map:");
    for (addr, name) in elf.plt_map().unwrap() {
        println!("  {addr:#08x} -> {name}");
    }

    // 2. Static analysis.
    let ba = BinaryAnalysis::analyze(&elf).expect("analyze");
    println!("\nfunctions:");
    for f in &ba.funcs {
        println!(
            "  {:<12} {:#08x}+{:<4}  syscalls {:?}  imports {:?}",
            f.name,
            f.addr,
            f.size,
            f.facts.syscalls,
            f.facts.imports,
        );
    }

    // 3. Entry-reachable footprint.
    let fp = ba.entry_facts();
    println!("\nentry-reachable footprint:");
    println!("  syscalls:    {:?}", fp.syscalls);
    println!("  ioctl codes: {:x?}", fp.ioctl_codes);
    println!("  imports:     {:?}", fp.imports);
    println!("  paths:       {:?}", fp.paths);

    // 4. Call graph, ready for `dot -Tsvg`.
    println!("\ncall graph (Graphviz DOT):\n{}", ba.call_graph_dot());
}
