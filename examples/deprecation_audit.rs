//! Deprecation and security audit: the paper's §5 use case.
//!
//! Kernel maintainers deciding whether an API can be retired — or whether
//! a secure replacement is getting traction — need adoption data. This
//! example reports: retired calls still attempted, deprecation candidates
//! with zero users, and the adoption gap between insecure/old calls and
//! their secure/new variants (Tables 8–9).
//!
//! ```text
//! cargo run --example deprecation_audit
//! ```

use apistudy::catalog::variants::{GENERATION_PAIRS, SECURITY_PAIRS};
use apistudy::catalog::SyscallStatus;
use apistudy::core::Study;
use apistudy::corpus::Scale;

fn main() {
    let study = Study::run(Scale::test(), 42);
    let metrics = study.metrics();
    let catalog = &study.data().catalog;

    // 1. Officially retired calls that applications still attempt.
    println!("retired system calls still attempted by applications:");
    for def in catalog.syscalls.iter() {
        if def.status != SyscallStatus::Retired {
            continue;
        }
        let api = apistudy::catalog::Api::Syscall(def.number);
        let imp = metrics.importance(api);
        if imp > 0.0 {
            let pkgs: Vec<String> = metrics
                .dependents(api)
                .iter()
                .take(2)
                .map(|p| p.name.clone())
                .collect();
            println!(
                "  {:<12} importance {:5.1}%  attempted by: {}",
                def.name,
                100.0 * imp,
                pkgs.join(", "),
            );
        }
    }

    // 2. Deprecation candidates: defined, has an entry point, zero users.
    println!("\ndeprecation candidates (active, never used):");
    for def in catalog.syscalls.iter() {
        if def.status == SyscallStatus::Active {
            let api = apistudy::catalog::Api::Syscall(def.number);
            if metrics.importance(api) == 0.0 {
                println!("  {}", def.name);
            }
        }
    }

    // 3. Secure-variant adoption (Table 8): how many packages still use
    // the race-prone or ill-specified form?
    println!("\nsecure-variant adoption (fraction of packages):");
    for pair in SECURITY_PAIRS.iter().take(8) {
        let l = catalog.syscall(pair.left).unwrap();
        let r = catalog.syscall(pair.right).unwrap();
        println!(
            "  {:<10} {:6.2}%   vs   {:<12} {:6.2}%",
            pair.left,
            100.0 * metrics.unweighted_importance(l),
            pair.right,
            100.0 * metrics.unweighted_importance(r),
        );
    }

    // 4. Old-vs-new migration (Table 9).
    println!("\nold-vs-new API migration:");
    for pair in GENERATION_PAIRS {
        let l = catalog.syscall(pair.left).unwrap();
        let r = catalog.syscall(pair.right).unwrap();
        let old = metrics.unweighted_importance(l);
        let new = metrics.unweighted_importance(r);
        let verdict = if new > old { "migrated" } else { "stalled" };
        println!(
            "  {:<10} {:6.2}%  ->  {:<12} {:6.2}%   [{verdict}]",
            pair.left,
            100.0 * old,
            pair.right,
            100.0 * new,
        );
    }
}
