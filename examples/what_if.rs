//! What-if analysis: simulating API adoption changes.
//!
//! The paper's §5 closes with "our dataset provides more opportunity for
//! system developers to actively communicate with application developers,
//! in order to speed up the process of retiring problematic APIs." This
//! example plays that forward: what would the measurements look like if
//! outreach succeeded and the TOCTTOU-safe `faccessat` reached 50%
//! adoption while the race-prone `access` fell to 25%?
//!
//! ```text
//! cargo run --example what_if
//! ```

use std::collections::HashSet;

use apistudy::catalog::ApiKind;
use apistudy::core::{diff::StudyDiff, CompletenessEngine, Study};
use apistudy::corpus::{CalibrationSpec, Scale};

fn main() {
    let scale = Scale::test();

    println!("measuring baseline (today's adoption)...");
    let baseline = Study::run_with(scale, CalibrationSpec::default(), 7);

    println!("measuring the what-if world (faccessat outreach succeeded)...");
    let scenario = CalibrationSpec {
        adoption_overrides: vec![
            ("faccessat".into(), 0.50),
            ("access".into(), 0.25),
            ("waitid".into(), 0.35),
            ("wait4".into(), 0.25),
        ],
        ..CalibrationSpec::default()
    };
    let future = Study::run_with(scale, scenario, 7);

    let mb = baseline.metrics();
    let mf = future.metrics();
    let diff = StudyDiff::compare(&mb, &mf, ApiKind::Syscall);

    println!("\nlargest adoption movers (fraction of packages):");
    for s in diff.top_adoption_movers(8) {
        println!(
            "  {:<12} {:6.2}% -> {:6.2}%  ({:+.2} pts)",
            s.name,
            100.0 * s.unweighted.0,
            100.0 * s.unweighted.1,
            100.0 * s.unweighted_delta(),
        );
    }

    // The deprecation question: can `access` be removed in the what-if
    // world? Weighted importance answers "who would notice".
    for name in ["access", "faccessat", "wait4", "waitid"] {
        let s = diff.shift(name).expect("tracked");
        println!(
            "\n{name}: importance {:.1}% -> {:.1}%, adoption {:.2}% -> {:.2}%",
            100.0 * s.importance.0,
            100.0 * s.importance.1,
            100.0 * s.unweighted.0,
            100.0 * s.unweighted.1,
        );
    }
    println!(
        "\neven at 25% adoption, access keeps ~100% weighted importance —\n\
         deprecation needs the *installed base* to move, not just new code,\n\
         which is exactly the paper's point about slow API retirement."
    );

    // The other direction of the same question: if the kernel *dropped*
    // one of these calls today, how much of an installation breaks? One
    // incremental engine answers all four — `remove_api` returns the
    // exact completeness delta and `add_api` restores it for the next
    // candidate, with no from-scratch recomputation in the loop.
    println!("\nweighted completeness cost of dropping a call outright:");
    let all_supported: HashSet<u32> = baseline
        .data()
        .catalog
        .syscalls
        .iter()
        .map(|d| d.number)
        .collect();
    let mut engine = CompletenessEngine::for_syscalls(&mb, &all_supported);
    for name in ["access", "faccessat", "wait4", "waitid"] {
        let Some(api) = baseline.syscall(name) else { continue };
        let drop = engine.remove_api(api);
        engine.add_api(api);
        println!("  drop {name:<12} completeness {:+.2} pts", 100.0 * drop);
    }
    println!(
        "\nin the baseline world every one of them is load-bearing: the\n\
         drop cost is the failing packages' installed mass, not a vote."
    );
}
