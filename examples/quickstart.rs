//! Quickstart: run a small study and ask the questions the paper opens
//! with — which system calls matter, and how complete would a prototype
//! with N calls be?
//!
//! ```text
//! cargo run --example quickstart
//! ```

use apistudy::catalog::ApiKind;
use apistudy::core::Study;
use apistudy::corpus::Scale;

fn main() {
    // Generate a small synthetic distribution and measure it.
    let study = Study::run(Scale::test(), 42);
    let metrics = study.metrics();

    // 1. How important are individual system calls?
    println!("API importance (probability an installation needs the call):");
    for name in ["read", "ioctl", "mbind", "kexec_load", "mq_notify"] {
        let api = study.syscall(name).expect("known syscall");
        println!(
            "  {name:<12} {:6.2}%  (used by {:.2}% of packages)",
            100.0 * metrics.importance(api),
            100.0 * metrics.unweighted_importance(api),
        );
    }

    // 2. Who depends on a niche call?
    let mbind = study.syscall("mbind").unwrap();
    let deps = metrics.dependents(mbind);
    println!("\nmost-installed packages needing mbind:");
    for p in deps.iter().take(3) {
        println!("  {} (installed on {:.1}% of systems)", p.name, 100.0 * p.prob);
    }

    // 3. How far would a prototype get with the N most important calls?
    let (curve, stages) = study.implementation_plan();
    println!("\nweighted completeness of a prototype supporting the top-N calls:");
    for n in [40, 81, 145, 202, 272] {
        println!("  N = {n:>3}: {:5.1}%", 100.0 * curve.at(n));
    }
    println!("\ncalls needed for half of a typical installation: {}",
             curve.calls_needed(0.5));
    println!("stage I samples: {}", stages[0].samples.join(", "));

    // 4. The long tail: how many syscalls does nobody use?
    let unused = metrics
        .importance_ranking(ApiKind::Syscall)
        .into_iter()
        .filter(|&(_, imp)| imp == 0.0)
        .count();
    println!("\nsystem calls used by no application: {unused}");
}
