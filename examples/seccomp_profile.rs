//! Automatic seccomp policy generation: the paper's §6 application.
//!
//! A package's statically recovered system call footprint is exactly the
//! allow-list an application-specific sandbox needs. This example prints
//! the footprint-uniqueness statistics the paper reports and generates a
//! reviewable seccomp policy for one package.
//!
//! ```text
//! cargo run --example seccomp_profile [package]
//! ```

use apistudy::core::{footprints, Study};
use apistudy::corpus::Scale;

fn main() {
    let package = std::env::args().nth(1).unwrap_or_else(|| "coreutils".into());
    let study = Study::run(Scale::test(), 42);
    let data = study.data();

    // Footprints as identifiers (§6): a third of applications have a
    // footprint shared with no other application.
    let stats = footprints::uniqueness(data);
    println!(
        "applications: {}   distinct footprints: {}   unique: {}",
        stats.applications, stats.distinct, stats.unique,
    );

    match footprints::seccomp_policy_text(data, &package) {
        Some(policy) => {
            let calls = footprints::seccomp_profile(data, &package)
                .map(|p| p.len())
                .unwrap_or(0);
            println!(
                "\nseccomp policy for {package:?} ({calls} allowed calls):\n"
            );
            println!("{policy}");
        }
        None => {
            eprintln!("package {package:?} not found; try: coreutils, qemu, dash");
            std::process::exit(1);
        }
    }

    // And the loadable artifact: a real classic-BPF filter program.
    use apistudy::core::seccomp_bpf::{
        run_filter, seccomp_filter, SeccompData, AUDIT_ARCH_X86_64,
        RET_ALLOW,
    };
    let program = seccomp_filter(data, &package)
        .expect("package verified above, footprint coalesces");
    println!(
        "classic-BPF filter: {} instructions, {} bytes on the wire",
        program.len(),
        program.to_bytes().len(),
    );
    // Demonstrate it running: `reboot` (169) should be killed for almost
    // any package; `read` (0) allowed for any dynamically linked one.
    for (name, nr) in [("read", 0u32), ("reboot", 169)] {
        let verdict = run_filter(
            &program,
            SeccompData { nr, arch: AUDIT_ARCH_X86_64 },
        );
        println!(
            "  {name:<8} -> {}",
            if verdict == Some(RET_ALLOW) { "ALLOW" } else { "KILL" }
        );
    }
    println!("\nfilter disassembly (first 12 instructions):");
    for line in program.disassemble().lines().take(12) {
        println!("  {line}");
    }
}
