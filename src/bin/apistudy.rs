//! `apistudy` — command-line front end to the study.
//!
//! ```text
//! apistudy [--scale test|medium|paper|N] [--seed N] [--cache off|mem|disk]
//!          [--threads N] [--shard N] [--store <path> [--resume]]
//!          [--deadline-ms N] <command> [args]
//!
//! commands:
//!   importance <api>...      weighted + unweighted importance of syscalls
//!   dependents <api>         most-installed packages needing a syscall
//!   suggest <file> [--greedy] [--journal <path> [--resume]]
//!                            next syscalls for a prototype (one name or
//!                            number per line in <file>); with --greedy,
//!                            picks are in marginal-gain order — each line
//!                            is the best *next* addition given every line
//!                            above it, found by the lazy-greedy planner;
//!                            --journal write-ahead logs each pick so an
//!                            interrupted plan resumes bit-identically
//!   completeness <file>      weighted completeness of a syscall list
//!   workloads <api>...       packages exercising all the given syscalls
//!   seccomp <package>        seccomp allow-list + BPF filter for a package
//!                            (binary-search tree layout, with the legacy
//!                            linear chain's size/depth for comparison)
//!   seccomp --all [--journal <path> [--resume]] [--top N]
//!                            synthesize + bit-verify filters for every
//!                            package: content-hash dedup, shared-prefix
//!                            accounting, tree-vs-linear eval depth, and
//!                            popularity-weighted attack-surface reduction;
//!                            --journal write-ahead logs each unique
//!                            filter's measurements so an interrupted batch
//!                            resumes bit-identically
//!   export <path>            write the measured dataset as CSV
//!   summary                  headline numbers (Figures 2/3/7)
//!   faults [fault-seed] [--journal <path> [--resume]]
//!                            corruption-degradation sweep (0% → 10%,
//!                            11 points, incremental via the analysis
//!                            cache; footer reports hit/miss traffic);
//!                            --journal commits each completed point to a
//!                            crash-safe log, --resume replays a prior
//!                            log (fingerprint-checked) and computes only
//!                            the missing tail
//!   serve [--port N] [--max-conns N] [--request-deadline-ms N]
//!         [--idle-deadline-ms N]
//!                            run the hardened query daemon: seal the
//!                            measured study into an immutable snapshot
//!                            and answer queries over the checksummed
//!                            frame protocol (prints `serving on ADDR`
//!                            on stdout when ready)
//!   query <addr> <op>        talk to a running daemon:
//!                              ping
//!                              importance <api>...
//!                              completeness <file>
//!                              suggest <file> [limit]
//!                              probe <file> <api>...
//!                              reload
//!                              shutdown
//!                            (no local analysis: only the daemon works)
//! ```
//!
//! `--scale` also accepts a bare package count `N` (installations scale
//! along at 95·N), so experiments can dial corpus size precisely.
//!
//! `--cache` (default: the `APISTUDY_CACHE` environment variable, then
//! `mem`) selects the incremental analysis cache mode: `off` re-analyzes
//! everything, `mem` shares results within the process, `disk` also
//! warm-starts from and persists to `target/apistudy-cache/`.
//!
//! `--threads N` sets the pipeline worker count. Precedence: the flag
//! wins over the `APISTUDY_THREADS` environment variable, which wins
//! over the automatic default (available parallelism capped at 16).
//!
//! `--shard N` selects the streaming pipeline with N packages per shard
//! (0 forces the in-memory path). Without the flag, corpora over 1024
//! packages stream automatically at 512 packages per shard — only one
//! shard of binaries is ever materialized, so `--scale paper` runs in
//! shard-bounded memory. Results are bit-identical either way.
//!
//! `--store <path>` persists each completed clean shard to an on-disk
//! footprint store; a pre-command `--resume` replays shards already in a
//! fingerprint-matching store instead of recomputing them (the
//! post-command `--resume` of `suggest`/`faults` keeps its journal
//! meaning).
//!
//! `--deadline-ms N` (or the `APISTUDY_ITEM_DEADLINE_MS` environment
//! variable; the flag wins) arms a wall-clock watchdog in the pipeline:
//! any single package whose analysis exceeds the deadline is quarantined
//! (stage `deadline`) instead of stalling the run; the `faults` footer
//! counts such skips. `serve` arms a 30 000 ms default when neither the
//! flag nor the variable is set, so re-analysis triggered by `Reload`
//! can never wedge the daemon on one pathological package.

use std::collections::HashSet;
use std::process::exit;

use apistudy::catalog::ApiKind;
use apistudy::core::{
    dataset::Dataset,
    footprints,
    planner::CompletenessCurve,
    seccomp_bpf::{depth_profile, seccomp_filter, BpfProgram, AUDIT_ARCH_X86_64},
    CacheMode, Study,
};
use apistudy::corpus::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: apistudy [--scale test|medium|paper|N] [--seed N]\n\
         \x20              [--cache off|mem|disk] [--threads N]\n\
         \x20              [--shard N] [--store <path> [--resume]]\n\
         \x20              [--deadline-ms N] <command>\n\
         \x20  --threads:     worker count (flag > APISTUDY_THREADS env > auto)\n\
         \x20  --shard:       stream in N-package shards (0 = in-memory;\n\
         \x20                 default: auto-stream above 1024 packages)\n\
         \x20  --store:       persist clean shards; --resume replays them\n\
         \x20  --deadline-ms: per-package watchdog (flag >\n\
         \x20                 APISTUDY_ITEM_DEADLINE_MS env; serve defaults\n\
         \x20                 to 30000)\n\
         commands: importance <api>... | dependents <api>\n\
         \x20         | suggest <file> [--greedy] [--journal <path> [--resume]]\n\
         \x20         | completeness <file> | workloads <api>...\n\
         \x20         | seccomp <pkg> | export <path> | summary\n\
         \x20         | seccomp --all [--journal <path> [--resume]] [--top N]\n\
         \x20         | faults [fault-seed] [--journal <path> [--resume]]\n\
         \x20         | serve [--port N] [--max-conns N] [--workers N]\n\
         \x20                 [--request-deadline-ms N] [--idle-deadline-ms N]\n\
         \x20                 [--no-cache] [--self-audit] [--sys-faults SPEC]\n\
         \x20         | query <addr> ping|importance|completeness|suggest\n\
         \x20                        |probe|reload|shutdown ..."
    );
    exit(2)
}

/// Remove a boolean flag from the tail arguments, reporting presence.
fn take_flag(rest: &mut Vec<String>, name: &str) -> bool {
    match rest.iter().position(|a| a == name) {
        Some(i) => {
            rest.remove(i);
            true
        }
        None => false,
    }
}

/// Remove a `--flag value` pair from the tail arguments.
fn take_opt(rest: &mut Vec<String>, name: &str) -> Option<String> {
    let i = rest.iter().position(|a| a == name)?;
    if i + 1 >= rest.len() {
        usage()
    }
    let value = rest.remove(i + 1);
    rest.remove(i);
    Some(value)
}

fn read_syscall_list(study: &Study, path: &str) -> HashSet<u32> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    });
    let mut out = HashSet::new();
    for token in text.split_whitespace() {
        let nr = token
            .parse::<u32>()
            .ok()
            .or_else(|| study.data().catalog.syscalls.number_of(token));
        match nr {
            Some(nr) => {
                out.insert(nr);
            }
            None => {
                eprintln!("unknown syscall {token:?}");
                exit(1)
            }
        }
    }
    out
}

/// Corpora above this size stream by default; smaller ones run in-memory
/// (identical results, less shard bookkeeping).
const AUTO_STREAM_THRESHOLD: usize = 1024;

fn main() {
    let mut scale = Scale::test();
    let mut seed = 2016u64;
    let mut cache_mode = CacheMode::from_env();
    let mut threads: Option<usize> = None;
    let mut shard: Option<usize> = None;
    let mut store_path: Option<String> = None;
    let mut store_resume = false;
    let mut deadline_ms: Option<u64> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("test") => Scale::test(),
                    Some("medium") => Scale::medium(),
                    Some("paper") => Scale::paper(),
                    Some(n) => match n.parse::<usize>() {
                        Ok(p) if p > 0 => Scale {
                            packages: p,
                            installations: p as u64 * 95,
                        },
                        _ => usage(),
                    },
                    None => usage(),
                }
            }
            "--seed" => {
                seed = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--cache" => {
                cache_mode = args
                    .next()
                    .as_deref()
                    .and_then(CacheMode::parse)
                    .unwrap_or_else(|| usage())
            }
            "--threads" => {
                threads = match args.next().and_then(|s| s.parse::<usize>().ok())
                {
                    Some(t) if t > 0 => Some(t),
                    _ => usage(),
                }
            }
            "--shard" => {
                shard = args
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .map(Some)
                    .unwrap_or_else(|| usage())
            }
            "--store" => {
                store_path = Some(args.next().unwrap_or_else(|| usage()))
            }
            "--resume" => store_resume = true,
            "--deadline-ms" => {
                deadline_ms =
                    match args.next().and_then(|s| s.parse::<u64>().ok()) {
                        Some(ms) if ms > 0 => Some(ms),
                        _ => usage(),
                    }
            }
            "--help" | "-h" => usage(),
            other => {
                rest.push(other.to_owned());
                rest.extend(args.by_ref());
            }
        }
    }
    if rest.is_empty() || (store_resume && store_path.is_none()) {
        usage();
    }
    let command = rest.remove(0);

    // `query` talks to a running daemon and never touches the pipeline;
    // handle it before any measurement work.
    if command == "query" {
        run_query(rest);
    }

    // The flag beats the environment, which beats the automatic default
    // (the pipeline's worker pool reads the variable).
    if let Some(t) = threads {
        std::env::set_var("APISTUDY_THREADS", t.to_string());
    }
    // Watchdog precedence: flag > env > (serve only) a 30 s default, so
    // daemon re-analysis can never wedge on one pathological package.
    if let Some(ms) = deadline_ms {
        std::env::set_var("APISTUDY_ITEM_DEADLINE_MS", ms.to_string());
    } else if command == "serve"
        && std::env::var_os("APISTUDY_ITEM_DEADLINE_MS").is_none()
    {
        std::env::set_var("APISTUDY_ITEM_DEADLINE_MS", "30000");
    }

    let shard_size = shard.unwrap_or(if store_path.is_some()
        || scale.packages > AUTO_STREAM_THRESHOLD
    {
        apistudy::core::DEFAULT_SHARD_SIZE
    } else {
        0
    });
    eprintln!(
        "measuring {} packages ({} installations, seed {seed}, {})...",
        scale.packages,
        scale.installations,
        if shard_size > 0 {
            format!("streaming in shards of {shard_size}")
        } else {
            "in-memory".to_owned()
        },
    );
    let study = match &store_path {
        Some(path) => {
            let out = Study::run_streamed_stored(
                scale,
                seed,
                shard_size,
                std::path::Path::new(path),
                store_resume,
            );
            match out {
                Ok((study, st)) => {
                    eprintln!(
                        "store [{path}]: {} shards replayed ({} packages), \
                         {} computed, {} stored",
                        st.replayed_shards,
                        st.replayed_packages,
                        st.computed_shards,
                        st.stored_shards,
                    );
                    study
                }
                Err(e) => {
                    eprintln!("store error: {e}");
                    exit(1)
                }
            }
        }
        None if shard_size > 0 => Study::run_streamed(scale, seed, shard_size),
        None => Study::run(scale, seed),
    };
    let peak_kb = study.data().diagnostics.peak_rss_kb;
    if peak_kb > 0 {
        eprintln!("peak RSS: {:.1} MiB", peak_kb as f64 / 1024.0);
    }

    // `serve` consumes the study whole (it becomes the daemon's sealed
    // snapshot), so it branches off before a Metrics view is borrowed.
    if command == "serve" {
        run_serve(study, rest, scale, seed, shard_size, store_path);
    }
    let metrics = study.metrics();

    match command.as_str() {
        "importance" => {
            if rest.is_empty() {
                usage();
            }
            println!("{:<20} {:>10} {:>12}", "syscall", "importance", "unweighted");
            for name in &rest {
                match study.syscall(name) {
                    Some(api) => println!(
                        "{:<20} {:>9.2}% {:>11.2}%",
                        name,
                        100.0 * metrics.importance(api),
                        100.0 * metrics.unweighted_importance(api),
                    ),
                    None => println!("{name:<20} (unknown syscall)"),
                }
            }
        }
        "dependents" => {
            let Some(name) = rest.first() else { usage() };
            let Some(api) = study.syscall(name) else {
                eprintln!("unknown syscall {name:?}");
                exit(1)
            };
            for p in metrics.dependents(api).iter().take(15) {
                println!("{:<28} installed on {:>6.2}%", p.name, 100.0 * p.prob);
            }
        }
        "suggest" => {
            let greedy = take_flag(&mut rest, "--greedy");
            let journal = take_opt(&mut rest, "--journal");
            let resume = take_flag(&mut rest, "--resume");
            if (journal.is_some() && !greedy) || (resume && journal.is_none()) {
                usage()
            }
            let Some(path) = rest.first() else { usage() };
            let supported = read_syscall_list(&study, path);
            let completeness = metrics.syscall_completeness(&supported);
            println!(
                "supported: {} syscalls, weighted completeness {:.2}%",
                supported.len(),
                100.0 * completeness,
            );
            if greedy {
                // Each pick is the best *next* addition given all picks
                // above it; the gains therefore stack.
                println!("\ngreedy plan (each gain assumes the lines above):");
                let picks = match &journal {
                    Some(jpath) => {
                        use apistudy::analysis::AnalysisOptions;
                        use apistudy::core::{
                            corpus_fingerprint, greedy_suggestions_journaled,
                        };
                        let out = greedy_suggestions_journaled(
                            &metrics,
                            &supported,
                            10,
                            corpus_fingerprint(study.repo()),
                            AnalysisOptions::default().fingerprint(),
                            std::path::Path::new(jpath),
                            resume,
                        );
                        match out {
                            Ok((picks, jstats)) => {
                                eprintln!(
                                    "journal [{jpath}]: {} replayed, \
                                     {} appended",
                                    jstats.replayed, jstats.appended,
                                );
                                picks
                            }
                            Err(e) => {
                                eprintln!("journal error: {e}");
                                exit(1)
                            }
                        }
                    }
                    None => apistudy::core::greedy_suggestions(
                        &metrics, &supported, 10,
                    ),
                };
                let mut acc = completeness;
                for (nr, gain) in picks {
                    // A resumed journal could in principle carry a number
                    // outside this catalog; degrade the label, never panic.
                    let name = syscall_label(study.data(), nr);
                    acc += gain;
                    println!(
                        "  {name:<20} completeness +{:.2}% (cumulative {:.2}%)",
                        100.0 * gain,
                        100.0 * acc,
                    );
                }
            } else {
                // Standalone gains, importance-ordered. The incremental
                // engine probes each candidate in place of the old
                // clone-the-set-and-recompute evaluation.
                println!("\nmost valuable additions:");
                let mut engine = apistudy::core::CompletenessEngine::for_syscalls(
                    &metrics, &supported,
                );
                let ranking = metrics.importance_ranking(ApiKind::Syscall);
                let mut shown = 0;
                for (api, imp) in ranking {
                    let apistudy::catalog::Api::Syscall(nr) = api else {
                        continue;
                    };
                    if supported.contains(&nr) {
                        continue;
                    }
                    let name = syscall_label(study.data(), nr);
                    let gain = engine.probe_gain(api);
                    println!(
                        "  {name:<20} importance {:>6.2}%  completeness +{:.2}%",
                        100.0 * imp,
                        100.0 * gain,
                    );
                    shown += 1;
                    if shown >= 10 {
                        break;
                    }
                }
            }
        }
        "completeness" => {
            let Some(path) = rest.first() else { usage() };
            let supported = read_syscall_list(&study, path);
            println!(
                "{:.4}",
                metrics.weighted_completeness_masked(
                    &metrics.syscall_unsupported_mask(&supported)
                ),
            );
        }
        "workloads" => {
            if rest.is_empty() {
                usage();
            }
            let apis: Vec<apistudy::catalog::Api> = rest
                .iter()
                .map(|name| {
                    study.syscall(name).unwrap_or_else(|| {
                        eprintln!("unknown syscall {name:?}");
                        exit(1)
                    })
                })
                .collect();
            use apistudy::core::workloads::{exercised_mass, workloads_for, Match};
            let hits = workloads_for(&metrics, &apis, Match::All);
            println!(
                "packages exercising all of [{}] ({:.1}% of installed mass):",
                rest.join(", "),
                100.0 * exercised_mass(&metrics, &apis, Match::All),
            );
            for p in hits.iter().take(15) {
                println!("  {:<28} installed on {:>6.2}%", p.name, 100.0 * p.prob);
            }
        }
        "seccomp" => {
            use apistudy::core::seccomp_fleet::{
                fleet_table, synthesize_fleet, synthesize_fleet_journaled,
                FleetOptions,
            };
            if take_flag(&mut rest, "--all") {
                let journal = take_opt(&mut rest, "--journal");
                let resume = take_flag(&mut rest, "--resume");
                if resume && journal.is_none() {
                    usage()
                }
                let top = take_opt(&mut rest, "--top")
                    .map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .unwrap_or(15);
                let opts = FleetOptions::default();
                eprintln!(
                    "synthesizing seccomp filters for {} packages...",
                    study.data().packages.len(),
                );
                let started = std::time::Instant::now();
                let report = match &journal {
                    Some(jpath) => synthesize_fleet_journaled(
                        study.data(),
                        study.repo(),
                        opts,
                        std::path::Path::new(jpath),
                        resume,
                    ),
                    None => synthesize_fleet(study.data(), opts),
                }
                .unwrap_or_else(|e| {
                    eprintln!("fleet synthesis failed: {e}");
                    exit(1)
                });
                let elapsed = started.elapsed();
                print!("{}", fleet_table(&report, top).render());
                println!(
                    "fleet: {} packages -> {} unique filters \
                     ({:.1}x dedup), {} tree insns deduped (naive {}), \
                     {} more shareable as prefixes",
                    report.packages,
                    report.unique.len(),
                    report.dedup_ratio(),
                    report.total_tree_insns_deduped(),
                    report.total_tree_insns_naive(),
                    report.prefix_shared_insns(),
                );
                println!(
                    "eval depth: tree max {} vs linear max {} \
                     ({} allow-sets overflow the linear chain)",
                    report.max_tree_depth(),
                    report.max_linear_depth(),
                    report.linear_failures(),
                );
                println!(
                    "attack surface: {:.1} of {} syscalls reachable by the \
                     weighted-average installation ({:.1}% reduction)",
                    report.weighted_allow_syscalls(),
                    report.catalog_syscalls,
                    100.0 * report.weighted_attack_surface_reduction(),
                );
                eprintln!(
                    "synthesized{} in {:.2}s ({:.0} filters/s)",
                    if report.verified { " + bit-verified" } else { "" },
                    elapsed.as_secs_f64(),
                    f64::from(report.packages) / elapsed.as_secs_f64().max(1e-9),
                );
                if let Some(stats) = report.journal {
                    eprintln!(
                        "journal: {} replayed, {} appended",
                        stats.replayed, stats.appended,
                    );
                }
            } else {
                let Some(pkg) = rest.first() else { usage() };
                let Some(profile) =
                    footprints::seccomp_profile(study.data(), pkg)
                else {
                    eprintln!("unknown package {pkg:?}");
                    exit(1)
                };
                println!("# {} allowed syscalls", profile.len());
                for name in &profile {
                    println!("allow {name}");
                }
                let filter = match seccomp_filter(study.data(), pkg) {
                    Ok(f) => f,
                    Err(e) => {
                        eprintln!("cannot build BPF filter for {pkg:?}: {e}");
                        exit(1)
                    }
                };
                let dp = depth_profile(&filter, 4096)
                    .expect("generated filter is well-formed");
                eprintln!(
                    "BPF filter: {} instructions ({} bytes), arch pin \
                     {AUDIT_ARCH_X86_64:#x}, eval depth max {} avg {:.1}",
                    filter.len(),
                    filter.to_bytes().len(),
                    dp.max,
                    dp.avg(),
                );
                let numbers: Vec<u32> = study
                    .data()
                    .package(pkg)
                    .map(|p| p.footprint.syscalls().collect())
                    .unwrap_or_default();
                match BpfProgram::try_allow_list(&numbers) {
                    Ok(lin) => {
                        let lp = depth_profile(&lin, 4096)
                            .expect("generated filter is well-formed");
                        eprintln!(
                            "legacy linear chain: {} instructions, eval \
                             depth max {} avg {:.1}",
                            lin.len(),
                            lp.max,
                            lp.avg(),
                        );
                    }
                    Err(e) => eprintln!("legacy linear chain: {e}"),
                }
            }
        }
        "export" => {
            let Some(path) = rest.first() else { usage() };
            let ds = Dataset::from_study(study.data());
            let text = ds.to_csv();
            std::fs::write(path, &text).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                exit(1)
            });
            eprintln!("wrote {} rows ({} bytes) to {path}", ds.rows.len(), text.len());
        }
        "faults" => {
            use apistudy::analysis::AnalysisOptions;
            use apistudy::core::{
                corruption_sweep_journaled, corruption_sweep_with,
                degradation_table, AnalysisCache, JournalStats,
            };
            let journal = take_opt(&mut rest, "--journal");
            let resume = take_flag(&mut rest, "--resume");
            if resume && journal.is_none() {
                usage()
            }
            let fault_seed = rest
                .first()
                .map(|s| s.parse().unwrap_or_else(|_| usage()))
                .unwrap_or(0x5EED);
            // 11 points, 0% → 10% in 1% steps: the cache makes the fine
            // grid affordable (only mutated binaries re-analyze per point).
            let rates: Vec<f64> = (0..=10).map(|i| i as f64 / 100.0).collect();
            eprintln!(
                "sweeping injected corruption (fault seed {fault_seed:#x}, \
                 cache {cache_mode})..."
            );
            let cache = AnalysisCache::new(cache_mode);
            let (points, jstats) = match &journal {
                Some(jpath) => {
                    let out = corruption_sweep_journaled(
                        study.repo(),
                        AnalysisOptions::default(),
                        fault_seed,
                        &rates,
                        &cache,
                        std::path::Path::new(jpath),
                        resume,
                    );
                    match out {
                        Ok((points, jstats)) => (points, jstats),
                        Err(e) => {
                            eprintln!("journal error: {e}");
                            exit(1)
                        }
                    }
                }
                None => (
                    corruption_sweep_with(
                        study.repo(),
                        AnalysisOptions::default(),
                        fault_seed,
                        &rates,
                        &cache,
                    ),
                    JournalStats::default(),
                ),
            };
            println!("{}", degradation_table(&points).render());
            let deadline_skips: u64 =
                points.iter().map(|p| p.deadline_skipped as u64).sum();
            eprintln!(
                "journal [{}]: {} replayed, {} appended; deadline skips: \
                 {deadline_skips}",
                journal.as_deref().unwrap_or("off"),
                jstats.replayed,
                jstats.appended,
            );
            let stats = cache.stats();
            eprintln!(
                "analysis cache [{}]: {} hits, {} misses, {} evictions, \
                 {} resident",
                cache.mode(),
                stats.hits,
                stats.misses,
                stats.evictions,
                stats.entries,
            );
            eprintln!(
                "footprint cache [{}]: {} hits, {} misses, {} resident",
                cache.mode(),
                stats.footprint_hits,
                stats.footprint_misses,
                stats.footprint_entries,
            );
            let sweep_peak = apistudy::core::diagnostics::peak_rss_kb();
            if sweep_peak > 0 {
                eprintln!(
                    "peak RSS: {:.1} MiB",
                    sweep_peak as f64 / 1024.0
                );
            }
            match cache.persist() {
                Ok(Some(path)) => {
                    eprintln!("cache persisted to {}", path.display())
                }
                Ok(None) => {}
                Err(e) => eprintln!("cache persist failed: {e}"),
            }
        }
        "serve" | "query" => unreachable!("handled before the match"),
        "summary" => {
            let ranking = metrics.importance_ranking(ApiKind::Syscall);
            let indispensable =
                ranking.iter().filter(|&&(_, v)| v >= 0.9995).count();
            let unused = ranking.iter().filter(|&&(_, v)| v == 0.0).count();
            let curve = CompletenessCurve::compute(&metrics);
            let stats = footprints::uniqueness(study.data());
            println!("packages measured:        {}", study.data().packages.len());
            println!("indispensable syscalls:   {indispensable}");
            println!("unused syscalls:          {unused}");
            println!("syscalls for 50% support: {}", curve.calls_needed(0.5));
            println!("syscalls for 90% support: {}", curve.calls_needed(0.9));
            println!(
                "distinct footprints:      {} ({} unique)",
                stats.distinct, stats.unique
            );
        }
        _ => usage(),
    }
}

/// Display name for a syscall number. Journal-replayed or daemon-computed
/// picks could in principle carry a number outside this catalog; that
/// degrades to a placeholder label, never a panic.
fn syscall_label(data: &apistudy::core::StudyData, nr: u32) -> String {
    data.catalog
        .syscalls
        .by_number(nr)
        .map(|d| d.name.to_string())
        .unwrap_or_else(|| format!("syscall#{nr}"))
}

/// `apistudy serve`: seal the measured study into the daemon's snapshot
/// and answer queries until drained (via a `shutdown` query or a signal).
fn run_serve(
    study: Study,
    mut rest: Vec<String>,
    scale: Scale,
    seed: u64,
    shard_size: usize,
    store_path: Option<String>,
) -> ! {
    use apistudy::core::serve::Rebuild;
    use apistudy::core::{Server, ServeOptions};
    use std::time::Duration;

    fn parsed<T: std::str::FromStr>(v: Option<String>, fallback: T) -> T {
        match v {
            Some(s) => s.parse().unwrap_or_else(|_| usage()),
            None => fallback,
        }
    }
    let defaults = ServeOptions::default();
    let self_audit = take_flag(&mut rest, "--self-audit");
    let opts = ServeOptions {
        port: parsed(take_opt(&mut rest, "--port"), 0u16),
        max_conns: parsed(
            take_opt(&mut rest, "--max-conns"),
            defaults.max_conns,
        ),
        request_deadline: Duration::from_millis(parsed(
            take_opt(&mut rest, "--request-deadline-ms"),
            defaults.request_deadline.as_millis() as u64,
        )),
        idle_deadline: Duration::from_millis(parsed(
            take_opt(&mut rest, "--idle-deadline-ms"),
            defaults.idle_deadline.as_millis() as u64,
        )),
        workers: parsed(take_opt(&mut rest, "--workers"), 0usize),
        cache: !take_flag(&mut rest, "--no-cache"),
    };
    // Deterministic syscall-fault injection (chaos harnesses): the flag
    // wins over the APISTUDY_SYS_FAULTS environment variable, matching
    // the precedence of every other knob. Disarmed, the shim is a
    // single atomic load per syscall.
    let fault_spec = take_opt(&mut rest, "--sys-faults")
        .or_else(|| std::env::var("APISTUDY_SYS_FAULTS").ok())
        .filter(|s| !s.trim().is_empty());
    if !rest.is_empty() || opts.max_conns == 0 {
        usage();
    }
    if let Some(spec) = &fault_spec {
        match apistudy::core::SysFaultPlan::parse(spec) {
            Ok(plan) => {
                apistudy::core::sysfault::install(plan);
                eprintln!("sys-faults armed: {spec}");
            }
            Err(why) => {
                eprintln!("bad --sys-faults spec: {why}");
                exit(2)
            }
        }
    }
    let packages = study.data().packages.len();


    // The reload recipe repeats the boot recipe; with a store, completed
    // shards replay at file-read cost, so a `Reload` after an unchanged
    // corpus is cheap and provably bit-identical.
    let rebuild: Box<Rebuild> = Box::new(move || match &store_path {
        Some(path) => Study::run_streamed_stored(
            scale,
            seed,
            shard_size,
            std::path::Path::new(path),
            true,
        )
        .map(|(study, _)| study)
        .map_err(|e| e.to_string()),
        None if shard_size > 0 => {
            Ok(Study::run_streamed(scale, seed, shard_size))
        }
        None => Ok(Study::run(scale, seed)),
    });

    let server = match Server::start(study, Some(rebuild), opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start server: {e}");
            exit(1)
        }
    };
    if self_audit {
        // The paper's methodology applied to ourselves: which catalog
        // syscalls the daemon's own serving path exercises, and how
        // important the served corpus says each one is.
        println!("self-audit: serving-path syscalls vs the served catalog");
        println!("  {:<14} {:>5}  {:>10}  path", "syscall", "nr", "importance");
        for entry in server.self_audit() {
            let nr = entry
                .nr
                .map(|n| n.to_string())
                .unwrap_or_else(|| "-".into());
            let importance = entry
                .importance_bits
                .map(|bits| format!("{:.6}", f64::from_bits(bits)))
                .unwrap_or_else(|| "-".into());
            let path = match (entry.reactor, entry.legacy) {
                (true, true) => "reactor+legacy",
                (true, false) => "reactor",
                _ => "legacy-only",
            };
            println!("  {:<14} {nr:>5}  {importance:>10}  {path}", entry.name);
        }
    }
    // Machine-parseable readiness line (tests and scripts wait for it).
    println!(
        "serving on {} (fingerprint {:#018x}, {packages} packages)",
        server.addr(),
        server.fingerprint(),
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let stats = server.wait();
    eprintln!(
        "drained: {} connections, {} requests served, {} busy-rejected, \
         {} malformed, {} deadline-closed, {} reloads; \
         cache {} hits / {} misses; batch {} frames / {} sub-requests; \
         {} io-errors, {} accept-pauses",
        stats.connections,
        stats.served,
        stats.rejected_busy,
        stats.malformed,
        stats.deadline_closed,
        stats.reloads,
        stats.cache_hits,
        stats.cache_misses,
        stats.batch_frames,
        stats.batch_requests,
        stats.io_errors,
        stats.accept_pauses,
    );
    if fault_spec.is_some() {
        let injected = apistudy::core::sysfault::clear();
        eprintln!("sys-faults injected: {}", injected.len());
    }
    exit(0)
}

/// `apistudy query`: the daemon client. Resolves syscall names against
/// the local catalog, never runs the pipeline.
fn run_query(mut rest: Vec<String>) -> ! {
    use apistudy::catalog::Catalog;
    use apistudy::core::{
        Client, ClientError, Request, Response, RetryPolicy,
    };
    use std::time::Duration;

    if rest.len() < 2 {
        usage();
    }
    let addr: std::net::SocketAddr =
        rest.remove(0).parse().unwrap_or_else(|_| usage());
    let op = rest.remove(0);
    let catalog = Catalog::linux_3_19();

    let resolve = |token: &str| -> u32 {
        token
            .parse::<u32>()
            .ok()
            .or_else(|| catalog.syscalls.number_of(token))
            .unwrap_or_else(|| {
                eprintln!("unknown syscall {token:?}");
                exit(1)
            })
    };
    let list_from_file = |path: &str| -> Vec<u32> {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1)
        });
        text.split_whitespace().map(resolve).collect()
    };
    let fail = |e: ClientError| -> ! {
        eprintln!("query failed: {e}");
        exit(1)
    };
    // Server-side classified errors exit nonzero with the code's label.
    let ok = |resp: Result<Response, ClientError>| -> Response {
        match resp {
            Ok(Response::Err { code, msg }) => {
                eprintln!("daemon refused [{}]: {msg}", code.label());
                exit(1)
            }
            Ok(resp) => resp,
            Err(e) => fail(e),
        }
    };
    let mut client =
        Client::connect(addr, RetryPolicy::default(), Duration::from_secs(10))
            .unwrap_or_else(|e| fail(e));

    match op.as_str() {
        "ping" => {
            let Response::Pong { fingerprint, generation, packages } =
                ok(client.call_retrying(&Request::Ping))
            else {
                eprintln!("unexpected reply to ping");
                exit(1)
            };
            println!(
                "pong: fingerprint {fingerprint:#018x}, generation \
                 {generation}, {packages} packages"
            );
        }
        "importance" => {
            if rest.is_empty() {
                usage();
            }
            println!(
                "{:<20} {:>10} {:>12}",
                "syscall", "importance", "unweighted"
            );
            for token in &rest {
                let nr = resolve(token);
                let Response::Importance { importance_bits, unweighted_bits } =
                    ok(client.call_retrying(&Request::Importance { nr }))
                else {
                    eprintln!("unexpected reply to importance");
                    exit(1)
                };
                println!(
                    "{token:<20} {:>9.2}% {:>11.2}%",
                    100.0 * f64::from_bits(importance_bits),
                    100.0 * f64::from_bits(unweighted_bits),
                );
            }
        }
        "completeness" => {
            let Some(path) = rest.first() else { usage() };
            let supported = list_from_file(path);
            let Response::Completeness { bits } =
                ok(client.call_retrying(&Request::Completeness { supported }))
            else {
                eprintln!("unexpected reply to completeness");
                exit(1)
            };
            println!("{:.4}", f64::from_bits(bits));
        }
        "suggest" => {
            let Some(path) = rest.first() else { usage() };
            let supported = list_from_file(path);
            let limit = rest
                .get(1)
                .map(|s| s.parse::<u32>().unwrap_or_else(|_| usage()))
                .unwrap_or(10);
            let Response::Suggest { picks } = ok(client.call_retrying(
                &Request::Suggest { supported, limit },
            )) else {
                eprintln!("unexpected reply to suggest");
                exit(1)
            };
            println!("greedy plan (each gain assumes the lines above):");
            for (nr, gain_bits) in picks {
                let name = catalog
                    .syscalls
                    .by_number(nr)
                    .map(|d| d.name.to_string())
                    .unwrap_or_else(|| format!("syscall#{nr}"));
                println!(
                    "  {name:<20} completeness +{:.2}%",
                    100.0 * f64::from_bits(gain_bits),
                );
            }
        }
        "probe" => {
            // Session requests are connection-pinned: no retrying wrapper
            // (a reconnect would silently drop the session).
            if rest.len() < 2 {
                usage();
            }
            let supported = list_from_file(&rest[0]);
            let Response::Session { completeness_bits, .. } = ok(client
                .call(&Request::SessionOpen { supported }))
            else {
                eprintln!("unexpected reply to session open");
                exit(1)
            };
            println!(
                "session open: completeness {:.2}%",
                100.0 * f64::from_bits(completeness_bits),
            );
            for token in &rest[1..] {
                let nr = resolve(token);
                let Response::Session { delta_bits, .. } =
                    ok(client.call(&Request::SessionProbe { nr }))
                else {
                    eprintln!("unexpected reply to probe");
                    exit(1)
                };
                println!(
                    "  {token:<20} completeness +{:.2}%",
                    100.0 * f64::from_bits(delta_bits),
                );
            }
        }
        "reload" => {
            // Compare-and-swap against the live fingerprint.
            let Response::Pong { fingerprint, .. } =
                ok(client.call_retrying(&Request::Ping))
            else {
                eprintln!("unexpected reply to ping");
                exit(1)
            };
            let Response::Reload { fingerprint: new_fp, generation } =
                ok(client.call(&Request::Reload {
                    expect_fingerprint: fingerprint,
                }))
            else {
                eprintln!("unexpected reply to reload");
                exit(1)
            };
            println!(
                "reloaded: fingerprint {new_fp:#018x}, generation \
                 {generation}"
            );
        }
        "shutdown" => {
            let Response::Bye = ok(client.call(&Request::Shutdown)) else {
                eprintln!("unexpected reply to shutdown");
                exit(1)
            };
            println!("daemon draining");
        }
        _ => usage(),
    }
    exit(0)
}
