//! # apistudy
//!
//! A production-quality Rust reproduction of *"A Study of Modern Linux API
//! Usage and Compatibility: What to Support When You're Supporting"*
//! (EuroSys 2016): a static-analysis framework over a calibrated synthetic
//! Ubuntu-like corpus, the paper's compatibility metrics, and a harness
//! regenerating every table and figure.
//!
//! This facade re-exports the workspace crates:
//!
//! - [`catalog`] — Linux API inventories (syscalls, ioctl/fcntl/prctl
//!   opcodes, pseudo-files, the glibc 2.21 symbol inventory);
//! - [`elf`] — ELF64 parser and writer;
//! - [`x86`] — x86-64 decoder and assembler;
//! - [`analysis`] — per-binary static analysis and the cross-binary linker;
//! - [`corpus`] — the calibrated synthetic repository generator;
//! - [`core`] — the measurement pipeline and the metrics (API importance,
//!   weighted completeness);
//! - [`compat`] — system and libc compatibility profiles (Tables 6–7);
//! - [`report`] — table/series rendering.
//!
//! ## Quickstart
//!
//! ```no_run
//! use apistudy::core::Study;
//! use apistudy::corpus::Scale;
//!
//! let study = Study::run(Scale::test(), 42);
//! let metrics = study.metrics();
//! let read = study.syscall("read").unwrap();
//! println!("read importance: {:.1}%", 100.0 * metrics.importance(read));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use apistudy_analysis as analysis;
pub use apistudy_catalog as catalog;
pub use apistudy_compat as compat;
pub use apistudy_core as core;
pub use apistudy_corpus as corpus;
pub use apistudy_elf as elf;
pub use apistudy_report as report;
pub use apistudy_x86 as x86;
